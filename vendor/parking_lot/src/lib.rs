//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). A mutex poisoned by a
//! panicking holder is recovered transparently — parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poisoning: a panicked holder's state is
    /// handed over as-is).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader–writer lock.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new((0u64, 0u64));
        {
            // `g.0` would hit the guard's own tuple field (the inner
            // std guard), not the locked value — deref explicitly.
            let mut g = m.lock();
            (*g).0 += 1;
            (*g).1 += 2;
        }
        assert_eq!(*m.lock(), (1, 2));
        *m.lock() = (9, 9);
        assert_eq!(m.into_inner(), (9, 9));
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(5u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() must not propagate poison");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1u8);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}

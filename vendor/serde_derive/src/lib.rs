//! Offline, dependency-free subset of the `serde_derive` proc-macro.
//!
//! Supports `#[derive(Serialize)]` on the shapes this workspace uses:
//! non-generic structs with named fields, plus C-like (unit-variant)
//! enums. No `syn`/`quote` — the input `TokenStream` is walked directly
//! and the impl is emitted as a string, which keeps the macro buildable
//! with no crates.io access.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored stub's value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility/keywords until the
    // `struct`/`enum` keyword.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + bracket group
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                kind = Some("struct");
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                kind = Some("enum");
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("derive(Serialize): expected `struct` or `enum`");

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    i += 1;

    // Find the brace-delimited body; anything before it that isn't a
    // brace group (e.g. generics) is unsupported by this stub.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize) stub: generic types are not supported")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize) stub: tuple/unit types are not supported"),
        }
    };

    let impl_src = match kind {
        "struct" => {
            let fields = named_fields(body);
            assert!(
                !fields.is_empty(),
                "derive(Serialize) stub: struct {name} has no named fields"
            );
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        _ => {
            let variants = unit_variants(&name, body);
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };

    impl_src
        .parse()
        .expect("derive(Serialize): generated impl parses")
}

/// Field names of a named-field struct body: for each top-level
/// (angle-bracket-aware) comma-separated entry, the identifier directly
/// before the first `:`.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut taken_this_field = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !taken_this_field => {
                    if let Some(f) = last_ident.take() {
                        fields.push(f);
                        taken_this_field = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    taken_this_field = false;
                    last_ident = None;
                }
                '#' => {}
                _ => {}
            },
            TokenTree::Ident(id) if !taken_this_field => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Variant names of a C-like enum body; payload-carrying variants are
/// rejected (the stub has no data-variant encoding).
fn unit_variants(name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the `[...]` group
            }
            TokenTree::Ident(id) => {
                match iter.peek() {
                    Some(TokenTree::Group(_)) => panic!(
                        "derive(Serialize) stub: enum {name} has a payload-carrying \
                         variant ({id}); only unit variants are supported"
                    ),
                    _ => variants.push(id.to_string()),
                }
                // Skip to past the next comma (drops discriminants).
                for rest in iter.by_ref() {
                    if matches!(&rest, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    variants
}

//! Offline, API-compatible subset of the `serde_json` crate.
//!
//! Serializes the vendored `serde`'s [`Value`] tree to JSON text and
//! parses JSON text back with a small recursive-descent parser. Numbers
//! keep 64-bit integer precision end to end (RNG seeds, generation
//! counters); floats round-trip through Rust's shortest-representation
//! formatting.

use std::fmt;

pub use serde::{Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into a [`Value`] tree.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.len(), indent, depth, |out, i, ind, d| {
            write_value(out, &items[i], ind, d)
        }, '[', ']'),
        Value::Object(fields) => write_seq(out, fields.len(), indent, depth, |out, i, ind, d| {
            let (k, v) = &fields[i];
            write_string(out, k);
            out.push(':');
            if ind.is_some() {
                out.push(' ');
            }
            write_value(out, v, ind, d)
        }, '{', '}'),
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, Option<&str>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i, indent, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let first = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end - 1; // caller advances past the final hex digit
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            Number::NegInt(
                -stripped
                    .parse::<i64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

/// Build a [`Value`] from literal-ish syntax (array/object shorthand).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([$($item:tt),* $(,)?]) => {
        $crate::Value::Array(vec![$($crate::json!($item)),*])
    };
    ({$($key:literal : $val:tt),* $(,)?}) => {
        $crate::Value::Object(vec![$(($key.to_string(), $crate::json!($val))),*])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "name": "chain",
            "generation": 123456789012345678u64,
            "lnl": (-1234.5),
            "tags": ["a", "b\n\"c\""],
            "none": null,
            "ok": true
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        let seed = 0xdead_beef_dead_beef_u64;
        let text = to_string(&seed.to_value()).unwrap();
        assert_eq!(from_str(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &v in &[0.1f64, -3.25e-200, 1.0, f64::MAX, 1e15 + 1.0] {
            let text = to_string(&v.to_value()).unwrap();
            assert_eq!(from_str(&text).unwrap().as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn negative_ints() {
        assert_eq!(from_str("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(from_str("-42").unwrap().as_f64(), Some(-42.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}

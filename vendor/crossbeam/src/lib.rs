//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided,
//! implemented on top of `std::thread::scope` (which did not exist when
//! crossbeam's scoped threads were written, and fully covers this
//! workspace's usage). A panicking child propagates when the scope
//! joins, as with the real crate.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Result alias matching crossbeam's `thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (for
        /// nested spawns), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Create a scope for spawning borrowing threads.
    ///
    /// Unlike crossbeam (which returns `Err` if a child panicked), a
    /// child panic propagates out of `std::thread::scope` directly, so
    /// the returned value is always `Ok` when reached — callers that
    /// `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        super::thread::scope(|scope| {
            let (a, b) = partials.split_at_mut(1);
            let d = &data;
            scope.spawn(move |_| a[0] = d[..2].iter().sum());
            scope.spawn(move |_| b[0] = d[2..].iter().sum());
        })
        .expect("scope");
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    #[should_panic]
    fn child_panic_propagates() {
        let _ = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child down"));
        });
    }
}

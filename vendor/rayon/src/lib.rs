//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of rayon it uses: `ThreadPool(Builder)`,
//! `install`, the parallel-slice iterators (`par_chunks_mut` with
//! `enumerate`/`zip`/`for_each`), and `into_par_iter` on vectors (the
//! fused multicore backend flattens many ops into one task list).
//!
//! Unlike the real rayon there is no global work-stealing pool: each
//! `for_each` runs its items on freshly spawned **scoped OS threads**,
//! one per item. The multicore PLF backend hands rayon exactly one
//! contiguous chunk per worker (the paper's OpenMP static schedule), so
//! item count == intended thread count and the execution shape matches
//! the real library. Panics in workers propagate to the caller at the
//! scope boundary, like rayon's `join` semantics.

use std::fmt;

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    n_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker-thread count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.n_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.n_threads
        };
        Ok(ThreadPool { n_threads: n })
    }
}

/// Error from [`ThreadPoolBuilder::build`].
///
/// The vendored pool performs no up-front thread spawning, so
/// construction cannot actually fail; the type exists for API parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A (virtual) thread pool. Threads are spawned per parallel call, not
/// kept resident; `n_threads` is advisory.
#[derive(Debug)]
pub struct ThreadPool {
    n_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool as the ambient pool. The stub simply
    /// calls `op`; parallelism comes from the par-iterators themselves.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n_threads
    }
}

/// Two-way fork-join.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Parallel iterator machinery (eager, scoped-thread-backed).
pub mod iter {
    /// A materialized "parallel" iterator: items are computed up front,
    /// the terminal `for_each` fans them out over scoped threads.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    impl<I: Send> ParIter<I> {
        /// Pair each item with its index.
        pub fn enumerate(self) -> ParIter<(usize, I)> {
            ParIter {
                items: self.items.into_iter().enumerate().collect(),
            }
        }

        /// Zip with another parallel iterator (truncates to the shorter).
        pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
            ParIter {
                items: self
                    .items
                    .into_iter()
                    .zip(other.items)
                    .collect(),
            }
        }

        /// Run `f` on every item, one scoped thread per item. A panic in
        /// any worker propagates to the caller when the scope joins.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(I) + Send + Sync,
        {
            let mut items = self.items;
            match items.len() {
                0 => {}
                // Run a singleton inline: no thread spin-up on the
                // small-input path.
                1 => f(items.pop().expect("len checked")),
                _ => {
                    let f = &f;
                    std::thread::scope(|s| {
                        for item in items {
                            s.spawn(move || f(item));
                        }
                    });
                }
            }
        }

        /// Map every item (lazy would buy nothing here — eager).
        pub fn map<O: Send, F>(self, f: F) -> ParIter<O>
        where
            F: Fn(I) -> O,
        {
            ParIter {
                items: self.items.into_iter().map(f).collect(),
            }
        }
    }

    /// `into_par_iter` on owned collections.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// Consume the collection into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into mutable chunks of `size` (last may be shorter).
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
            assert!(size > 0, "chunk size must be non-zero");
            ParIter {
                items: self.chunks_mut(size).collect(),
            }
        }
    }

    /// `par_chunks` on shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Split into shared chunks of `size` (last may be shorter).
        fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync + Send> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
            assert!(size > 0, "chunk size must be non-zero");
            ParIter {
                items: self.chunks(size).collect(),
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_disjointly() {
        let mut data = vec![0u32; 37];
        data.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(ci, chunk)| {
                for v in chunk.iter_mut() {
                    *v = ci as u32 + 1;
                }
            });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[36], 4);
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let mut a = vec![0usize; 10];
        let mut b = vec![0usize; 4];
        a.as_mut_slice()
            .par_chunks_mut(5)
            .zip(b.as_mut_slice().par_chunks_mut(2))
            .for_each(|(ca, cb)| {
                ca[0] = cb.len();
            });
        assert_eq!(a[0], 2);
        assert_eq!(a[5], 2);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 41 + 1), 42);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let mut data = vec![0u8; 8];
        data.as_mut_slice().par_chunks_mut(2).for_each(|c| {
            if c[0] == 0 {
                panic!("worker down");
            }
        });
    }
}

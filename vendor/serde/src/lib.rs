//! Offline, API-compatible subset of the `serde` crate.
//!
//! The real serde pivots on a `Serializer` visitor; this stub collapses
//! that to a single self-describing [`Value`] tree, which is all the
//! workspace needs (JSON figure/trace output and MCMC checkpoints).
//! `#[derive(Serialize)]` comes from the vendored `serde_derive`
//! proc-macro behind the usual `derive` feature.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map):
/// serialized output lists fields in declaration order, and checkpoint
/// round-trips are byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integers keep full 64-bit precision (an `f64` would
/// corrupt RNG seeds and generation counters above 2^53).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: floats stay floats in the text.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl Value {
    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(v)) => Some(*v),
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Object field by key (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by position.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    Value::Null
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// `serde::ser` module path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1.5f64.to_value(), Value::Number(Number::Float(1.5)));
        assert_eq!(7usize.to_value(), Value::Number(Number::PosInt(7)));
        assert_eq!((-3i64).to_value(), Value::Number(Number::NegInt(-3)));
        assert_eq!(f64::NAN.to_value(), Value::Null);
        let v = vec![("a".to_string(), 2.0f64)];
        match v.to_value() {
            Value::Array(items) => match &items[0] {
                Value::Array(pair) => {
                    assert_eq!(pair[0], Value::String("a".into()));
                    assert_eq!(pair[1], Value::Number(Number::Float(2.0)));
                }
                other => panic!("expected tuple-as-array, got {other:?}"),
            },
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 1;
        assert_eq!(big.to_value().as_u64(), Some(big));
    }

    #[test]
    fn value_accessors() {
        let obj = Value::Object(vec![
            ("x".into(), Value::Number(Number::PosInt(1))),
            ("y".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(obj["x"].as_u64(), Some(1));
        assert_eq!(obj["y"][0].as_bool(), Some(true));
        assert!(obj["missing"].is_null());
        assert!(obj.get("y").unwrap().is_array());
    }
}

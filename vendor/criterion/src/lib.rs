//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Keeps the workspace's benchmark targets compiling and runnable with
//! no crates.io access. Instead of statistical sampling, each benchmark
//! runs its routine a handful of times and prints a single wall-clock
//! figure — enough to smoke-test the bench harness and eyeball relative
//! cost, not a substitute for real criterion runs.

use std::fmt;
use std::time::Instant;

/// How many times the stub executes each routine.
const RUNS: u32 = 3;

/// Measurement throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine`, called [`RUNS`] times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..RUNS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() / RUNS as u128;
    }

    /// Time `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..RUNS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total / RUNS as u128;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Record the work per iteration (echoed in the report line).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override sample count (accepted, ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        self.report(&id, b.elapsed_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b, input);
        self.report(&id, b.elapsed_ns);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, elapsed_ns: u128) {
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) if elapsed_ns > 0 => {
                format!("  ({:.1} Melem/s)", n as f64 / elapsed_ns as f64 * 1e3)
            }
            Some(Throughput::Bytes(n)) if elapsed_ns > 0 => {
                format!("  ({:.1} MiB/s)", n as f64 / elapsed_ns as f64 * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter{} [stub: {} runs, no statistics]",
            self.name,
            id.id,
            elapsed_ns as f64 / 1e6,
            tp,
            self.criterion.sample_size,
        );
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: RUNS as usize }
    }
}

impl Criterion {
    /// Configure sample count (accepted for API parity; the stub always
    /// executes a fixed small number of runs).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.min(RUNS as usize);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export for `use criterion::black_box` call sites.
pub use std::hint::black_box;

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Elements(1000));
        group.sample_size(10);
        group.bench_function("iota", |b| {
            b.iter(|| (0u64..1000).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("upto", 500), &500u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn long_form_group_compiles() {
        criterion_group! {
            name = cfg_benches;
            config = Criterion::default().sample_size(20);
            targets = sum_bench
        }
        cfg_benches();
    }
}

//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, `gen_range` over numeric
//! ranges, and a deterministic [`rngs::StdRng`].
//!
//! The generator is **xoshiro256++** (public domain, Blackman &
//! Vigna) seeded through SplitMix64 — *not* the ChaCha12 generator the
//! real `rand` uses, so absolute random streams differ from upstream.
//! Within this workspace that is immaterial: every consumer seeds
//! explicitly and only requires determinism across runs and platforms,
//! which this implementation guarantees.

/// Low-level entropy source: 64-bit outputs.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value API (subset: `gen_range`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform sample of a bare value for the few types we support.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable without an explicit range (tiny subset of the real
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform f64 in [0, 1) from 53 random mantissa bits.
fn f64_from_bits(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly samplable between two bounds.
///
/// One blanket `SampleRange` impl per range shape dispatches through
/// this trait — mirroring the real `rand`'s structure so type
/// inference commits (`gen_range(0.0..1.0)` must see a *single*
/// candidate impl for `Range<{float}>`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` itself may be returned only
    /// when the `inclusive` flag is set).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t, hi: $t, _inclusive: bool, rng: &mut R,
            ) -> $t {
                let u = f64_from_bits(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t, hi: $t, inclusive: bool, rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// SplitMix64 step — used to expand integer seeds into full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding via SplitMix64 exactly like
    /// `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The full internal state, for checkpointing a stream mid-run.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`StdRng::state`]. The restored
        /// stream continues bit-for-bit where the snapshot was taken.
        /// All-zero state (the xoshiro fixed point) is rejected the same
        /// way `from_seed` displaces it.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                let mut st = 0x6a09_e667_f3bc_c909u64;
                let mut s = [0u64; 4];
                for word in s.iter_mut() {
                    *word = super::splitmix64(&mut st);
                }
                return StdRng { s };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // All-zero is the xoshiro fixed point; displace it.
                let mut st = 0x6a09_e667_f3bc_c909u64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Provides the surface this workspace uses: the `proptest!` macro with
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]`, range
//! strategies, tuple strategies, `prop::collection::vec`,
//! `prop::array::uniform{4,6}`, `.prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Semantics differ from the real crate in one deliberate way: there is
//! no shrinking. Inputs are drawn from a deterministic per-case RNG
//! (SplitMix64 over the case index), so every run of the suite explores
//! the same inputs and a failure message carries the case number needed
//! to replay it.

/// Deterministic input generation.
pub mod test_runner {
    /// Deterministic RNG handed to strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th test case (deterministic).
        pub fn for_case(case: u32) -> TestRng {
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15_u64 ^ ((case as u64) << 17),
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-suite configuration (`cases` is the only knob used here).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 32 }
        }
    }
}

/// Strategies: value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as f64;
                    let v = self.start as f64 + rng.unit_f64() * span;
                    // Clamp against round-up at the open end.
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::array::*`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Admissible length arguments for [`vec`].
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<::std::ops::Range<usize>> for SizeRange {
            fn from(r: ::std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        /// Strategy yielding `Vec`s of values drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, len)` / `vec(element, lo..hi)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.size.lo == self.size.hi {
                    self.size.lo
                } else {
                    let span = (self.size.hi - self.size.lo + 1) as u64;
                    self.size.lo + (rng.next_u64() % span) as usize
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding `[S::Value; N]`.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                ::std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        macro_rules! uniform_fn {
            ($($name:ident => $n:literal),*) => {$(
                /// Array of $n values drawn from `element`.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )*};
        }
        uniform_fn!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform6 => 6, uniform8 => 8);
    }
}

/// Everything a test module glob-imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run each property over `config.cases` deterministic inputs.
///
/// Accepts the standard form: an optional
/// `#![proptest_config(expr)]` header followed by `fn` items whose
/// arguments use `pattern in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal: expand each property fn (do not use directly).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let Err(msg) = outcome {
                    panic!("proptest case {case}/{}: {msg}", config.cases);
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapped(Vec<f64>);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(
            x in 0.25f64..4.0,
            n in 3usize..9,
            s in -5i32..5,
        ) {
            prop_assert!((0.25..4.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((-5..5).contains(&s));
        }

        #[test]
        fn vec_and_array_and_map(
            v in prop::collection::vec(0.0f64..1.0, 7),
            a in prop::array::uniform4(0.0f32..1.0),
            w in prop::collection::vec(0.0f64..1.0, 3).prop_map(Wrapped),
        ) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
            prop_assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
            prop_assert_eq!(w.0.len(), 3);
        }

        #[test]
        fn tuples_work((a, b) in (0u64..10, 10u64..20)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = 0.0f64..1.0;
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}

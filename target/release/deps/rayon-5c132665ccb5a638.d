/root/repo/target/release/deps/rayon-5c132665ccb5a638.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-5c132665ccb5a638.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-5c132665ccb5a638.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:

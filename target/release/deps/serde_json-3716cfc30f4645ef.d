/root/repo/target/release/deps/serde_json-3716cfc30f4645ef.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3716cfc30f4645ef.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3716cfc30f4645ef.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

/root/repo/target/release/deps/plf_gpu-60ea1ccf6af39798.d: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

/root/repo/target/release/deps/libplf_gpu-60ea1ccf6af39798.rlib: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

/root/repo/target/release/deps/libplf_gpu-60ea1ccf6af39798.rmeta: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/backend.rs:
crates/gpu/src/device.rs:
crates/gpu/src/grid.rs:
crates/gpu/src/kernels.rs:
crates/gpu/src/model.rs:

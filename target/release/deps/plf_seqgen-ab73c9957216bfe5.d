/root/repo/target/release/deps/plf_seqgen-ab73c9957216bfe5.d: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

/root/repo/target/release/deps/libplf_seqgen-ab73c9957216bfe5.rlib: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

/root/repo/target/release/deps/libplf_seqgen-ab73c9957216bfe5.rmeta: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

crates/seqgen/src/lib.rs:
crates/seqgen/src/datasets.rs:
crates/seqgen/src/evolve.rs:
crates/seqgen/src/yule.rs:

/root/repo/target/release/deps/plf_cellbe-af74082fd99b200f.d: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs

/root/repo/target/release/deps/libplf_cellbe-af74082fd99b200f.rlib: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs

/root/repo/target/release/deps/libplf_cellbe-af74082fd99b200f.rmeta: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs

crates/cellbe/src/lib.rs:
crates/cellbe/src/backend.rs:
crates/cellbe/src/dma.rs:
crates/cellbe/src/fsm.rs:
crates/cellbe/src/ls.rs:
crates/cellbe/src/model.rs:
crates/cellbe/src/schedule.rs:
crates/cellbe/src/timing.rs:

/root/repo/target/release/deps/plf_phylo-6afc6fe615f1f41b.d: crates/phylo/src/lib.rs crates/phylo/src/alignment.rs crates/phylo/src/clv.rs crates/phylo/src/dna.rs crates/phylo/src/incremental.rs crates/phylo/src/io.rs crates/phylo/src/kernels/mod.rs crates/phylo/src/kernels/plan.rs crates/phylo/src/kernels/scalar.rs crates/phylo/src/kernels/simd4.rs crates/phylo/src/likelihood.rs crates/phylo/src/model/mod.rs crates/phylo/src/model/eigen.rs crates/phylo/src/model/gamma.rs crates/phylo/src/model/gtr.rs crates/phylo/src/oracle.rs crates/phylo/src/partition.rs crates/phylo/src/resilience/mod.rs crates/phylo/src/resilience/error.rs crates/phylo/src/resilience/fault.rs crates/phylo/src/resilience/wrapper.rs crates/phylo/src/tree.rs

/root/repo/target/release/deps/libplf_phylo-6afc6fe615f1f41b.rlib: crates/phylo/src/lib.rs crates/phylo/src/alignment.rs crates/phylo/src/clv.rs crates/phylo/src/dna.rs crates/phylo/src/incremental.rs crates/phylo/src/io.rs crates/phylo/src/kernels/mod.rs crates/phylo/src/kernels/plan.rs crates/phylo/src/kernels/scalar.rs crates/phylo/src/kernels/simd4.rs crates/phylo/src/likelihood.rs crates/phylo/src/model/mod.rs crates/phylo/src/model/eigen.rs crates/phylo/src/model/gamma.rs crates/phylo/src/model/gtr.rs crates/phylo/src/oracle.rs crates/phylo/src/partition.rs crates/phylo/src/resilience/mod.rs crates/phylo/src/resilience/error.rs crates/phylo/src/resilience/fault.rs crates/phylo/src/resilience/wrapper.rs crates/phylo/src/tree.rs

/root/repo/target/release/deps/libplf_phylo-6afc6fe615f1f41b.rmeta: crates/phylo/src/lib.rs crates/phylo/src/alignment.rs crates/phylo/src/clv.rs crates/phylo/src/dna.rs crates/phylo/src/incremental.rs crates/phylo/src/io.rs crates/phylo/src/kernels/mod.rs crates/phylo/src/kernels/plan.rs crates/phylo/src/kernels/scalar.rs crates/phylo/src/kernels/simd4.rs crates/phylo/src/likelihood.rs crates/phylo/src/model/mod.rs crates/phylo/src/model/eigen.rs crates/phylo/src/model/gamma.rs crates/phylo/src/model/gtr.rs crates/phylo/src/oracle.rs crates/phylo/src/partition.rs crates/phylo/src/resilience/mod.rs crates/phylo/src/resilience/error.rs crates/phylo/src/resilience/fault.rs crates/phylo/src/resilience/wrapper.rs crates/phylo/src/tree.rs

crates/phylo/src/lib.rs:
crates/phylo/src/alignment.rs:
crates/phylo/src/clv.rs:
crates/phylo/src/dna.rs:
crates/phylo/src/incremental.rs:
crates/phylo/src/io.rs:
crates/phylo/src/kernels/mod.rs:
crates/phylo/src/kernels/plan.rs:
crates/phylo/src/kernels/scalar.rs:
crates/phylo/src/kernels/simd4.rs:
crates/phylo/src/likelihood.rs:
crates/phylo/src/model/mod.rs:
crates/phylo/src/model/eigen.rs:
crates/phylo/src/model/gamma.rs:
crates/phylo/src/model/gtr.rs:
crates/phylo/src/oracle.rs:
crates/phylo/src/partition.rs:
crates/phylo/src/resilience/mod.rs:
crates/phylo/src/resilience/error.rs:
crates/phylo/src/resilience/fault.rs:
crates/phylo/src/resilience/wrapper.rs:
crates/phylo/src/tree.rs:

/root/repo/target/release/deps/plf_repro-b958583db971166d.d: src/lib.rs

/root/repo/target/release/deps/libplf_repro-b958583db971166d.rlib: src/lib.rs

/root/repo/target/release/deps/libplf_repro-b958583db971166d.rmeta: src/lib.rs

src/lib.rs:

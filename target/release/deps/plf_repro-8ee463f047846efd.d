/root/repo/target/release/deps/plf_repro-8ee463f047846efd.d: src/lib.rs

/root/repo/target/release/deps/libplf_repro-8ee463f047846efd.rlib: src/lib.rs

/root/repo/target/release/deps/libplf_repro-8ee463f047846efd.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/plf_mcmc-84867db51cc45935.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/release/deps/libplf_mcmc-84867db51cc45935.rlib: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/release/deps/libplf_mcmc-84867db51cc45935.rmeta: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/consensus.rs:
crates/mcmc/src/mc3.rs:
crates/mcmc/src/priors.rs:
crates/mcmc/src/proposals.rs:
crates/mcmc/src/rng.rs:
crates/mcmc/src/state.rs:
crates/mcmc/src/trace.rs:

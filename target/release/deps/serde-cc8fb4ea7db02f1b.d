/root/repo/target/release/deps/serde-cc8fb4ea7db02f1b.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cc8fb4ea7db02f1b.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cc8fb4ea7db02f1b.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

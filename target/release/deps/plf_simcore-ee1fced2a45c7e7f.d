/root/repo/target/release/deps/plf_simcore-ee1fced2a45c7e7f.d: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

/root/repo/target/release/deps/libplf_simcore-ee1fced2a45c7e7f.rlib: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

/root/repo/target/release/deps/libplf_simcore-ee1fced2a45c7e7f.rmeta: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

crates/simcore/src/lib.rs:
crates/simcore/src/hybrid.rs:
crates/simcore/src/machine.rs:
crates/simcore/src/model.rs:
crates/simcore/src/workload.rs:
crates/simcore/src/xfer.rs:

/root/repo/target/release/deps/rand-7a40a07f04fb6ef5.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7a40a07f04fb6ef5.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7a40a07f04fb6ef5.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:

/root/repo/target/release/deps/plfr-b10f8158c2958377.d: src/bin/plfr.rs

/root/repo/target/release/deps/plfr-b10f8158c2958377: src/bin/plfr.rs

src/bin/plfr.rs:

/root/repo/target/release/deps/plf_multicore-0af778bf3fce0476.d: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

/root/repo/target/release/deps/libplf_multicore-0af778bf3fce0476.rlib: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

/root/repo/target/release/deps/libplf_multicore-0af778bf3fce0476.rmeta: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

crates/multicore/src/lib.rs:
crates/multicore/src/backend.rs:
crates/multicore/src/model.rs:
crates/multicore/src/persistent.rs:

/root/repo/target/release/deps/plfr-9f2e87972e79a691.d: src/bin/plfr.rs

/root/repo/target/release/deps/plfr-9f2e87972e79a691: src/bin/plfr.rs

src/bin/plfr.rs:

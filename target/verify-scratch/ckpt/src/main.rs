//! Kill-and-resume demo through the public plf-repro API.
use plf_repro::mcmc::{Chain, ChainCheckpoint, ChainOptions, Priors};
use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::phylo::model::GtrParams;
use plf_repro::prelude::*;

fn main() {
    let ds = plf_repro::seqgen::generate(DatasetSpec::new(9, 120), 11);
    let options = ChainOptions {
        generations: 400,
        seed: 2026,
        sample_every: 50,
        record_trace: true,
        ..ChainOptions::default()
    };
    let mk = || {
        Chain::new(
            ds.tree.clone(),
            &ds.data,
            GtrParams::jc69(),
            0.5,
            Priors::default(),
            options.clone(),
        )
        .unwrap()
    };

    // Uninterrupted reference run.
    let mut chain = mk();
    let reference = chain.run(&mut ScalarBackend).unwrap();

    // Killed at generation 200: checkpoint to JSON, drop the chain.
    let mut victim = mk();
    victim.run_to(&mut ScalarBackend, 200).unwrap();
    let json = victim.checkpoint().unwrap().to_json();
    drop(victim);
    println!("checkpoint JSON: {} bytes", json.len());

    // Resume from the serialized checkpoint and finish.
    let ckpt = ChainCheckpoint::from_json(&json).unwrap();
    let mut resumed = Chain::resume(
        &ds.data,
        Priors::default(),
        options.clone(),
        &ckpt,
        &mut ScalarBackend,
    )
    .unwrap_or_else(|e| panic!("resume failed: {e}"));
    let finished = resumed.run_to_completion(&mut ScalarBackend).unwrap();

    println!(
        "reference final lnL: {:.10}  (bits {:016x})",
        reference.final_ln_likelihood,
        reference.final_ln_likelihood.to_bits()
    );
    println!(
        "resumed   final lnL: {:.10}  (bits {:016x})",
        finished.final_ln_likelihood,
        finished.final_ln_likelihood.to_bits()
    );
    assert_eq!(
        reference.final_ln_likelihood.to_bits(),
        finished.final_ln_likelihood.to_bits(),
        "final lnL differs"
    );
    assert_eq!(reference.samples, finished.samples, "samples differ");
    assert_eq!(
        reference.trace.len(),
        finished.trace.len(),
        "trace length differs"
    );
    for (a, b) in reference.trace.iter().zip(finished.trace.iter()) {
        assert_eq!(a, b, "trace record differs");
    }
    println!("kill-and-resume trace identical to uninterrupted run ✓");

    // Probe: tamper with the checkpoint (flip the stored lnL) — resume
    // must refuse, not silently diverge.
    let mut bad = ckpt.clone();
    bad.ln_likelihood += 1.0;
    match Chain::resume(&ds.data, Priors::default(), options, &bad, &mut ScalarBackend) {
        Err(e) => println!("tampered checkpoint rejected: {e}"),
        Ok(_) => panic!("tampered checkpoint was accepted!"),
    }
}

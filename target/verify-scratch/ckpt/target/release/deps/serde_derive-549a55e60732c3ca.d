/root/repo/target/verify-scratch/ckpt/target/release/deps/serde_derive-549a55e60732c3ca.d: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libserde_derive-549a55e60732c3ca.so: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde_derive/src/lib.rs:

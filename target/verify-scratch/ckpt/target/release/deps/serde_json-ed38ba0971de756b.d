/root/repo/target/verify-scratch/ckpt/target/release/deps/serde_json-ed38ba0971de756b.d: /root/repo/vendor/serde_json/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libserde_json-ed38ba0971de756b.rlib: /root/repo/vendor/serde_json/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libserde_json-ed38ba0971de756b.rmeta: /root/repo/vendor/serde_json/src/lib.rs

/root/repo/vendor/serde_json/src/lib.rs:

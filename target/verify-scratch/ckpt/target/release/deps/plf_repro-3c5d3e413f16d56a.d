/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_repro-3c5d3e413f16d56a.d: /root/repo/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_repro-3c5d3e413f16d56a.rlib: /root/repo/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_repro-3c5d3e413f16d56a.rmeta: /root/repo/src/lib.rs

/root/repo/src/lib.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/ckpt_demo-e8b953109f3db4c6.d: src/main.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/ckpt_demo-e8b953109f3db4c6: src/main.rs

src/main.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/rayon-f3030281d05af22c.d: /root/repo/vendor/rayon/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/librayon-f3030281d05af22c.rlib: /root/repo/vendor/rayon/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/librayon-f3030281d05af22c.rmeta: /root/repo/vendor/rayon/src/lib.rs

/root/repo/vendor/rayon/src/lib.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_multicore-1de309080f8e74e9.d: /root/repo/crates/multicore/src/lib.rs /root/repo/crates/multicore/src/backend.rs /root/repo/crates/multicore/src/model.rs /root/repo/crates/multicore/src/persistent.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_multicore-1de309080f8e74e9.rlib: /root/repo/crates/multicore/src/lib.rs /root/repo/crates/multicore/src/backend.rs /root/repo/crates/multicore/src/model.rs /root/repo/crates/multicore/src/persistent.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_multicore-1de309080f8e74e9.rmeta: /root/repo/crates/multicore/src/lib.rs /root/repo/crates/multicore/src/backend.rs /root/repo/crates/multicore/src/model.rs /root/repo/crates/multicore/src/persistent.rs

/root/repo/crates/multicore/src/lib.rs:
/root/repo/crates/multicore/src/backend.rs:
/root/repo/crates/multicore/src/model.rs:
/root/repo/crates/multicore/src/persistent.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/parking_lot-5b624def46bea22f.d: /root/repo/vendor/parking_lot/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libparking_lot-5b624def46bea22f.rlib: /root/repo/vendor/parking_lot/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libparking_lot-5b624def46bea22f.rmeta: /root/repo/vendor/parking_lot/src/lib.rs

/root/repo/vendor/parking_lot/src/lib.rs:

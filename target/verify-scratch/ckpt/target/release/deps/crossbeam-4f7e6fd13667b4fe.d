/root/repo/target/verify-scratch/ckpt/target/release/deps/crossbeam-4f7e6fd13667b4fe.d: /root/repo/vendor/crossbeam/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libcrossbeam-4f7e6fd13667b4fe.rlib: /root/repo/vendor/crossbeam/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libcrossbeam-4f7e6fd13667b4fe.rmeta: /root/repo/vendor/crossbeam/src/lib.rs

/root/repo/vendor/crossbeam/src/lib.rs:

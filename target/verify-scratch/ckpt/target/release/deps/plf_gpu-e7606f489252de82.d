/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_gpu-e7606f489252de82.d: /root/repo/crates/gpu/src/lib.rs /root/repo/crates/gpu/src/backend.rs /root/repo/crates/gpu/src/device.rs /root/repo/crates/gpu/src/grid.rs /root/repo/crates/gpu/src/kernels.rs /root/repo/crates/gpu/src/model.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_gpu-e7606f489252de82.rlib: /root/repo/crates/gpu/src/lib.rs /root/repo/crates/gpu/src/backend.rs /root/repo/crates/gpu/src/device.rs /root/repo/crates/gpu/src/grid.rs /root/repo/crates/gpu/src/kernels.rs /root/repo/crates/gpu/src/model.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_gpu-e7606f489252de82.rmeta: /root/repo/crates/gpu/src/lib.rs /root/repo/crates/gpu/src/backend.rs /root/repo/crates/gpu/src/device.rs /root/repo/crates/gpu/src/grid.rs /root/repo/crates/gpu/src/kernels.rs /root/repo/crates/gpu/src/model.rs

/root/repo/crates/gpu/src/lib.rs:
/root/repo/crates/gpu/src/backend.rs:
/root/repo/crates/gpu/src/device.rs:
/root/repo/crates/gpu/src/grid.rs:
/root/repo/crates/gpu/src/kernels.rs:
/root/repo/crates/gpu/src/model.rs:

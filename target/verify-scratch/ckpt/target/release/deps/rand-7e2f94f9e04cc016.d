/root/repo/target/verify-scratch/ckpt/target/release/deps/rand-7e2f94f9e04cc016.d: /root/repo/vendor/rand/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/librand-7e2f94f9e04cc016.rlib: /root/repo/vendor/rand/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/librand-7e2f94f9e04cc016.rmeta: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/rand/src/lib.rs:

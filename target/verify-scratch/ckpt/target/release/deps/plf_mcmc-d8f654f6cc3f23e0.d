/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_mcmc-d8f654f6cc3f23e0.d: /root/repo/crates/mcmc/src/lib.rs /root/repo/crates/mcmc/src/chain.rs /root/repo/crates/mcmc/src/checkpoint.rs /root/repo/crates/mcmc/src/consensus.rs /root/repo/crates/mcmc/src/mc3.rs /root/repo/crates/mcmc/src/priors.rs /root/repo/crates/mcmc/src/proposals.rs /root/repo/crates/mcmc/src/rng.rs /root/repo/crates/mcmc/src/state.rs /root/repo/crates/mcmc/src/trace.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_mcmc-d8f654f6cc3f23e0.rlib: /root/repo/crates/mcmc/src/lib.rs /root/repo/crates/mcmc/src/chain.rs /root/repo/crates/mcmc/src/checkpoint.rs /root/repo/crates/mcmc/src/consensus.rs /root/repo/crates/mcmc/src/mc3.rs /root/repo/crates/mcmc/src/priors.rs /root/repo/crates/mcmc/src/proposals.rs /root/repo/crates/mcmc/src/rng.rs /root/repo/crates/mcmc/src/state.rs /root/repo/crates/mcmc/src/trace.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_mcmc-d8f654f6cc3f23e0.rmeta: /root/repo/crates/mcmc/src/lib.rs /root/repo/crates/mcmc/src/chain.rs /root/repo/crates/mcmc/src/checkpoint.rs /root/repo/crates/mcmc/src/consensus.rs /root/repo/crates/mcmc/src/mc3.rs /root/repo/crates/mcmc/src/priors.rs /root/repo/crates/mcmc/src/proposals.rs /root/repo/crates/mcmc/src/rng.rs /root/repo/crates/mcmc/src/state.rs /root/repo/crates/mcmc/src/trace.rs

/root/repo/crates/mcmc/src/lib.rs:
/root/repo/crates/mcmc/src/chain.rs:
/root/repo/crates/mcmc/src/checkpoint.rs:
/root/repo/crates/mcmc/src/consensus.rs:
/root/repo/crates/mcmc/src/mc3.rs:
/root/repo/crates/mcmc/src/priors.rs:
/root/repo/crates/mcmc/src/proposals.rs:
/root/repo/crates/mcmc/src/rng.rs:
/root/repo/crates/mcmc/src/state.rs:
/root/repo/crates/mcmc/src/trace.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/serde-b652206b15b39627.d: /root/repo/vendor/serde/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libserde-b652206b15b39627.rlib: /root/repo/vendor/serde/src/lib.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libserde-b652206b15b39627.rmeta: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde/src/lib.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_cellbe-e154bbdbf120ffce.d: /root/repo/crates/cellbe/src/lib.rs /root/repo/crates/cellbe/src/backend.rs /root/repo/crates/cellbe/src/dma.rs /root/repo/crates/cellbe/src/fsm.rs /root/repo/crates/cellbe/src/ls.rs /root/repo/crates/cellbe/src/model.rs /root/repo/crates/cellbe/src/schedule.rs /root/repo/crates/cellbe/src/timing.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_cellbe-e154bbdbf120ffce.rlib: /root/repo/crates/cellbe/src/lib.rs /root/repo/crates/cellbe/src/backend.rs /root/repo/crates/cellbe/src/dma.rs /root/repo/crates/cellbe/src/fsm.rs /root/repo/crates/cellbe/src/ls.rs /root/repo/crates/cellbe/src/model.rs /root/repo/crates/cellbe/src/schedule.rs /root/repo/crates/cellbe/src/timing.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_cellbe-e154bbdbf120ffce.rmeta: /root/repo/crates/cellbe/src/lib.rs /root/repo/crates/cellbe/src/backend.rs /root/repo/crates/cellbe/src/dma.rs /root/repo/crates/cellbe/src/fsm.rs /root/repo/crates/cellbe/src/ls.rs /root/repo/crates/cellbe/src/model.rs /root/repo/crates/cellbe/src/schedule.rs /root/repo/crates/cellbe/src/timing.rs

/root/repo/crates/cellbe/src/lib.rs:
/root/repo/crates/cellbe/src/backend.rs:
/root/repo/crates/cellbe/src/dma.rs:
/root/repo/crates/cellbe/src/fsm.rs:
/root/repo/crates/cellbe/src/ls.rs:
/root/repo/crates/cellbe/src/model.rs:
/root/repo/crates/cellbe/src/schedule.rs:
/root/repo/crates/cellbe/src/timing.rs:

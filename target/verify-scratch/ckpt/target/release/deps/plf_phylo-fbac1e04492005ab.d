/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_phylo-fbac1e04492005ab.d: /root/repo/crates/phylo/src/lib.rs /root/repo/crates/phylo/src/alignment.rs /root/repo/crates/phylo/src/clv.rs /root/repo/crates/phylo/src/dna.rs /root/repo/crates/phylo/src/incremental.rs /root/repo/crates/phylo/src/io.rs /root/repo/crates/phylo/src/kernels/mod.rs /root/repo/crates/phylo/src/kernels/plan.rs /root/repo/crates/phylo/src/kernels/scalar.rs /root/repo/crates/phylo/src/kernels/simd4.rs /root/repo/crates/phylo/src/likelihood.rs /root/repo/crates/phylo/src/model/mod.rs /root/repo/crates/phylo/src/model/eigen.rs /root/repo/crates/phylo/src/model/gamma.rs /root/repo/crates/phylo/src/model/gtr.rs /root/repo/crates/phylo/src/oracle.rs /root/repo/crates/phylo/src/partition.rs /root/repo/crates/phylo/src/resilience/mod.rs /root/repo/crates/phylo/src/resilience/error.rs /root/repo/crates/phylo/src/resilience/fault.rs /root/repo/crates/phylo/src/resilience/wrapper.rs /root/repo/crates/phylo/src/tree.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_phylo-fbac1e04492005ab.rlib: /root/repo/crates/phylo/src/lib.rs /root/repo/crates/phylo/src/alignment.rs /root/repo/crates/phylo/src/clv.rs /root/repo/crates/phylo/src/dna.rs /root/repo/crates/phylo/src/incremental.rs /root/repo/crates/phylo/src/io.rs /root/repo/crates/phylo/src/kernels/mod.rs /root/repo/crates/phylo/src/kernels/plan.rs /root/repo/crates/phylo/src/kernels/scalar.rs /root/repo/crates/phylo/src/kernels/simd4.rs /root/repo/crates/phylo/src/likelihood.rs /root/repo/crates/phylo/src/model/mod.rs /root/repo/crates/phylo/src/model/eigen.rs /root/repo/crates/phylo/src/model/gamma.rs /root/repo/crates/phylo/src/model/gtr.rs /root/repo/crates/phylo/src/oracle.rs /root/repo/crates/phylo/src/partition.rs /root/repo/crates/phylo/src/resilience/mod.rs /root/repo/crates/phylo/src/resilience/error.rs /root/repo/crates/phylo/src/resilience/fault.rs /root/repo/crates/phylo/src/resilience/wrapper.rs /root/repo/crates/phylo/src/tree.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_phylo-fbac1e04492005ab.rmeta: /root/repo/crates/phylo/src/lib.rs /root/repo/crates/phylo/src/alignment.rs /root/repo/crates/phylo/src/clv.rs /root/repo/crates/phylo/src/dna.rs /root/repo/crates/phylo/src/incremental.rs /root/repo/crates/phylo/src/io.rs /root/repo/crates/phylo/src/kernels/mod.rs /root/repo/crates/phylo/src/kernels/plan.rs /root/repo/crates/phylo/src/kernels/scalar.rs /root/repo/crates/phylo/src/kernels/simd4.rs /root/repo/crates/phylo/src/likelihood.rs /root/repo/crates/phylo/src/model/mod.rs /root/repo/crates/phylo/src/model/eigen.rs /root/repo/crates/phylo/src/model/gamma.rs /root/repo/crates/phylo/src/model/gtr.rs /root/repo/crates/phylo/src/oracle.rs /root/repo/crates/phylo/src/partition.rs /root/repo/crates/phylo/src/resilience/mod.rs /root/repo/crates/phylo/src/resilience/error.rs /root/repo/crates/phylo/src/resilience/fault.rs /root/repo/crates/phylo/src/resilience/wrapper.rs /root/repo/crates/phylo/src/tree.rs

/root/repo/crates/phylo/src/lib.rs:
/root/repo/crates/phylo/src/alignment.rs:
/root/repo/crates/phylo/src/clv.rs:
/root/repo/crates/phylo/src/dna.rs:
/root/repo/crates/phylo/src/incremental.rs:
/root/repo/crates/phylo/src/io.rs:
/root/repo/crates/phylo/src/kernels/mod.rs:
/root/repo/crates/phylo/src/kernels/plan.rs:
/root/repo/crates/phylo/src/kernels/scalar.rs:
/root/repo/crates/phylo/src/kernels/simd4.rs:
/root/repo/crates/phylo/src/likelihood.rs:
/root/repo/crates/phylo/src/model/mod.rs:
/root/repo/crates/phylo/src/model/eigen.rs:
/root/repo/crates/phylo/src/model/gamma.rs:
/root/repo/crates/phylo/src/model/gtr.rs:
/root/repo/crates/phylo/src/oracle.rs:
/root/repo/crates/phylo/src/partition.rs:
/root/repo/crates/phylo/src/resilience/mod.rs:
/root/repo/crates/phylo/src/resilience/error.rs:
/root/repo/crates/phylo/src/resilience/fault.rs:
/root/repo/crates/phylo/src/resilience/wrapper.rs:
/root/repo/crates/phylo/src/tree.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_seqgen-e858f85edc706220.d: /root/repo/crates/seqgen/src/lib.rs /root/repo/crates/seqgen/src/datasets.rs /root/repo/crates/seqgen/src/evolve.rs /root/repo/crates/seqgen/src/yule.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_seqgen-e858f85edc706220.rlib: /root/repo/crates/seqgen/src/lib.rs /root/repo/crates/seqgen/src/datasets.rs /root/repo/crates/seqgen/src/evolve.rs /root/repo/crates/seqgen/src/yule.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_seqgen-e858f85edc706220.rmeta: /root/repo/crates/seqgen/src/lib.rs /root/repo/crates/seqgen/src/datasets.rs /root/repo/crates/seqgen/src/evolve.rs /root/repo/crates/seqgen/src/yule.rs

/root/repo/crates/seqgen/src/lib.rs:
/root/repo/crates/seqgen/src/datasets.rs:
/root/repo/crates/seqgen/src/evolve.rs:
/root/repo/crates/seqgen/src/yule.rs:

/root/repo/target/verify-scratch/ckpt/target/release/deps/plf_simcore-bdd79313bf4fe8ba.d: /root/repo/crates/simcore/src/lib.rs /root/repo/crates/simcore/src/hybrid.rs /root/repo/crates/simcore/src/machine.rs /root/repo/crates/simcore/src/model.rs /root/repo/crates/simcore/src/workload.rs /root/repo/crates/simcore/src/xfer.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_simcore-bdd79313bf4fe8ba.rlib: /root/repo/crates/simcore/src/lib.rs /root/repo/crates/simcore/src/hybrid.rs /root/repo/crates/simcore/src/machine.rs /root/repo/crates/simcore/src/model.rs /root/repo/crates/simcore/src/workload.rs /root/repo/crates/simcore/src/xfer.rs

/root/repo/target/verify-scratch/ckpt/target/release/deps/libplf_simcore-bdd79313bf4fe8ba.rmeta: /root/repo/crates/simcore/src/lib.rs /root/repo/crates/simcore/src/hybrid.rs /root/repo/crates/simcore/src/machine.rs /root/repo/crates/simcore/src/model.rs /root/repo/crates/simcore/src/workload.rs /root/repo/crates/simcore/src/xfer.rs

/root/repo/crates/simcore/src/lib.rs:
/root/repo/crates/simcore/src/hybrid.rs:
/root/repo/crates/simcore/src/machine.rs:
/root/repo/crates/simcore/src/model.rs:
/root/repo/crates/simcore/src/workload.rs:
/root/repo/crates/simcore/src/xfer.rs:

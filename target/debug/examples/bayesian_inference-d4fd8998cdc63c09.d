/root/repo/target/debug/examples/bayesian_inference-d4fd8998cdc63c09.d: examples/bayesian_inference.rs

/root/repo/target/debug/examples/bayesian_inference-d4fd8998cdc63c09: examples/bayesian_inference.rs

examples/bayesian_inference.rs:

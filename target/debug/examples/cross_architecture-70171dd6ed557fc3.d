/root/repo/target/debug/examples/cross_architecture-70171dd6ed557fc3.d: examples/cross_architecture.rs

/root/repo/target/debug/examples/cross_architecture-70171dd6ed557fc3: examples/cross_architecture.rs

examples/cross_architecture.rs:

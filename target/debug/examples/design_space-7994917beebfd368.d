/root/repo/target/debug/examples/design_space-7994917beebfd368.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-7994917beebfd368: examples/design_space.rs

examples/design_space.rs:

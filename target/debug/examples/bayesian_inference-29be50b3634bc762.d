/root/repo/target/debug/examples/bayesian_inference-29be50b3634bc762.d: examples/bayesian_inference.rs

/root/repo/target/debug/examples/bayesian_inference-29be50b3634bc762: examples/bayesian_inference.rs

examples/bayesian_inference.rs:

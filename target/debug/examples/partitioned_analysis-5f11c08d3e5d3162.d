/root/repo/target/debug/examples/partitioned_analysis-5f11c08d3e5d3162.d: examples/partitioned_analysis.rs

/root/repo/target/debug/examples/partitioned_analysis-5f11c08d3e5d3162: examples/partitioned_analysis.rs

examples/partitioned_analysis.rs:

/root/repo/target/debug/examples/partitioned_analysis-174b6b6692c5348d.d: examples/partitioned_analysis.rs

/root/repo/target/debug/examples/partitioned_analysis-174b6b6692c5348d: examples/partitioned_analysis.rs

examples/partitioned_analysis.rs:

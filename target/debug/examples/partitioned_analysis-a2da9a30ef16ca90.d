/root/repo/target/debug/examples/partitioned_analysis-a2da9a30ef16ca90.d: examples/partitioned_analysis.rs

/root/repo/target/debug/examples/partitioned_analysis-a2da9a30ef16ca90: examples/partitioned_analysis.rs

examples/partitioned_analysis.rs:

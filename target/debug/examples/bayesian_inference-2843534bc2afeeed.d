/root/repo/target/debug/examples/bayesian_inference-2843534bc2afeeed.d: examples/bayesian_inference.rs

/root/repo/target/debug/examples/bayesian_inference-2843534bc2afeeed: examples/bayesian_inference.rs

examples/bayesian_inference.rs:

/root/repo/target/debug/examples/design_space-74227a25b094a79f.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-74227a25b094a79f: examples/design_space.rs

examples/design_space.rs:

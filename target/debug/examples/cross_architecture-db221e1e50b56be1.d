/root/repo/target/debug/examples/cross_architecture-db221e1e50b56be1.d: examples/cross_architecture.rs

/root/repo/target/debug/examples/cross_architecture-db221e1e50b56be1: examples/cross_architecture.rs

examples/cross_architecture.rs:

/root/repo/target/debug/examples/quickstart-e9bc7794b062c920.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e9bc7794b062c920: examples/quickstart.rs

examples/quickstart.rs:

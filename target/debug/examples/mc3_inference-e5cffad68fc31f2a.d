/root/repo/target/debug/examples/mc3_inference-e5cffad68fc31f2a.d: examples/mc3_inference.rs

/root/repo/target/debug/examples/mc3_inference-e5cffad68fc31f2a: examples/mc3_inference.rs

examples/mc3_inference.rs:

/root/repo/target/debug/examples/incremental_updates-41dd332d84b873d3.d: examples/incremental_updates.rs

/root/repo/target/debug/examples/incremental_updates-41dd332d84b873d3: examples/incremental_updates.rs

examples/incremental_updates.rs:

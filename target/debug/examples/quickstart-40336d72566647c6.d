/root/repo/target/debug/examples/quickstart-40336d72566647c6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-40336d72566647c6: examples/quickstart.rs

examples/quickstart.rs:

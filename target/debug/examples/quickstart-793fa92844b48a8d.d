/root/repo/target/debug/examples/quickstart-793fa92844b48a8d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-793fa92844b48a8d: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/incremental_updates-b32e0d07c2081036.d: examples/incremental_updates.rs

/root/repo/target/debug/examples/incremental_updates-b32e0d07c2081036: examples/incremental_updates.rs

examples/incremental_updates.rs:

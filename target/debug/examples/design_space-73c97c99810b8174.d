/root/repo/target/debug/examples/design_space-73c97c99810b8174.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-73c97c99810b8174: examples/design_space.rs

examples/design_space.rs:

/root/repo/target/debug/examples/incremental_updates-983effe399d17dfd.d: examples/incremental_updates.rs

/root/repo/target/debug/examples/incremental_updates-983effe399d17dfd: examples/incremental_updates.rs

examples/incremental_updates.rs:

/root/repo/target/debug/examples/cross_architecture-0007723951071ab8.d: examples/cross_architecture.rs

/root/repo/target/debug/examples/cross_architecture-0007723951071ab8: examples/cross_architecture.rs

examples/cross_architecture.rs:

/root/repo/target/debug/examples/mc3_inference-ae1c0b0676507868.d: examples/mc3_inference.rs

/root/repo/target/debug/examples/mc3_inference-ae1c0b0676507868: examples/mc3_inference.rs

examples/mc3_inference.rs:

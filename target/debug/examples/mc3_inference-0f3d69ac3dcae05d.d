/root/repo/target/debug/examples/mc3_inference-0f3d69ac3dcae05d.d: examples/mc3_inference.rs

/root/repo/target/debug/examples/mc3_inference-0f3d69ac3dcae05d: examples/mc3_inference.rs

examples/mc3_inference.rs:

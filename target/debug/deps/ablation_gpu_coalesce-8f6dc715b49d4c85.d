/root/repo/target/debug/deps/ablation_gpu_coalesce-8f6dc715b49d4c85.d: crates/bench/src/bin/ablation_gpu_coalesce.rs

/root/repo/target/debug/deps/ablation_gpu_coalesce-8f6dc715b49d4c85: crates/bench/src/bin/ablation_gpu_coalesce.rs

crates/bench/src/bin/ablation_gpu_coalesce.rs:

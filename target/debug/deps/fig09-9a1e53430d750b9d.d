/root/repo/target/debug/deps/fig09-9a1e53430d750b9d.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-9a1e53430d750b9d: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:

/root/repo/target/debug/deps/cross_backend-69172785e5f6fa5f.d: tests/cross_backend.rs

/root/repo/target/debug/deps/cross_backend-69172785e5f6fa5f: tests/cross_backend.rs

tests/cross_backend.rs:

/root/repo/target/debug/deps/pipeline-ef89ab13352ef131.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-ef89ab13352ef131: tests/pipeline.rs

tests/pipeline.rs:

/root/repo/target/debug/deps/fig07-816aca850847b0e0.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-816aca850847b0e0: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:

/root/repo/target/debug/deps/gpu_design_space-b9c4225ee91dd697.d: crates/bench/src/bin/gpu_design_space.rs

/root/repo/target/debug/deps/gpu_design_space-b9c4225ee91dd697: crates/bench/src/bin/gpu_design_space.rs

crates/bench/src/bin/gpu_design_space.rs:

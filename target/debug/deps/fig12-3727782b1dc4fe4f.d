/root/repo/target/debug/deps/fig12-3727782b1dc4fe4f.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-3727782b1dc4fe4f: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:

/root/repo/target/debug/deps/gpu_design_space-360bfd4248160d64.d: crates/bench/src/bin/gpu_design_space.rs

/root/repo/target/debug/deps/gpu_design_space-360bfd4248160d64: crates/bench/src/bin/gpu_design_space.rs

crates/bench/src/bin/gpu_design_space.rs:

/root/repo/target/debug/deps/recovery-1fac76e30eee30f9.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-1fac76e30eee30f9: tests/recovery.rs

tests/recovery.rs:

/root/repo/target/debug/deps/serde_json-844348491444412a.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-844348491444412a.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-844348491444412a.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

/root/repo/target/debug/deps/plf_multicore-2cb8b0370deba42f.d: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

/root/repo/target/debug/deps/libplf_multicore-2cb8b0370deba42f.rlib: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

/root/repo/target/debug/deps/libplf_multicore-2cb8b0370deba42f.rmeta: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

crates/multicore/src/lib.rs:
crates/multicore/src/backend.rs:
crates/multicore/src/model.rs:
crates/multicore/src/persistent.rs:

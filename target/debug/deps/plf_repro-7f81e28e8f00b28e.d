/root/repo/target/debug/deps/plf_repro-7f81e28e8f00b28e.d: src/lib.rs

/root/repo/target/debug/deps/plf_repro-7f81e28e8f00b28e: src/lib.rs

src/lib.rs:

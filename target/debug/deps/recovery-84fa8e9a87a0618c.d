/root/repo/target/debug/deps/recovery-84fa8e9a87a0618c.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-84fa8e9a87a0618c: tests/recovery.rs

tests/recovery.rs:

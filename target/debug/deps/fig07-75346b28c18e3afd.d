/root/repo/target/debug/deps/fig07-75346b28c18e3afd.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-75346b28c18e3afd: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:

/root/repo/target/debug/deps/future_hybrid-27c2ed4e4abb5899.d: crates/bench/src/bin/future_hybrid.rs

/root/repo/target/debug/deps/future_hybrid-27c2ed4e4abb5899: crates/bench/src/bin/future_hybrid.rs

crates/bench/src/bin/future_hybrid.rs:

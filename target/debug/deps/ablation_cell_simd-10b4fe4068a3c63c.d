/root/repo/target/debug/deps/ablation_cell_simd-10b4fe4068a3c63c.d: crates/bench/src/bin/ablation_cell_simd.rs

/root/repo/target/debug/deps/ablation_cell_simd-10b4fe4068a3c63c: crates/bench/src/bin/ablation_cell_simd.rs

crates/bench/src/bin/ablation_cell_simd.rs:

/root/repo/target/debug/deps/plfr-a9c6a4412f697f18.d: src/bin/plfr.rs

/root/repo/target/debug/deps/plfr-a9c6a4412f697f18: src/bin/plfr.rs

src/bin/plfr.rs:

/root/repo/target/debug/deps/serde_json-e542c23002db483b.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-e542c23002db483b: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

/root/repo/target/debug/deps/rates_sweep-422729ef7960e1b1.d: crates/bench/src/bin/rates_sweep.rs

/root/repo/target/debug/deps/rates_sweep-422729ef7960e1b1: crates/bench/src/bin/rates_sweep.rs

crates/bench/src/bin/rates_sweep.rs:

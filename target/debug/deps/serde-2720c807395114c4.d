/root/repo/target/debug/deps/serde-2720c807395114c4.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2720c807395114c4.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2720c807395114c4.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

/root/repo/target/debug/deps/plf_seqgen-6f6a932e561351b1.d: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

/root/repo/target/debug/deps/libplf_seqgen-6f6a932e561351b1.rlib: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

/root/repo/target/debug/deps/libplf_seqgen-6f6a932e561351b1.rmeta: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

crates/seqgen/src/lib.rs:
crates/seqgen/src/datasets.rs:
crates/seqgen/src/evolve.rs:
crates/seqgen/src/yule.rs:

/root/repo/target/debug/deps/plf_gpu-8eee34794e943c44.d: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/plf_gpu-8eee34794e943c44: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/backend.rs:
crates/gpu/src/device.rs:
crates/gpu/src/grid.rs:
crates/gpu/src/kernels.rs:
crates/gpu/src/model.rs:

/root/repo/target/debug/deps/fig11-4b085befd179543a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-4b085befd179543a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:

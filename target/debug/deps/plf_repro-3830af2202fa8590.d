/root/repo/target/debug/deps/plf_repro-3830af2202fa8590.d: src/lib.rs

/root/repo/target/debug/deps/plf_repro-3830af2202fa8590: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/mcmc-dffc02d035d7b632.d: crates/bench/benches/mcmc.rs

/root/repo/target/debug/deps/mcmc-dffc02d035d7b632: crates/bench/benches/mcmc.rs

crates/bench/benches/mcmc.rs:

/root/repo/target/debug/deps/plfr-953c77a1fc8b02fe.d: src/bin/plfr.rs

/root/repo/target/debug/deps/plfr-953c77a1fc8b02fe: src/bin/plfr.rs

src/bin/plfr.rs:

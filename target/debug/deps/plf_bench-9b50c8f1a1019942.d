/root/repo/target/debug/deps/plf_bench-9b50c8f1a1019942.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libplf_bench-9b50c8f1a1019942.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libplf_bench-9b50c8f1a1019942.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:

/root/repo/target/debug/deps/plf_bench-869988815df43d6b.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libplf_bench-869988815df43d6b.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libplf_bench-869988815df43d6b.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:

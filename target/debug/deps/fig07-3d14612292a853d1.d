/root/repo/target/debug/deps/fig07-3d14612292a853d1.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-3d14612292a853d1: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:

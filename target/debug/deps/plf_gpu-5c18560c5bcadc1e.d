/root/repo/target/debug/deps/plf_gpu-5c18560c5bcadc1e.d: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libplf_gpu-5c18560c5bcadc1e.rmeta: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/backend.rs:
crates/gpu/src/device.rs:
crates/gpu/src/grid.rs:
crates/gpu/src/kernels.rs:
crates/gpu/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

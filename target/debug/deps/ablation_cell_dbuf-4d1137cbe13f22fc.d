/root/repo/target/debug/deps/ablation_cell_dbuf-4d1137cbe13f22fc.d: crates/bench/src/bin/ablation_cell_dbuf.rs

/root/repo/target/debug/deps/ablation_cell_dbuf-4d1137cbe13f22fc: crates/bench/src/bin/ablation_cell_dbuf.rs

crates/bench/src/bin/ablation_cell_dbuf.rs:

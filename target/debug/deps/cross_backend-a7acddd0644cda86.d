/root/repo/target/debug/deps/cross_backend-a7acddd0644cda86.d: tests/cross_backend.rs

/root/repo/target/debug/deps/cross_backend-a7acddd0644cda86: tests/cross_backend.rs

tests/cross_backend.rs:

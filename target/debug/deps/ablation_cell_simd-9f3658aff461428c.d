/root/repo/target/debug/deps/ablation_cell_simd-9f3658aff461428c.d: crates/bench/src/bin/ablation_cell_simd.rs

/root/repo/target/debug/deps/ablation_cell_simd-9f3658aff461428c: crates/bench/src/bin/ablation_cell_simd.rs

crates/bench/src/bin/ablation_cell_simd.rs:

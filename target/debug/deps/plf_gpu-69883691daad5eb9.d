/root/repo/target/debug/deps/plf_gpu-69883691daad5eb9.d: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libplf_gpu-69883691daad5eb9.rmeta: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/backend.rs:
crates/gpu/src/device.rs:
crates/gpu/src/grid.rs:
crates/gpu/src/kernels.rs:
crates/gpu/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_cell_dbuf-63b851784ecc9581.d: crates/bench/src/bin/ablation_cell_dbuf.rs

/root/repo/target/debug/deps/ablation_cell_dbuf-63b851784ecc9581: crates/bench/src/bin/ablation_cell_dbuf.rs

crates/bench/src/bin/ablation_cell_dbuf.rs:

/root/repo/target/debug/deps/serde-eff7d798efe0a4c1.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-eff7d798efe0a4c1: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

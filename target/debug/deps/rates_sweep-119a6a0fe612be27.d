/root/repo/target/debug/deps/rates_sweep-119a6a0fe612be27.d: crates/bench/src/bin/rates_sweep.rs

/root/repo/target/debug/deps/rates_sweep-119a6a0fe612be27: crates/bench/src/bin/rates_sweep.rs

crates/bench/src/bin/rates_sweep.rs:

/root/repo/target/debug/deps/fig10-8a293698e045dcd9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-8a293698e045dcd9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

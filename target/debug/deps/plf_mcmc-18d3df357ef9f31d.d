/root/repo/target/debug/deps/plf_mcmc-18d3df357ef9f31d.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/debug/deps/libplf_mcmc-18d3df357ef9f31d.rlib: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/debug/deps/libplf_mcmc-18d3df357ef9f31d.rmeta: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/checkpoint.rs:
crates/mcmc/src/consensus.rs:
crates/mcmc/src/mc3.rs:
crates/mcmc/src/priors.rs:
crates/mcmc/src/proposals.rs:
crates/mcmc/src/rng.rs:
crates/mcmc/src/state.rs:
crates/mcmc/src/trace.rs:

/root/repo/target/debug/deps/fig12-4cc5f2527ac4c40c.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-4cc5f2527ac4c40c: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:

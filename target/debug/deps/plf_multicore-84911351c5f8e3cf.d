/root/repo/target/debug/deps/plf_multicore-84911351c5f8e3cf.d: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs Cargo.toml

/root/repo/target/debug/deps/libplf_multicore-84911351c5f8e3cf.rmeta: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs Cargo.toml

crates/multicore/src/lib.rs:
crates/multicore/src/backend.rs:
crates/multicore/src/model.rs:
crates/multicore/src/persistent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

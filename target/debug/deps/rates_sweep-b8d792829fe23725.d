/root/repo/target/debug/deps/rates_sweep-b8d792829fe23725.d: crates/bench/src/bin/rates_sweep.rs

/root/repo/target/debug/deps/rates_sweep-b8d792829fe23725: crates/bench/src/bin/rates_sweep.rs

crates/bench/src/bin/rates_sweep.rs:

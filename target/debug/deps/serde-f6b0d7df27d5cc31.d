/root/repo/target/debug/deps/serde-f6b0d7df27d5cc31.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-f6b0d7df27d5cc31.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

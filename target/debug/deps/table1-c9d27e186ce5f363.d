/root/repo/target/debug/deps/table1-c9d27e186ce5f363.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c9d27e186ce5f363: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

/root/repo/target/debug/deps/fig10-896bf1012ee2f8ad.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-896bf1012ee2f8ad: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

/root/repo/target/debug/deps/fig09-a68fc101f00e4a65.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-a68fc101f00e4a65: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:

/root/repo/target/debug/deps/plf_multicore-f5ae3ba51ee09fb6.d: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

/root/repo/target/debug/deps/plf_multicore-f5ae3ba51ee09fb6: crates/multicore/src/lib.rs crates/multicore/src/backend.rs crates/multicore/src/model.rs crates/multicore/src/persistent.rs

crates/multicore/src/lib.rs:
crates/multicore/src/backend.rs:
crates/multicore/src/model.rs:
crates/multicore/src/persistent.rs:

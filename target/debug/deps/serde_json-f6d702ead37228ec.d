/root/repo/target/debug/deps/serde_json-f6d702ead37228ec.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f6d702ead37228ec.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f6d702ead37228ec.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

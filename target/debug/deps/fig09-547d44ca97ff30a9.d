/root/repo/target/debug/deps/fig09-547d44ca97ff30a9.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-547d44ca97ff30a9: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:

/root/repo/target/debug/deps/gpu_design_space-99fee0e19cf36ddd.d: crates/bench/src/bin/gpu_design_space.rs

/root/repo/target/debug/deps/gpu_design_space-99fee0e19cf36ddd: crates/bench/src/bin/gpu_design_space.rs

crates/bench/src/bin/gpu_design_space.rs:

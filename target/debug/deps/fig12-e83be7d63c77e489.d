/root/repo/target/debug/deps/fig12-e83be7d63c77e489.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-e83be7d63c77e489: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:

/root/repo/target/debug/deps/fig09-f3eae54dd8beae1c.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-f3eae54dd8beae1c: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:

/root/repo/target/debug/deps/fig12-6e8cff14d52c9f9e.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-6e8cff14d52c9f9e: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:

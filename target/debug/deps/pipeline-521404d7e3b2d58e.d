/root/repo/target/debug/deps/pipeline-521404d7e3b2d58e.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-521404d7e3b2d58e: tests/pipeline.rs

tests/pipeline.rs:

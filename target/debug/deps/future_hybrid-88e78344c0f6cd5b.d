/root/repo/target/debug/deps/future_hybrid-88e78344c0f6cd5b.d: crates/bench/src/bin/future_hybrid.rs

/root/repo/target/debug/deps/future_hybrid-88e78344c0f6cd5b: crates/bench/src/bin/future_hybrid.rs

crates/bench/src/bin/future_hybrid.rs:

/root/repo/target/debug/deps/plf_phylo-d1299893415c63e4.d: crates/phylo/src/lib.rs crates/phylo/src/alignment.rs crates/phylo/src/clv.rs crates/phylo/src/dna.rs crates/phylo/src/incremental.rs crates/phylo/src/io.rs crates/phylo/src/kernels/mod.rs crates/phylo/src/kernels/plan.rs crates/phylo/src/kernels/scalar.rs crates/phylo/src/kernels/simd4.rs crates/phylo/src/likelihood.rs crates/phylo/src/model/mod.rs crates/phylo/src/model/eigen.rs crates/phylo/src/model/gamma.rs crates/phylo/src/model/gtr.rs crates/phylo/src/oracle.rs crates/phylo/src/partition.rs crates/phylo/src/resilience/mod.rs crates/phylo/src/resilience/error.rs crates/phylo/src/resilience/fault.rs crates/phylo/src/resilience/wrapper.rs crates/phylo/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libplf_phylo-d1299893415c63e4.rmeta: crates/phylo/src/lib.rs crates/phylo/src/alignment.rs crates/phylo/src/clv.rs crates/phylo/src/dna.rs crates/phylo/src/incremental.rs crates/phylo/src/io.rs crates/phylo/src/kernels/mod.rs crates/phylo/src/kernels/plan.rs crates/phylo/src/kernels/scalar.rs crates/phylo/src/kernels/simd4.rs crates/phylo/src/likelihood.rs crates/phylo/src/model/mod.rs crates/phylo/src/model/eigen.rs crates/phylo/src/model/gamma.rs crates/phylo/src/model/gtr.rs crates/phylo/src/oracle.rs crates/phylo/src/partition.rs crates/phylo/src/resilience/mod.rs crates/phylo/src/resilience/error.rs crates/phylo/src/resilience/fault.rs crates/phylo/src/resilience/wrapper.rs crates/phylo/src/tree.rs Cargo.toml

crates/phylo/src/lib.rs:
crates/phylo/src/alignment.rs:
crates/phylo/src/clv.rs:
crates/phylo/src/dna.rs:
crates/phylo/src/incremental.rs:
crates/phylo/src/io.rs:
crates/phylo/src/kernels/mod.rs:
crates/phylo/src/kernels/plan.rs:
crates/phylo/src/kernels/scalar.rs:
crates/phylo/src/kernels/simd4.rs:
crates/phylo/src/likelihood.rs:
crates/phylo/src/model/mod.rs:
crates/phylo/src/model/eigen.rs:
crates/phylo/src/model/gamma.rs:
crates/phylo/src/model/gtr.rs:
crates/phylo/src/oracle.rs:
crates/phylo/src/partition.rs:
crates/phylo/src/resilience/mod.rs:
crates/phylo/src/resilience/error.rs:
crates/phylo/src/resilience/fault.rs:
crates/phylo/src/resilience/wrapper.rs:
crates/phylo/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

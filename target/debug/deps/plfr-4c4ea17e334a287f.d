/root/repo/target/debug/deps/plfr-4c4ea17e334a287f.d: src/bin/plfr.rs

/root/repo/target/debug/deps/plfr-4c4ea17e334a287f: src/bin/plfr.rs

src/bin/plfr.rs:

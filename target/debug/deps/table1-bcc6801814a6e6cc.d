/root/repo/target/debug/deps/table1-bcc6801814a6e6cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-bcc6801814a6e6cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

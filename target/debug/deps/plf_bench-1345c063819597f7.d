/root/repo/target/debug/deps/plf_bench-1345c063819597f7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/plf_bench-1345c063819597f7: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:

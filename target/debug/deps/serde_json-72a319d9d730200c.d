/root/repo/target/debug/deps/serde_json-72a319d9d730200c.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-72a319d9d730200c: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

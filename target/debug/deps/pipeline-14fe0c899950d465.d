/root/repo/target/debug/deps/pipeline-14fe0c899950d465.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-14fe0c899950d465: tests/pipeline.rs

tests/pipeline.rs:

/root/repo/target/debug/deps/fig07-4ccd47bac71876b0.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-4ccd47bac71876b0: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:

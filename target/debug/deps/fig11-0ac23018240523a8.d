/root/repo/target/debug/deps/fig11-0ac23018240523a8.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-0ac23018240523a8: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:

/root/repo/target/debug/deps/plf_repro-5cfbc87eac0d14b6.d: src/lib.rs

/root/repo/target/debug/deps/libplf_repro-5cfbc87eac0d14b6.rlib: src/lib.rs

/root/repo/target/debug/deps/libplf_repro-5cfbc87eac0d14b6.rmeta: src/lib.rs

src/lib.rs:

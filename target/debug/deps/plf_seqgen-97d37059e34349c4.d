/root/repo/target/debug/deps/plf_seqgen-97d37059e34349c4.d: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

/root/repo/target/debug/deps/plf_seqgen-97d37059e34349c4: crates/seqgen/src/lib.rs crates/seqgen/src/datasets.rs crates/seqgen/src/evolve.rs crates/seqgen/src/yule.rs

crates/seqgen/src/lib.rs:
crates/seqgen/src/datasets.rs:
crates/seqgen/src/evolve.rs:
crates/seqgen/src/yule.rs:

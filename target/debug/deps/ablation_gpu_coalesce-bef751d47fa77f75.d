/root/repo/target/debug/deps/ablation_gpu_coalesce-bef751d47fa77f75.d: crates/bench/src/bin/ablation_gpu_coalesce.rs

/root/repo/target/debug/deps/ablation_gpu_coalesce-bef751d47fa77f75: crates/bench/src/bin/ablation_gpu_coalesce.rs

crates/bench/src/bin/ablation_gpu_coalesce.rs:

/root/repo/target/debug/deps/ablation_gpu_sched-f2a1125161ce7954.d: crates/bench/src/bin/ablation_gpu_sched.rs

/root/repo/target/debug/deps/ablation_gpu_sched-f2a1125161ce7954: crates/bench/src/bin/ablation_gpu_sched.rs

crates/bench/src/bin/ablation_gpu_sched.rs:

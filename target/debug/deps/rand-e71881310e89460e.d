/root/repo/target/debug/deps/rand-e71881310e89460e.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-e71881310e89460e.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_gpu_sched-bb12676f2649f962.d: crates/bench/src/bin/ablation_gpu_sched.rs

/root/repo/target/debug/deps/ablation_gpu_sched-bb12676f2649f962: crates/bench/src/bin/ablation_gpu_sched.rs

crates/bench/src/bin/ablation_gpu_sched.rs:

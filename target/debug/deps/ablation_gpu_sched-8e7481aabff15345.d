/root/repo/target/debug/deps/ablation_gpu_sched-8e7481aabff15345.d: crates/bench/src/bin/ablation_gpu_sched.rs

/root/repo/target/debug/deps/ablation_gpu_sched-8e7481aabff15345: crates/bench/src/bin/ablation_gpu_sched.rs

crates/bench/src/bin/ablation_gpu_sched.rs:

/root/repo/target/debug/deps/plf_mcmc-a04baa687dd43add.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/debug/deps/libplf_mcmc-a04baa687dd43add.rlib: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/debug/deps/libplf_mcmc-a04baa687dd43add.rmeta: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/checkpoint.rs:
crates/mcmc/src/consensus.rs:
crates/mcmc/src/mc3.rs:
crates/mcmc/src/priors.rs:
crates/mcmc/src/proposals.rs:
crates/mcmc/src/rng.rs:
crates/mcmc/src/state.rs:
crates/mcmc/src/trace.rs:

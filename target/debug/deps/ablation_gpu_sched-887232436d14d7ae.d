/root/repo/target/debug/deps/ablation_gpu_sched-887232436d14d7ae.d: crates/bench/src/bin/ablation_gpu_sched.rs

/root/repo/target/debug/deps/ablation_gpu_sched-887232436d14d7ae: crates/bench/src/bin/ablation_gpu_sched.rs

crates/bench/src/bin/ablation_gpu_sched.rs:

/root/repo/target/debug/deps/table1-5a86d9686be6e66f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5a86d9686be6e66f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

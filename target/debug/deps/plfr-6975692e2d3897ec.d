/root/repo/target/debug/deps/plfr-6975692e2d3897ec.d: src/bin/plfr.rs

/root/repo/target/debug/deps/plfr-6975692e2d3897ec: src/bin/plfr.rs

src/bin/plfr.rs:

/root/repo/target/debug/deps/plf_mcmc-e3d58fa3626f0d3a.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libplf_mcmc-e3d58fa3626f0d3a.rmeta: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs Cargo.toml

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/checkpoint.rs:
crates/mcmc/src/consensus.rs:
crates/mcmc/src/mc3.rs:
crates/mcmc/src/priors.rs:
crates/mcmc/src/proposals.rs:
crates/mcmc/src/rng.rs:
crates/mcmc/src/state.rs:
crates/mcmc/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

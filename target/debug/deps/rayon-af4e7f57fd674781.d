/root/repo/target/debug/deps/rayon-af4e7f57fd674781.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-af4e7f57fd674781: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:

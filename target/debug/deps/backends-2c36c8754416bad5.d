/root/repo/target/debug/deps/backends-2c36c8754416bad5.d: crates/bench/benches/backends.rs

/root/repo/target/debug/deps/backends-2c36c8754416bad5: crates/bench/benches/backends.rs

crates/bench/benches/backends.rs:

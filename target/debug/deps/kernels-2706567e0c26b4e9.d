/root/repo/target/debug/deps/kernels-2706567e0c26b4e9.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-2706567e0c26b4e9: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

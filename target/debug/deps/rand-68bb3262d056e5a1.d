/root/repo/target/debug/deps/rand-68bb3262d056e5a1.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-68bb3262d056e5a1: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:

/root/repo/target/debug/deps/plf_bench-e47ddc33ea8caf1f.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libplf_bench-e47ddc33ea8caf1f.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libplf_bench-e47ddc33ea8caf1f.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:

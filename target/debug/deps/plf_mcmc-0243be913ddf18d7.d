/root/repo/target/debug/deps/plf_mcmc-0243be913ddf18d7.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

/root/repo/target/debug/deps/plf_mcmc-0243be913ddf18d7: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/checkpoint.rs crates/mcmc/src/consensus.rs crates/mcmc/src/mc3.rs crates/mcmc/src/priors.rs crates/mcmc/src/proposals.rs crates/mcmc/src/rng.rs crates/mcmc/src/state.rs crates/mcmc/src/trace.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/checkpoint.rs:
crates/mcmc/src/consensus.rs:
crates/mcmc/src/mc3.rs:
crates/mcmc/src/priors.rs:
crates/mcmc/src/proposals.rs:
crates/mcmc/src/rng.rs:
crates/mcmc/src/state.rs:
crates/mcmc/src/trace.rs:

/root/repo/target/debug/deps/plf_cellbe-f0ae7a885aa45aa3.d: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs

/root/repo/target/debug/deps/libplf_cellbe-f0ae7a885aa45aa3.rlib: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs

/root/repo/target/debug/deps/libplf_cellbe-f0ae7a885aa45aa3.rmeta: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs

crates/cellbe/src/lib.rs:
crates/cellbe/src/backend.rs:
crates/cellbe/src/dma.rs:
crates/cellbe/src/fsm.rs:
crates/cellbe/src/ls.rs:
crates/cellbe/src/model.rs:
crates/cellbe/src/schedule.rs:
crates/cellbe/src/timing.rs:

/root/repo/target/debug/deps/plf_simcore-97eefcf8897f36e8.d: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs Cargo.toml

/root/repo/target/debug/deps/libplf_simcore-97eefcf8897f36e8.rmeta: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/hybrid.rs:
crates/simcore/src/machine.rs:
crates/simcore/src/model.rs:
crates/simcore/src/workload.rs:
crates/simcore/src/xfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

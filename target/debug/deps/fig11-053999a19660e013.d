/root/repo/target/debug/deps/fig11-053999a19660e013.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-053999a19660e013: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:

/root/repo/target/debug/deps/plf_repro-55ffa5ca3ce85eab.d: src/lib.rs

/root/repo/target/debug/deps/plf_repro-55ffa5ca3ce85eab: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/plfr-68254069b80eec69.d: src/bin/plfr.rs

/root/repo/target/debug/deps/plfr-68254069b80eec69: src/bin/plfr.rs

src/bin/plfr.rs:

/root/repo/target/debug/deps/rayon-e55e977ff29136c5.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-e55e977ff29136c5.rlib: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-e55e977ff29136c5.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:

/root/repo/target/debug/deps/ablation_gpu_coalesce-837bd576b9097fd4.d: crates/bench/src/bin/ablation_gpu_coalesce.rs

/root/repo/target/debug/deps/ablation_gpu_coalesce-837bd576b9097fd4: crates/bench/src/bin/ablation_gpu_coalesce.rs

crates/bench/src/bin/ablation_gpu_coalesce.rs:

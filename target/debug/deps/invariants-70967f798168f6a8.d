/root/repo/target/debug/deps/invariants-70967f798168f6a8.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-70967f798168f6a8: tests/invariants.rs

tests/invariants.rs:

/root/repo/target/debug/deps/ablation_cell_dbuf-703ca747649c92f7.d: crates/bench/src/bin/ablation_cell_dbuf.rs

/root/repo/target/debug/deps/ablation_cell_dbuf-703ca747649c92f7: crates/bench/src/bin/ablation_cell_dbuf.rs

crates/bench/src/bin/ablation_cell_dbuf.rs:

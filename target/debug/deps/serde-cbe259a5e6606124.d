/root/repo/target/debug/deps/serde-cbe259a5e6606124.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-cbe259a5e6606124.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-cbe259a5e6606124.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

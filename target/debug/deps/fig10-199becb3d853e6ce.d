/root/repo/target/debug/deps/fig10-199becb3d853e6ce.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-199becb3d853e6ce: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

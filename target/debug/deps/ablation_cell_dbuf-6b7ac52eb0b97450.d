/root/repo/target/debug/deps/ablation_cell_dbuf-6b7ac52eb0b97450.d: crates/bench/src/bin/ablation_cell_dbuf.rs

/root/repo/target/debug/deps/ablation_cell_dbuf-6b7ac52eb0b97450: crates/bench/src/bin/ablation_cell_dbuf.rs

crates/bench/src/bin/ablation_cell_dbuf.rs:

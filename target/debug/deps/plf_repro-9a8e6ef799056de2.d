/root/repo/target/debug/deps/plf_repro-9a8e6ef799056de2.d: src/lib.rs

/root/repo/target/debug/deps/libplf_repro-9a8e6ef799056de2.rlib: src/lib.rs

/root/repo/target/debug/deps/libplf_repro-9a8e6ef799056de2.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/plf_gpu-3ed63613b861e4e1.d: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/libplf_gpu-3ed63613b861e4e1.rlib: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/libplf_gpu-3ed63613b861e4e1.rmeta: crates/gpu/src/lib.rs crates/gpu/src/backend.rs crates/gpu/src/device.rs crates/gpu/src/grid.rs crates/gpu/src/kernels.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/backend.rs:
crates/gpu/src/device.rs:
crates/gpu/src/grid.rs:
crates/gpu/src/kernels.rs:
crates/gpu/src/model.rs:

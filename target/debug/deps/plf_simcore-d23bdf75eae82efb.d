/root/repo/target/debug/deps/plf_simcore-d23bdf75eae82efb.d: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

/root/repo/target/debug/deps/plf_simcore-d23bdf75eae82efb: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

crates/simcore/src/lib.rs:
crates/simcore/src/hybrid.rs:
crates/simcore/src/machine.rs:
crates/simcore/src/model.rs:
crates/simcore/src/workload.rs:
crates/simcore/src/xfer.rs:

/root/repo/target/debug/deps/plf_cellbe-525af0ec1fe1ac86.d: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libplf_cellbe-525af0ec1fe1ac86.rmeta: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs Cargo.toml

crates/cellbe/src/lib.rs:
crates/cellbe/src/backend.rs:
crates/cellbe/src/dma.rs:
crates/cellbe/src/fsm.rs:
crates/cellbe/src/ls.rs:
crates/cellbe/src/model.rs:
crates/cellbe/src/schedule.rs:
crates/cellbe/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

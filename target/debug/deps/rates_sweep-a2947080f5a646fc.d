/root/repo/target/debug/deps/rates_sweep-a2947080f5a646fc.d: crates/bench/src/bin/rates_sweep.rs

/root/repo/target/debug/deps/rates_sweep-a2947080f5a646fc: crates/bench/src/bin/rates_sweep.rs

crates/bench/src/bin/rates_sweep.rs:

/root/repo/target/debug/deps/datagen-f89226166cda1463.d: crates/bench/benches/datagen.rs

/root/repo/target/debug/deps/datagen-f89226166cda1463: crates/bench/benches/datagen.rs

crates/bench/benches/datagen.rs:

/root/repo/target/debug/deps/rand-8390438ec4d2cd50.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8390438ec4d2cd50.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8390438ec4d2cd50.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:

/root/repo/target/debug/deps/cross_backend-8fdaa1472174cff1.d: tests/cross_backend.rs

/root/repo/target/debug/deps/cross_backend-8fdaa1472174cff1: tests/cross_backend.rs

tests/cross_backend.rs:

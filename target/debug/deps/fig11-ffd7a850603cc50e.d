/root/repo/target/debug/deps/fig11-ffd7a850603cc50e.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-ffd7a850603cc50e: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:

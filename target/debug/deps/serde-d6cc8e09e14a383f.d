/root/repo/target/debug/deps/serde-d6cc8e09e14a383f.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-d6cc8e09e14a383f: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

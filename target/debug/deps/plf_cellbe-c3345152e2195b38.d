/root/repo/target/debug/deps/plf_cellbe-c3345152e2195b38.d: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libplf_cellbe-c3345152e2195b38.rmeta: crates/cellbe/src/lib.rs crates/cellbe/src/backend.rs crates/cellbe/src/dma.rs crates/cellbe/src/fsm.rs crates/cellbe/src/ls.rs crates/cellbe/src/model.rs crates/cellbe/src/schedule.rs crates/cellbe/src/timing.rs Cargo.toml

crates/cellbe/src/lib.rs:
crates/cellbe/src/backend.rs:
crates/cellbe/src/dma.rs:
crates/cellbe/src/fsm.rs:
crates/cellbe/src/ls.rs:
crates/cellbe/src/model.rs:
crates/cellbe/src/schedule.rs:
crates/cellbe/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

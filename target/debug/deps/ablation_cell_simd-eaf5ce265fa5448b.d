/root/repo/target/debug/deps/ablation_cell_simd-eaf5ce265fa5448b.d: crates/bench/src/bin/ablation_cell_simd.rs

/root/repo/target/debug/deps/ablation_cell_simd-eaf5ce265fa5448b: crates/bench/src/bin/ablation_cell_simd.rs

crates/bench/src/bin/ablation_cell_simd.rs:

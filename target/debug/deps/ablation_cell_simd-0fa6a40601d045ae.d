/root/repo/target/debug/deps/ablation_cell_simd-0fa6a40601d045ae.d: crates/bench/src/bin/ablation_cell_simd.rs

/root/repo/target/debug/deps/ablation_cell_simd-0fa6a40601d045ae: crates/bench/src/bin/ablation_cell_simd.rs

crates/bench/src/bin/ablation_cell_simd.rs:

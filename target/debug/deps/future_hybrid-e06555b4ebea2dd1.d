/root/repo/target/debug/deps/future_hybrid-e06555b4ebea2dd1.d: crates/bench/src/bin/future_hybrid.rs

/root/repo/target/debug/deps/future_hybrid-e06555b4ebea2dd1: crates/bench/src/bin/future_hybrid.rs

crates/bench/src/bin/future_hybrid.rs:

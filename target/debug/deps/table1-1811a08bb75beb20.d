/root/repo/target/debug/deps/table1-1811a08bb75beb20.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1811a08bb75beb20: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

/root/repo/target/debug/deps/recovery-7356f60e793f249a.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-7356f60e793f249a: tests/recovery.rs

tests/recovery.rs:

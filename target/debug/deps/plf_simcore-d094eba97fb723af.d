/root/repo/target/debug/deps/plf_simcore-d094eba97fb723af.d: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

/root/repo/target/debug/deps/libplf_simcore-d094eba97fb723af.rlib: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

/root/repo/target/debug/deps/libplf_simcore-d094eba97fb723af.rmeta: crates/simcore/src/lib.rs crates/simcore/src/hybrid.rs crates/simcore/src/machine.rs crates/simcore/src/model.rs crates/simcore/src/workload.rs crates/simcore/src/xfer.rs

crates/simcore/src/lib.rs:
crates/simcore/src/hybrid.rs:
crates/simcore/src/machine.rs:
crates/simcore/src/model.rs:
crates/simcore/src/workload.rs:
crates/simcore/src/xfer.rs:

/root/repo/target/debug/deps/invariants-b3a762b3bc1cd59f.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-b3a762b3bc1cd59f: tests/invariants.rs

tests/invariants.rs:

/root/repo/target/debug/deps/ablation_gpu_coalesce-2d1d4f46f8a4293d.d: crates/bench/src/bin/ablation_gpu_coalesce.rs

/root/repo/target/debug/deps/ablation_gpu_coalesce-2d1d4f46f8a4293d: crates/bench/src/bin/ablation_gpu_coalesce.rs

crates/bench/src/bin/ablation_gpu_coalesce.rs:

/root/repo/target/debug/deps/future_hybrid-924074ac0d4b0117.d: crates/bench/src/bin/future_hybrid.rs

/root/repo/target/debug/deps/future_hybrid-924074ac0d4b0117: crates/bench/src/bin/future_hybrid.rs

crates/bench/src/bin/future_hybrid.rs:

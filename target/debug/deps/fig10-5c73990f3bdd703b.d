/root/repo/target/debug/deps/fig10-5c73990f3bdd703b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-5c73990f3bdd703b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

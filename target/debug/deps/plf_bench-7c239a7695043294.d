/root/repo/target/debug/deps/plf_bench-7c239a7695043294.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/plf_bench-7c239a7695043294: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:

/root/repo/target/debug/deps/plf_repro-8ef5d3a4b5257380.d: src/lib.rs

/root/repo/target/debug/deps/libplf_repro-8ef5d3a4b5257380.rlib: src/lib.rs

/root/repo/target/debug/deps/libplf_repro-8ef5d3a4b5257380.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/plfr-433843114cd4275d.d: src/bin/plfr.rs

/root/repo/target/debug/deps/plfr-433843114cd4275d: src/bin/plfr.rs

src/bin/plfr.rs:

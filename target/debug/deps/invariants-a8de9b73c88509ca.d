/root/repo/target/debug/deps/invariants-a8de9b73c88509ca.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-a8de9b73c88509ca: tests/invariants.rs

tests/invariants.rs:

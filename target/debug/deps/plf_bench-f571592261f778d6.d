/root/repo/target/debug/deps/plf_bench-f571592261f778d6.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/plf_bench-f571592261f778d6: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:

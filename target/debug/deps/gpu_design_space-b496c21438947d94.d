/root/repo/target/debug/deps/gpu_design_space-b496c21438947d94.d: crates/bench/src/bin/gpu_design_space.rs

/root/repo/target/debug/deps/gpu_design_space-b496c21438947d94: crates/bench/src/bin/gpu_design_space.rs

crates/bench/src/bin/gpu_design_space.rs:

//! A minimal Rust source scanner.
//!
//! The build environment is fully offline (no `syn`), so plf-lint
//! carries its own lexical pass. It does **not** parse Rust — it only
//! separates the three token streams the rules need:
//!
//! * `code` — the source with every comment and every string/char
//!   literal blanked out (replaced by spaces, so columns survive);
//! * `comments` — per-line concatenated comment text (line `//`,
//!   doc `///`//`//!`, and block `/* */` comments, including nesting);
//! * test spans — lines covered by a `#[cfg(test)]` item body, found
//!   by brace-matching on the cleaned code.
//!
//! Handled literal forms: `"…"` with escapes, raw strings `r"…"` /
//! `r#"…"#` (any hash depth), byte strings `b"…"` / `br#"…"#`, char and
//! byte-char literals (`'x'`, `'\n'`, `b'x'`), and lifetimes (`'a`,
//! `'static`), which are *not* char literals.

/// One source file split into the streams the rules consume.
#[derive(Debug)]
pub struct Scanned {
    /// Per-line source code with comments and literal bodies blanked.
    pub code: Vec<String>,
    /// Per-line comment text (empty string when the line has none).
    pub comments: Vec<String>,
    /// `is_test[i]` — line `i` (0-based) sits inside a `#[cfg(test)]`
    /// item body.
    pub is_test: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scan `src` into cleaned code, comment text, and test spans.
pub fn scan(src: &str) -> Scanned {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    // Push `c` to the code stream, or a space placeholder.
    macro_rules! flush_line {
        () => {{
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A newline always ends the physical line; line comments
            // end here, every other state carries across.
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev_is_ident = i
                    .checked_sub(1)
                    .map(|p| chars[p].is_alphanumeric() || chars[p] == '_')
                    .unwrap_or(false);
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    i += 1;
                } else if !prev_is_ident && (c == 'r' || c == 'b') {
                    // Possible raw/byte literal prefix: r", r#", b", br",
                    // br#", b'.
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    let is_raw = chars[j] == 'r';
                    let mut hashes = 0u32;
                    let mut k = j + 1;
                    if is_raw {
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                    }
                    if is_raw && chars.get(k) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=k {
                            code.push(' ');
                        }
                        i = k + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        state = State::Str;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        state = State::Char;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime? `'\…'` and `'x'` are
                    // chars; `'ident` (no closing quote right after) is
                    // a lifetime.
                    if next == Some('\\') || (chars.get(i + 2) == Some(&'\'') && next != Some('\''))
                    {
                        state = State::Char;
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                // Every comment char still occupies a column in the
                // source line; pad `code` so columns after an inline
                // `/* … */` stay aligned with the original text.
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push(' ');
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    // A `\` before a newline is a line-continuation
                    // escape; leave the newline for the top-of-loop
                    // handler or line numbering drifts for the rest of
                    // the file.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        if chars.get(i + 1).is_some() {
                            code.push(' ');
                        }
                        i += 2;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        if chars.get(i + 1).is_some() {
                            code.push(' ');
                        }
                        i += 2;
                    }
                } else if c == '\'' {
                    state = State::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();

    let is_test = test_spans(&code_lines);
    Scanned {
        code: code_lines,
        comments: comment_lines,
        is_test,
    }
}

/// Mark every line covered by the brace-matched body following a
/// `#[cfg(test)]` attribute.
fn test_spans(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let squashed: Vec<String> = code
        .iter()
        .map(|l| l.split_whitespace().collect::<String>())
        .collect();
    for (start, squashed_line) in squashed.iter().enumerate() {
        if !squashed_line.contains("#[cfg(test)]") {
            continue;
        }
        // Find the opening brace of the attributed item, then match it.
        let mut depth = 0i64;
        let mut opened = false;
        'outer: for (li, line) in code.iter().enumerate().skip(start) {
            for ch in line.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // An un-braced item (`#[cfg(test)] use …;`) ends at
                    // the first `;` before any `{`.
                    ';' if !opened => {
                        mask[li] = true;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            mask[li] = true;
            if opened && depth == 0 {
                break;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = scan("let x = 1; // trailing 128\n/* block\n128 */ let y = 2;\n");
        assert!(s.code[0].contains("let x = 1;"));
        assert!(!s.code[0].contains("128"));
        assert_eq!(s.comments[0].trim(), "trailing 128");
        assert!(!s.code[1].contains("128"));
        assert!(s.code[2].contains("let y = 2;"));
    }

    #[test]
    fn strips_string_and_char_literals() {
        let s = scan("let a = \"unsafe 128\"; let c = '\\u{7f}'; let l: &'static str = x;\n");
        assert!(!s.code[0].contains("unsafe"));
        assert!(!s.code[0].contains("128"));
        assert!(s.code[0].contains("'static"), "lifetimes stay: {}", s.code[0]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = scan("let a = r#\"quote \" unsafe 16384\"#; let b = 1;\n");
        assert!(!s.code[0].contains("16384"));
        assert!(s.code[0].contains("let b = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner 128 */ still comment */ let z = 3;\n");
        assert!(!s.code[0].contains("128"));
        assert!(s.code[0].contains("let z = 3;"));
    }

    #[test]
    fn byte_literals() {
        let s = scan("let a = b\"128\"; let c = b'x'; let r = br#\"128\"#; let k = 5;\n");
        assert!(!s.code[0].contains("128"));
        assert!(s.code[0].contains("let k = 5;"));
    }

    #[test]
    fn cfg_test_span_marks_module_body() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let s = scan(src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn cfg_test_span_with_interleaved_attr() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    const N: usize = 1;\n}\nfn live() {}\n";
        let s = scan(src);
        assert!(s.is_test[0] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_spans() {
        let src = "#[cfg(test)]\nmod t {\n    const S: &str = \"}}}}\";\n}\nfn live() {}\n";
        let s = scan(src);
        assert!(s.is_test[2] && s.is_test[3]);
        assert!(!s.is_test[4]);
    }

    #[test]
    fn inline_block_comment_preserves_columns() {
        let s = scan("let x /* note */ = 128;\n");
        let col = s.code[0].find("128").expect("128 survives");
        assert_eq!(col, "let x /* note */ = ".len(), "code: {:?}", s.code[0]);
        assert_eq!(s.code[0].len(), "let x /* note */ = 128;".len());
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_count() {
        let s = scan("let a = \"one \\\ntwo\";\nlet y = 128;\n");
        assert_eq!(s.code.len(), 4, "three lines + trailing flush");
        assert!(s.code[2].contains("128"), "line numbering intact: {:?}", s.code);
    }

    #[test]
    fn escaped_newline_in_char_state_keeps_line_count() {
        // Malformed on purpose — the scanner must still track lines.
        let s = scan("let c = '\\\n'; let y = 128;\n");
        assert_eq!(s.code.len(), 3);
    }

    #[test]
    fn lifetime_does_not_swallow_rest_of_file() {
        let s = scan("fn f<'a>(x: &'a u32) -> &'a u32 { x }\nlet y = 128;\n");
        assert!(s.code[1].contains("128"), "second line intact: {:?}", s.code[1]);
    }
}

//! L5 — lock-order analysis over the workspace lock graph.
//!
//! Three findings:
//!
//! 1. **Order cycle**: the lock graph (edge `A → B` = "B acquired
//!    while A held", direct or via the call graph) contains a strongly
//!    connected component — two threads taking the locks in opposite
//!    orders can deadlock.
//! 2. **Re-entry**: a function calls, while holding lock `A`, a callee
//!    that may acquire `A` again — self-deadlock on a non-reentrant
//!    `std::sync::Mutex`.
//! 3. **Held across blocking**: a lock is held across a blocking
//!    operation (fsync, channel send/recv, thread join, sleep, condvar
//!    wait on a *different* lock's guard, kernel dispatch) — direct or
//!    via a callee that may block. This is a contention/liveness bug,
//!    not necessarily a deadlock.
//!
//! A condvar `wait`/`wait_timeout` releases the guard it is passed, so
//! only *other* held locks are flagged at a wait site.

use std::collections::BTreeSet;

use crate::graph::{event_order, held_at, lock_cycles, EvKind, Workspace};
use crate::rules::{Diagnostic, Rule};

/// Run L5 over an analyzed workspace.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Per-function event walks: re-entry and held-across-blocking.
    let mut ids: Vec<_> = ws.facts.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let file = &ws.files[id.0];
        let item = &file.parsed.fns[id.1];
        let toks = &file.parsed.toks;
        let f = &ws.facts[&id];
        let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
        for (site, ev) in event_order(f) {
            let held = held_at(f, site);
            if held.is_empty() {
                continue;
            }
            let tok = &toks[site];
            match ev {
                EvKind::Acquire(a) => {
                    let acq = &f.acquires[a];
                    for h in &held {
                        if h.lock == acq.lock && seen.insert((tok.line, acq.lock.clone())) {
                            out.push(diag(
                                &file.rel,
                                tok.line,
                                tok.col,
                                format!(
                                    "`{}` re-acquired in `{}` while already held — \
                                     self-deadlock on a non-reentrant lock",
                                    acq.lock, item.name
                                ),
                            ));
                        }
                    }
                }
                EvKind::Call(c) => {
                    let call = &f.calls[c];
                    let mut callee_locks: BTreeSet<String> = BTreeSet::new();
                    let mut callee_blocks: BTreeSet<&'static str> = BTreeSet::new();
                    for t in &call.targets {
                        if let Some(tf) = ws.facts.get(t) {
                            callee_locks.extend(tf.trans_locks.iter().cloned());
                            callee_blocks.extend(tf.trans_blocks.iter().copied());
                        }
                    }
                    for h in &held {
                        if callee_locks.contains(&h.lock)
                            && seen.insert((tok.line, h.lock.clone()))
                        {
                            out.push(diag(
                                &file.rel,
                                tok.line,
                                tok.col,
                                format!(
                                    "`{}` held in `{}` across call to `{}`, which may \
                                     re-acquire it — self-deadlock",
                                    h.lock, item.name, call.name
                                ),
                            ));
                        }
                    }
                    if !callee_blocks.is_empty() {
                        let kinds: Vec<&str> = callee_blocks.iter().copied().collect();
                        for h in &held {
                            if callee_locks.contains(&h.lock) {
                                continue; // already reported above
                            }
                            if seen.insert((tok.line, format!("{}@call", h.lock))) {
                                out.push(diag(
                                    &file.rel,
                                    tok.line,
                                    tok.col,
                                    format!(
                                        "`{}` held in `{}` across call to `{}`, which may \
                                         block ({})",
                                        h.lock,
                                        item.name,
                                        call.name,
                                        kinds.join(", ")
                                    ),
                                ));
                            }
                        }
                    }
                }
                EvKind::Block(b) => {
                    let blk = &f.blocks[b];
                    for h in &held {
                        // A condvar wait releases the guard it consumes.
                        if blk.kind == "condvar-wait"
                            && blk.exempt_guard.is_some()
                            && h.guard_name == blk.exempt_guard
                        {
                            continue;
                        }
                        if seen.insert((tok.line, format!("{}@{}", h.lock, blk.kind))) {
                            out.push(diag(
                                &file.rel,
                                tok.line,
                                tok.col,
                                format!(
                                    "`{}` held in `{}` across blocking {} — release the \
                                     guard (or collect work and act after unlocking) first",
                                    h.lock, item.name, blk.kind
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Workspace-level cycles.
    for cycle in lock_cycles(&ws.edges) {
        // Pick witnesses along the cycle for the message and anchor at
        // the first edge's witness.
        let mut parts = Vec::new();
        let mut anchor = None;
        for (i, a) in cycle.iter().enumerate() {
            let b = &cycle[(i + 1) % cycle.len()];
            if let Some(w) = ws
                .edges
                .get(&(a.clone(), b.clone()))
                .or_else(|| ws.edges.iter().find(|((x, _), _)| x == a).map(|(_, w)| w))
            {
                parts.push(format!("{a} → {b} ({}:{} in {})", w.path, w.line, w.in_fn));
                if anchor.is_none() {
                    anchor = Some(w.clone());
                }
            } else {
                parts.push(format!("{a} → {b}"));
            }
        }
        let w = match anchor {
            Some(w) => w,
            None => continue,
        };
        out.push(diag(
            &w.path,
            w.line,
            w.col,
            format!(
                "lock-order cycle (potential deadlock): {}",
                parts.join("; ")
            ),
        ));
    }

    out
}

fn diag(path: &str, line: usize, col: usize, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        col,
        rule: Rule::LockOrder,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::build(&[("crates/x/src/a.rs".to_string(), src.to_string())]);
        run(&ws)
    }

    #[test]
    fn flags_deadlock_cycle() {
        let src = "\
pub struct Q { state: Mutex<u32> }
pub struct J { inner: Mutex<u32> }
impl Q {
    pub fn ab(&self, j: &J) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let h = j.inner.lock().unwrap_or_else(|p| p.into_inner());
    }
}
impl J {
    pub fn ba(&self, q: &Q) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let h = q.state.lock().unwrap_or_else(|p| p.into_inner());
    }
}
";
        let diags = run_on(src);
        assert!(
            diags.iter().any(|d| d.message.contains("lock-order cycle")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn flags_lock_held_across_fsync() {
        let src = "\
pub struct J { inner: Mutex<u32>, file: File }
impl J {
    pub fn append(&self) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        self.file.sync_data();
    }
}
";
        let diags = run_on(src);
        assert!(
            diags.iter().any(|d| d.message.contains("blocking fsync")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn condvar_wait_exempts_own_guard() {
        let src = "\
pub struct Q { state: Mutex<u32>, ready: Condvar }
impl Q {
    pub fn pop(&self) {
        let mut lanes = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let out = self.ready.wait_timeout(lanes, d);
        }
    }
}
";
        let diags = run_on(src);
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn condvar_wait_flags_other_held_lock() {
        let src = "\
pub struct Q { state: Mutex<u32>, other: Mutex<u32>, ready: Condvar }
impl Q {
    pub fn pop(&self) {
        let o = self.other.lock().unwrap_or_else(|p| p.into_inner());
        let mut lanes = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let out = self.ready.wait_timeout(lanes, d);
    }
}
";
        let diags = run_on(src);
        assert!(
            diags.iter().any(|d| d.message.contains("Q.other") && d.message.contains("condvar-wait")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn flags_blocking_via_callee() {
        let src = "\
pub struct J { inner: Mutex<u32>, file: File }
pub struct Q { state: Mutex<u32> }
impl J {
    pub fn append(&self) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        drop(g);
        self.file.sync_data();
    }
}
impl Q {
    pub fn publish(&self, j: &J) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        j.append();
    }
}
";
        let diags = run_on(src);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("Q.state")
                    && d.message.contains("call to `append`")
                    && d.message.contains("fsync")),
            "diags: {diags:?}"
        );
    }
}

//! The PLF rule set (L1–L8) over a [`Scanned`] source file.
//!
//! | ID | name             | scope                         | invariant |
//! |----|------------------|-------------------------------|-----------|
//! | L1 | safety-comment   | every file                    | every `unsafe` site carries an adjacent `// SAFETY:` justification |
//! | L2 | hot-path-panic   | PLF kernel hot-path modules   | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`; faults flow through `PlfError` |
//! | L3 | magic-number     | non-test code, all crates     | 128 / 16384 / 256·1024 only in `phylo::constants` |
//! | L4 | atomic-ordering  | `phylo::metrics`              | one declared `Ordering` (default `Relaxed`), no stray `SeqCst` |
//! | L5 | lock-order       | whole workspace (structural)  | no lock-acquisition-order cycles; no lock held across a blocking call |
//! | L6 | unsafe-dataflow  | whole workspace (structural)  | raw pointers do not escape their source region or cross threads without a disjointness argument |
//! | L7 | kernel-parity    | whole workspace (structural)  | every backend covers the full kernel trait surface and has bit-parity coverage in `tests/fused.rs` |
//! | L8 | service-reach    | call graph from `PlfService`  | no panic-capable construct reachable from a client request |
//!
//! L1–L4 are lexical (this module); L5–L8 are structural and live in
//! their own modules on top of [`crate::parse`] and [`crate::graph`].
//!
//! Suppression: a comment `plf-lint: allow(L3)` (or the rule name,
//! comma-separated lists accepted) on the offending line or the line
//! directly above silences that rule for that line. For the structural
//! rules an `allow` on the `fn` declaration line (or the line above it)
//! covers every finding anchored inside that function. `L4`'s declared
//! ordering can be changed with a file-level `plf-lint: ordering(X)`
//! comment.

use crate::scan::Scanned;

/// The PLF invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1 — `unsafe` without an adjacent `// SAFETY:` comment.
    SafetyComment,
    /// L2 — panic-capable construct in a kernel hot-path module.
    HotPathPanic,
    /// L3 — alignment/DMA magic number outside `phylo::constants`.
    MagicNumber,
    /// L4 — atomic ordering other than the declared one in metrics.
    AtomicOrdering,
    /// L5 — lock-order cycle or lock held across a blocking call.
    LockOrder,
    /// L6 — raw pointer escaping its source region / unsafe dataflow.
    UnsafeFlow,
    /// L7 — kernel trait surface / backend / parity-test coverage hole.
    KernelParity,
    /// L8 — panic-capable construct reachable from a service request.
    ServiceReach,
}

impl Rule {
    /// Short stable ID (`L1`…`L8`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "L1",
            Rule::HotPathPanic => "L2",
            Rule::MagicNumber => "L3",
            Rule::AtomicOrdering => "L4",
            Rule::LockOrder => "L5",
            Rule::UnsafeFlow => "L6",
            Rule::KernelParity => "L7",
            Rule::ServiceReach => "L8",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::MagicNumber => "magic-number",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::LockOrder => "lock-order",
            Rule::UnsafeFlow => "unsafe-dataflow",
            Rule::KernelParity => "kernel-parity",
            Rule::ServiceReach => "service-reach",
        }
    }

    /// All rules.
    pub const ALL: [Rule; 8] = [
        Rule::SafetyComment,
        Rule::HotPathPanic,
        Rule::MagicNumber,
        Rule::AtomicOrdering,
        Rule::LockOrder,
        Rule::UnsafeFlow,
        Rule::KernelParity,
        Rule::ServiceReach,
    ];
}

/// One finding, pointing at a 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (1 when the rule has no precise span).
    pub col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}/{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

impl Diagnostic {
    /// Render as a JSON object (hand-rolled; the crate is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":\"{}\",\"name\":\"{}\",\"message\":{}}}",
            json_string(&self.path),
            self.line,
            self.col,
            self.rule.id(),
            self.rule.name(),
            json_string(&self.message)
        )
    }
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which rules apply to a file, derived from its workspace-relative
/// path (or forced for fixtures).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// L2 applies (kernel hot-path module).
    pub hot_path: bool,
    /// L4 applies (`phylo::metrics`).
    pub metrics: bool,
    /// L3 is exempt (the constants module itself).
    pub constants_module: bool,
    /// Whole file is test/demo code: L2 and L3 are relaxed.
    pub relaxed: bool,
}

impl FileScope {
    /// Derive the scope from a workspace-relative path (with `/`
    /// separators).
    pub fn for_path(rel: &str) -> FileScope {
        let hot_path = rel.starts_with("crates/phylo/src/kernels/")
            // The fused cross-job driver and the CLV reuse cache run
            // inside every fused batch evaluation — the same blast
            // radius as the kernels themselves.
            || rel == "crates/phylo/src/fused.rs"
            || rel == "crates/phylo/src/clv_cache.rs"
            || rel == "crates/multicore/src/persistent.rs"
            || rel == "crates/cellbe/src/dma.rs"
            || rel == "crates/gpu/src/kernels.rs"
            // The plfd service data path: every queued job flows
            // through these three files, so a panic there can strand
            // whole batches, not just one evaluation.
            || rel == "crates/plfd/src/queue.rs"
            || rel == "crates/plfd/src/scheduler.rs"
            || rel == "crates/plfd/src/dispatch.rs"
            // The self-healing layer is on the same data path: the
            // watchdog/breaker/admission code runs under the locks the
            // dispatcher holds, and the chaos driver resolves real
            // tickets — a panic in either strands admitted jobs.
            || rel == "crates/plfd/src/health.rs"
            || rel == "crates/plfd/src/chaos.rs"
            // The durability layer runs inside every terminal publish
            // (journal append from worker threads) and on the restart
            // path (recovery scan): a panic there turns a recoverable
            // crash into lost acknowledged jobs.
            || rel == "crates/plfd/src/journal.rs"
            || rel == "crates/plfd/src/recovery.rs";
        let metrics = rel == "crates/phylo/src/metrics.rs";
        let constants_module = rel == "crates/phylo/src/constants.rs";
        // Integration tests, benches, and examples are demo/test
        // surfaces: panics and literal values are idiomatic there.
        let relaxed = rel.starts_with("tests/")
            || rel.starts_with("examples/")
            || rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/");
        FileScope {
            hot_path,
            metrics,
            constants_module,
            relaxed,
        }
    }

    /// Force every rule on (used by fixture tests).
    pub fn all_rules() -> FileScope {
        FileScope {
            hot_path: true,
            metrics: true,
            constants_module: false,
            relaxed: false,
        }
    }
}

/// Banned literal values and the constant that replaces each. This is
/// the rule's own definition site — the one legitimate home for these
/// literals besides `phylo::constants` itself.
const BANNED: [(u64, &str); 3] = [
    (128, "plf_phylo::constants::CLV_ALIGN"), // plf-lint: allow(L3) — rule definition
    (16384, "plf_phylo::constants::DMA_MAX_BYTES"), // plf-lint: allow(L3) — rule definition
    (262144, "plf_phylo::constants::LS_BYTES"), // plf-lint: allow(L3) — rule definition
];

/// Run every applicable rule over one scanned file.
pub fn lint_scanned(path: &str, s: &Scanned, scope: FileScope) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule_safety_comment(path, s, &mut out);
    if scope.hot_path && !scope.relaxed {
        rule_hot_path_panic(path, s, &mut out);
    }
    if !scope.constants_module && !scope.relaxed {
        rule_magic_number(path, s, &mut out);
    }
    if scope.metrics {
        rule_atomic_ordering(path, s, &mut out);
    }
    out.retain(|d| !suppressed(s, d.line - 1, d.rule));
    out
}

/// Does line `l` (0-based) carry or sit under a `plf-lint: allow(…)`
/// for `rule`? Used by the lexical rules here and by the structural
/// rules (which additionally honor fn-level allows).
pub(crate) fn suppressed(s: &Scanned, l: usize, rule: Rule) -> bool {
    let check = |idx: usize| -> bool {
        allow_list(&s.comments[idx])
            .iter()
            .any(|r| r == rule.id() || r == rule.name())
    };
    if check(l) {
        return true;
    }
    l > 0 && check(l - 1)
}

/// Parse the rule list out of a `plf-lint: allow(a, b)` comment.
fn allow_list(comment: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("plf-lint:") {
        rest = &rest[pos + "plf-lint:".len()..];
        let trimmed = rest.trim_start();
        if let Some(args) = trimmed.strip_prefix("allow(") {
            if let Some(end) = args.find(')') {
                for r in args[..end].split(',') {
                    rules.push(r.trim().to_string());
                }
            }
        }
    }
    rules
}

/// File-level declared atomic ordering (`plf-lint: ordering(X)`),
/// default `Relaxed`.
fn declared_ordering(s: &Scanned) -> String {
    for c in &s.comments {
        if let Some(pos) = c.find("plf-lint:") {
            let rest = c[pos + "plf-lint:".len()..].trim_start();
            if let Some(args) = rest.strip_prefix("ordering(") {
                if let Some(end) = args.find(')') {
                    return args[..end].trim().to_string();
                }
            }
        }
    }
    "Relaxed".to_string()
}

/// Word-boundary occurrences of `needle` in `hay`.
fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let start = from + p;
        let end = start + needle.len();
        let left_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let right_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if left_ok && right_ok {
            out.push(start);
        }
        from = end;
    }
    out
}

// ---------------------------------------------------------------- L1

/// L1: walk upward from each `unsafe` site looking for a `SAFETY:`
/// comment. The walk skips over comment-only lines, attribute lines,
/// sibling `unsafe` lines (grouped `unsafe impl`s share one argument),
/// and mid-statement continuations; it stops at statement boundaries
/// (`;`, `{`, `}`), blank lines, or after [`L1_WALK_LIMIT`] lines.
/// The limit is generous because a *thorough* aliasing argument (the
/// point of the rule) can easily run 15+ comment lines.
const L1_WALK_LIMIT: usize = 25;

fn rule_safety_comment(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    for (l, line) in s.code.iter().enumerate() {
        if word_positions(line, "unsafe").is_empty() {
            continue;
        }
        if has_adjacent_safety(s, l) {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: l + 1,
            col: word_positions(line, "unsafe").first().map_or(1, |p| p + 1),
            rule: Rule::SafetyComment,
            message: "`unsafe` without an adjacent `// SAFETY:` comment justifying \
                      the aliasing/lifetime argument"
                .to_string(),
        });
    }
}

fn has_adjacent_safety(s: &Scanned, l: usize) -> bool {
    if s.comments[l].contains("SAFETY:") {
        return true;
    }
    let mut i = l;
    for _ in 0..L1_WALK_LIMIT {
        if i == 0 {
            return false;
        }
        i -= 1;
        if s.comments[i].contains("SAFETY:") {
            return true;
        }
        let code = s.code[i].trim();
        let comment_only = code.is_empty() && !s.comments[i].trim().is_empty();
        let attr_only = code.starts_with("#[") || code.starts_with("#![");
        let sibling_unsafe = !word_positions(code, "unsafe").is_empty();
        let mid_statement =
            !code.is_empty() && !code.ends_with(';') && !code.ends_with('{') && !code.ends_with('}');
        if comment_only || attr_only || sibling_unsafe || mid_statement {
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------- L2

fn rule_hot_path_panic(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    for (l, line) in s.code.iter().enumerate() {
        if s.is_test[l] {
            continue;
        }
        for (h, p) in panic_sites(line) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: l + 1,
                col: p + 1,
                rule: Rule::HotPathPanic,
                message: format!(
                    "`{h}` in a PLF hot-path module; surface the fault through the \
                     `PlfError` taxonomy instead of aborting"
                ),
            });
        }
    }
}

/// Panic-capable constructs on a cleaned code line: `(construct, byte
/// column)` pairs. Shared by L2 (path scope) and L8 (reachability
/// scope).
pub(crate) fn panic_sites(line: &str) -> Vec<(&'static str, usize)> {
    let mut hits: Vec<(&'static str, usize)> = Vec::new();
    for method in ["unwrap", "expect"] {
        for p in word_positions(line, method) {
            // `.unwrap()` / `.expect(` — method calls only; this
            // deliberately does NOT match `unwrap_or_else` (word
            // boundary) or bindings named `expect`.
            let before_dot = line[..p].trim_end().ends_with('.');
            let after = line[p + method.len()..].trim_start();
            if before_dot && after.starts_with('(') {
                hits.push((method, p));
            }
        }
    }
    for mac in ["panic", "todo", "unimplemented"] {
        for p in word_positions(line, mac) {
            if line[p + mac.len()..].starts_with('!') {
                hits.push((mac, p));
            }
        }
    }
    hits
}

// ---------------------------------------------------------------- L3

/// An integer literal token: value plus byte span on its line.
#[derive(Debug, Clone, Copy)]
struct IntTok {
    value: u64,
    start: usize,
    end: usize,
}

/// Tokenize the integer literals on a cleaned code line; float literals
/// (decimal point or exponent) are skipped.
fn int_tokens(line: &str) -> Vec<IntTok> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if !c.is_ascii_digit() {
            i += 1;
            continue;
        }
        // Literal start: previous char must not be ident-ish or a dot
        // (that would make this an identifier tail — `u128` — or a
        // float fraction — `0.128`).
        if i > 0 {
            let p = b[i - 1];
            if p.is_ascii_alphanumeric() || p == b'_' || p == b'.' {
                i += 1;
                continue;
            }
        }
        let start = i;
        let (radix, digits_from) = if c == b'0' && i + 1 < b.len() {
            match b[i + 1] {
                b'x' | b'X' => (16, i + 2),
                b'o' | b'O' => (8, i + 2),
                b'b' | b'B' => (2, i + 2),
                _ => (10, i),
            }
        } else {
            (10, i)
        };
        let mut j = digits_from;
        let mut value: Option<u64> = Some(0);
        let mut is_float = false;
        while j < b.len() {
            let d = b[j];
            if d == b'_' {
                j += 1;
                continue;
            }
            let digit = match d {
                b'0'..=b'9' => (d - b'0') as u64,
                b'a'..=b'f' if radix == 16 => (d - b'a' + 10) as u64,
                b'A'..=b'F' if radix == 16 => (d - b'A' + 10) as u64,
                b'.' if radix == 10 => {
                    // `1.` or `1.5` → float; `1..2` (range) is not.
                    if b.get(j + 1).map(|n| n.is_ascii_digit()).unwrap_or(false) {
                        is_float = true;
                        j += 1;
                        continue;
                    }
                    break;
                }
                b'e' | b'E' if radix == 10 => {
                    // Exponent only if followed by digit or sign+digit.
                    let sig = b.get(j + 1).copied();
                    let sig2 = b.get(j + 2).copied();
                    if sig.map(|n| n.is_ascii_digit()).unwrap_or(false)
                        || (matches!(sig, Some(b'+') | Some(b'-'))
                            && sig2.map(|n| n.is_ascii_digit()).unwrap_or(false))
                    {
                        is_float = true;
                        j += 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            };
            if !is_float {
                value = value
                    .and_then(|v| v.checked_mul(radix))
                    .and_then(|v| v.checked_add(digit));
            }
            j += 1;
        }
        // Swallow a type suffix (`usize`, `u64`, `f32`, …).
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            is_float |= b[j] == b'f';
            j += 1;
        }
        if !is_float {
            if let Some(v) = value {
                out.push(IntTok {
                    value: v,
                    start,
                    end: j,
                });
            }
        }
        i = j.max(i + 1);
    }
    out
}

fn rule_magic_number(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    for (l, line) in s.code.iter().enumerate() {
        if s.is_test[l] {
            continue;
        }
        let toks = int_tokens(line);
        let mut flagged: Vec<(u64, &str, usize)> = Vec::new();
        for t in &toks {
            if let Some((_, name)) = BANNED.iter().find(|(v, _)| *v == t.value) {
                flagged.push((t.value, name, t.start));
            }
        }
        // Products written as `a * b` (e.g. `16 * 1024`, `256 * 1024`).
        for w in toks.windows(2) {
            let between = &line[w[0].end..w[1].start];
            if between.trim() == "*" {
                if let Some(product) = w[0].value.checked_mul(w[1].value) {
                    if let Some((_, name)) = BANNED.iter().find(|(v, _)| *v == product) {
                        flagged.push((product, name, w[0].start));
                    }
                }
            }
        }
        for (v, name, start) in flagged {
            out.push(Diagnostic {
                path: path.to_string(),
                line: l + 1,
                col: start + 1,
                rule: Rule::MagicNumber,
                message: format!("magic number {v}; use {name} instead of an inline literal"),
            });
        }
    }
}

// ---------------------------------------------------------------- L4

fn rule_atomic_ordering(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    let declared = declared_ordering(s);
    for (l, line) in s.code.iter().enumerate() {
        if s.is_test[l] {
            continue;
        }
        let mut from = 0;
        while let Some(p) = line[from..].find("Ordering::") {
            let start = from + p + "Ordering::".len();
            let ident: String = line[start..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            from = start + ident.len().max(1);
            if ident.is_empty() || ident == declared {
                continue;
            }
            out.push(Diagnostic {
                path: path.to_string(),
                line: l + 1,
                col: from - ident.len().max(1) - "Ordering::".len() + 1,
                rule: Rule::AtomicOrdering,
                message: format!(
                    "stray `Ordering::{ident}`; this module declares `Ordering::{declared}` \
                     for all counters (see `plf-lint: ordering(…)`)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn lint_all(src: &str) -> Vec<Diagnostic> {
        lint_scanned("test.rs", &scan(src), FileScope::all_rules())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn l1_flags_bare_unsafe_and_accepts_safety() {
        let bad = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules_of(&lint_all(bad)), ["L1"]);
        let good = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint_all(good).is_empty());
    }

    #[test]
    fn l1_one_safety_comment_covers_grouped_impls() {
        let src = "struct P(*mut u8);\n// SAFETY: P is uniquely owned.\nunsafe impl Send for P {}\nunsafe impl Sync for P {}\n";
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn l1_safety_covers_multiline_statement() {
        let src = "// SAFETY: disjoint chunks.\nlet out =\n    unsafe { std::slice::from_raw_parts_mut(p, n) };\n";
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn l1_blank_line_breaks_adjacency() {
        let src = "// SAFETY: stale.\nlet x = 1;\n\nlet y = unsafe { f() };\n";
        assert_eq!(rules_of(&lint_all(src)), ["L1"]);
    }

    #[test]
    fn l2_flags_unwrap_expect_and_macros() {
        let src = "fn hot() {\n    let a = x.unwrap();\n    let b = y.expect(\"msg\");\n    panic!(\"boom\");\n    todo!();\n}\n";
        assert_eq!(rules_of(&lint_all(src)), ["L2", "L2", "L2", "L2"]);
    }

    #[test]
    fn l2_ignores_unwrap_or_else_and_tests() {
        let src = "fn hot() {\n    let a = m.lock().unwrap_or_else(|p| p.into_inner());\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn l3_flags_all_banned_forms() {
        let src = "const A: usize = 128;\nconst B: usize = 16384;\nconst C: usize = 16 * 1024;\nconst D: usize = 256 * 1024;\nconst E: u64 = 16_384u64;\n";
        assert_eq!(rules_of(&lint_all(src)), ["L3", "L3", "L3", "L3", "L3"]);
    }

    #[test]
    fn l3_ignores_floats_idents_and_benign_values() {
        let src = "let a = 0.128;\nlet b: u128 = 1;\nlet c = 127 + 1024;\nlet d = 1e128;\nlet e = 12.8e1;\n";
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn l3_allow_suppresses() {
        let same_line = "const R: usize = 16384; // plf-lint: allow(L3) — register file, not DMA\n";
        assert!(lint_all(same_line).is_empty());
        let line_above = "// plf-lint: allow(magic-number)\nconst R: usize = 16384;\n";
        assert!(lint_all(line_above).is_empty());
    }

    #[test]
    fn l4_flags_stray_ordering_and_honors_declaration() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::SeqCst); }\n";
        assert_eq!(rules_of(&lint_all(src)), ["L4"]);
        let declared = "// plf-lint: ordering(SeqCst)\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::SeqCst); }\n";
        assert!(lint_all(declared).is_empty());
    }

    #[test]
    fn scope_gating_matches_paths() {
        let hot = FileScope::for_path("crates/phylo/src/kernels/simd4.rs");
        assert!(hot.hot_path && !hot.metrics);
        let metrics = FileScope::for_path("crates/phylo/src/metrics.rs");
        assert!(metrics.metrics && !metrics.hot_path);
        let consts = FileScope::for_path("crates/phylo/src/constants.rs");
        assert!(consts.constants_module);
        let test = FileScope::for_path("tests/invariants.rs");
        assert!(test.relaxed);
        let plain = FileScope::for_path("crates/mcmc/src/chain.rs");
        assert!(!plain.hot_path && !plain.metrics && !plain.relaxed);
        // The plfd service data path is L2 scope; the rest of the
        // crate (facade, job types, loadgen) is not.
        for hot in [
            "crates/plfd/src/queue.rs",
            "crates/plfd/src/scheduler.rs",
            "crates/plfd/src/dispatch.rs",
            "crates/plfd/src/health.rs",
            "crates/plfd/src/chaos.rs",
            "crates/plfd/src/journal.rs",
            "crates/plfd/src/recovery.rs",
            // The fused driver and CLV cache run inside every fused
            // batch evaluation.
            "crates/phylo/src/fused.rs",
            "crates/phylo/src/clv_cache.rs",
        ] {
            assert!(FileScope::for_path(hot).hot_path, "{hot} must be L2 scope");
        }
        let facade = FileScope::for_path("crates/plfd/src/service.rs");
        assert!(!facade.hot_path);
        let gen = FileScope::for_path("crates/plfd/src/loadgen.rs");
        assert!(!gen.hot_path);
    }
}

//! A minimal item-level Rust parser on top of [`crate::scan`].
//!
//! The build environment is fully offline (no `syn`), so the
//! structural rules (L5–L8) carry their own parser. It is **not** a
//! grammar-complete Rust parser — it recognizes exactly the shapes the
//! rules need and skips everything else:
//!
//! * token stream: identifier/number words and single-char punctuation
//!   with 1-based `(line, col)` positions, taken from the *cleaned*
//!   code (comments and literal bodies already blanked by the scanner);
//! * items: `fn` (name, params with type words, return-type words, body
//!   token span), `struct` (named + tuple fields with type words),
//!   `trait` (method names, default-or-required), `impl` blocks
//!   (self type, optional trait), nested `mod`s;
//! * context: functions know their enclosing `impl` type / trait, and
//!   whether they are test code (`#[cfg(test)]` span or `#[test]`).
//!
//! Known, documented limits (see DESIGN.md §15): no expression
//! grammar (rules walk body tokens directly), no generics resolution
//! (type *words* only), no macro expansion, and paths are reduced to
//! their final segment.

use crate::scan::Scanned;

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier, keyword, or number run (`[A-Za-z0-9_]+`).
    Word(String),
    /// A single punctuation character.
    Punct(char),
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind and text.
    pub kind: TokKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (char offset on the cleaned line).
    pub col: usize,
}

impl Tok {
    /// The word text, if this is a word token.
    pub fn word(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Word(w) => Some(w.as_str()),
            TokKind::Punct(_) => None,
        }
    }

    /// Is this exactly the word `w`?
    pub fn is_word(&self, w: &str) -> bool {
        self.word() == Some(w)
    }

    /// The punctuation char, if this is a punct token.
    pub fn punct(&self) -> Option<char> {
        match self.kind {
            TokKind::Punct(c) => Some(c),
            TokKind::Word(_) => None,
        }
    }

    /// Is this exactly the punct `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.punct() == Some(c)
    }
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers; destructuring patterns keep
    /// the first bound word).
    pub name: String,
    /// The words of the declared type, in order.
    pub ty_words: Vec<String>,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self type (or trait name for trait-default
    /// bodies), when any.
    pub impl_type: Option<String>,
    /// Trait being implemented, when inside `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Test code: inside a `#[cfg(test)]` span or carrying `#[test]`.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body `{ … }` (inclusive of both
    /// braces); `start == end` means no body (trait signature).
    pub body: (usize, usize),
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// The words of the return type (empty for `()`).
    pub ret_words: Vec<String>,
}

/// One parsed `struct` item.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Fields as `(name, type words)`; tuple fields are named `"0"`,
    /// `"1"`, ….
    pub fields: Vec<(String, Vec<String>)>,
    /// Declared inside a `#[cfg(test)]` span.
    pub is_test: bool,
}

/// One method signature inside a `trait` block.
#[derive(Debug, Clone)]
pub struct TraitMethod {
    /// Method name.
    pub name: String,
    /// Has a default body (`{ … }` instead of `;`).
    pub has_default: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One parsed `trait` item.
#[derive(Debug, Clone)]
pub struct TraitItem {
    /// Trait name.
    pub name: String,
    /// 1-based line of the `trait` keyword.
    pub line: usize,
    /// Method signatures in declaration order.
    pub methods: Vec<TraitMethod>,
    /// Declared inside a `#[cfg(test)]` span.
    pub is_test: bool,
}

/// One parsed `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The self type (final path segment).
    pub type_name: String,
    /// The implemented trait (final path segment), when a trait impl.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Declared inside a `#[cfg(test)]` span.
    pub is_test: bool,
}

/// A fully parsed file: token stream plus item tables.
#[derive(Debug)]
pub struct ParsedFile {
    /// The full token stream (body spans index into this).
    pub toks: Vec<Tok>,
    /// Every `fn` with a body (incl. trait defaults and nested fns).
    pub fns: Vec<FnItem>,
    /// Every `struct`.
    pub structs: Vec<StructItem>,
    /// Every `trait`.
    pub traits: Vec<TraitItem>,
    /// Every `impl` block.
    pub impls: Vec<ImplItem>,
}

/// Tokenize cleaned code lines into words and puncts.
pub fn tokenize(s: &Scanned) -> Vec<Tok> {
    let mut out = Vec::new();
    for (li, line) in s.code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Word(chars[start..i].iter().collect()),
                    line: li + 1,
                    col: start + 1,
                });
            } else {
                out.push(Tok {
                    kind: TokKind::Punct(c),
                    line: li + 1,
                    col: i + 1,
                });
                i += 1;
            }
        }
    }
    out
}

/// Parser state over a token slice.
struct P<'a> {
    t: &'a [Tok],
    s: &'a Scanned,
    out: ParsedFile,
}

/// Item-parsing context (what encloses us).
#[derive(Clone, Default)]
struct Ctx {
    impl_type: Option<String>,
    trait_name: Option<String>,
    in_trait: Option<usize>, // index into out.traits
}

/// Parse a scanned file into its item tables.
pub fn parse(s: &Scanned) -> ParsedFile {
    let toks = tokenize(s);
    let mut out = ParsedFile {
        toks: Vec::new(),
        fns: Vec::new(),
        structs: Vec::new(),
        traits: Vec::new(),
        impls: Vec::new(),
    };
    {
        let mut p = P { t: &toks, s, out: ParsedFile { toks: Vec::new(), fns: Vec::new(), structs: Vec::new(), traits: Vec::new(), impls: Vec::new() } };
        p.items(0, toks.len(), &Ctx::default());
        out.fns = std::mem::take(&mut p.out.fns);
        out.structs = std::mem::take(&mut p.out.structs);
        out.traits = std::mem::take(&mut p.out.traits);
        out.impls = std::mem::take(&mut p.out.impls);
    }
    out.toks = toks;
    out
}

impl<'a> P<'a> {
    fn line_is_test(&self, line: usize) -> bool {
        self.s.is_test.get(line - 1).copied().unwrap_or(false)
    }

    /// Skip a `(`/`[`/`{`-balanced group starting at `i` (which must
    /// point at the opener); returns the index just past the closer.
    fn skip_group(&self, mut i: usize, end: usize) -> usize {
        let open = match self.t[i].punct() {
            Some(c @ ('(' | '[' | '{')) => c,
            _ => return i + 1,
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let mut depth = 0i64;
        while i < end {
            if self.t[i].is_punct(open) {
                depth += 1;
            } else if self.t[i].is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skip a generic-argument group `<…>` starting at `i` (pointing at
    /// `<`); `->` arrows inside do not close the group.
    fn skip_angles(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        while i < end {
            if self.t[i].is_punct('<') {
                depth += 1;
            } else if self.t[i].is_punct('>') {
                let arrow = i > 0 && self.t[i - 1].is_punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Skip to just past the next top-level `;`, or past a brace block
    /// if one opens first (covers `const X: T = …;`, `static`, `use`,
    /// `type`, and expression-bodied oddities).
    fn skip_to_semi_or_block(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            if self.t[i].is_punct(';') {
                return i + 1;
            }
            if self.t[i].is_punct('{') {
                return self.skip_group(i, end);
            }
            if matches!(self.t[i].punct(), Some('(' | '[')) {
                i = self.skip_group(i, end);
                continue;
            }
            i += 1;
        }
        end
    }

    /// Parse the items in `t[i..end]` under `ctx`.
    fn items(&mut self, mut i: usize, end: usize, ctx: &Ctx) {
        let mut is_pub = false;
        let mut has_test_attr = false;
        while i < end {
            let tok = &self.t[i];
            match tok.word() {
                Some("pub") => {
                    is_pub = true;
                    i += 1;
                    if i < end && self.t[i].is_punct('(') {
                        i = self.skip_group(i, end);
                    }
                    continue; // keep modifier flags
                }
                Some("unsafe" | "async" | "default") => {
                    i += 1;
                    continue;
                }
                Some("extern") => {
                    i += 1; // an `extern "C"` ABI string is blanked already
                    continue;
                }
                Some("const" | "static") => {
                    // `const fn` is a modifier; `const NAME: … = …;` is
                    // an item to skip.
                    if self.t.get(i + 1).and_then(|t| t.word()).is_some_and(|w| {
                        matches!(w, "fn" | "unsafe" | "async" | "extern")
                    }) {
                        i += 1;
                        continue;
                    }
                    i = self.skip_to_semi_or_block(i + 1, end);
                }
                Some("fn") => {
                    i = self.parse_fn(i, end, ctx, is_pub, has_test_attr);
                }
                Some("impl") => {
                    i = self.parse_impl(i, end);
                }
                Some("trait") => {
                    i = self.parse_trait(i, end);
                }
                Some("struct") => {
                    i = self.parse_struct(i, end);
                }
                Some("enum" | "union") => {
                    i = self.skip_to_semi_or_block(i + 1, end);
                }
                Some("mod") => {
                    // `mod name;` or `mod name { items }` — recurse
                    // into inline modules with the same context.
                    i += 1;
                    if i < end && self.t[i].word().is_some() {
                        i += 1;
                    }
                    if i < end && self.t[i].is_punct('{') {
                        let body_end = self.skip_group(i, end);
                        self.items(i + 1, body_end.saturating_sub(1), ctx);
                        i = body_end;
                    } else if i < end && self.t[i].is_punct(';') {
                        i += 1;
                    }
                }
                Some("use" | "type") => {
                    i = self.skip_to_semi_or_block(i + 1, end);
                }
                Some("macro_rules") => {
                    i = self.skip_to_semi_or_block(i + 1, end);
                }
                _ => {
                    if tok.is_punct('#') {
                        // Attribute: `#[…]` / `#![…]`.
                        let mut j = i + 1;
                        if j < end && self.t[j].is_punct('!') {
                            j += 1;
                        }
                        if j < end && self.t[j].is_punct('[') {
                            let attr_end = self.skip_group(j, end);
                            // A bare `#[test]` marks the next fn.
                            if attr_end == j + 3 && self.t[j + 1].is_word("test") {
                                has_test_attr = true;
                            }
                            i = attr_end;
                            continue; // keep modifier flags
                        }
                        i += 1;
                    } else if tok.is_punct('{') {
                        i = self.skip_group(i, end);
                    } else {
                        i += 1;
                    }
                }
            }
            is_pub = false;
            has_test_attr = false;
        }
    }

    /// Parse `fn` at token `i`; returns the index past the item.
    fn parse_fn(&mut self, i: usize, end: usize, ctx: &Ctx, is_pub: bool, test_attr: bool) -> usize {
        let line = self.t[i].line;
        let mut j = i + 1;
        let name = match self.t.get(j).and_then(|t| t.word()) {
            Some(w) => w.to_string(),
            None => return i + 1,
        };
        j += 1;
        if j < end && self.t[j].is_punct('<') {
            j = self.skip_angles(j, end);
        }
        if j >= end || !self.t[j].is_punct('(') {
            return j;
        }
        let params_end = self.skip_group(j, end);
        let (params, has_self) = self.parse_params(j + 1, params_end.saturating_sub(1));
        j = params_end;
        // Return type: `-> words…` up to `{`, `;`, or `where`.
        let mut ret_words = Vec::new();
        if j + 1 < end && self.t[j].is_punct('-') && self.t[j + 1].is_punct('>') {
            j += 2;
            while j < end {
                let t = &self.t[j];
                if t.is_punct('{') || t.is_punct(';') || t.is_word("where") {
                    break;
                }
                if let Some(w) = t.word() {
                    ret_words.push(w.to_string());
                }
                j += 1;
            }
        }
        // Where clause: scan forward to the body `{` or a `;`.
        while j < end && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            if matches!(self.t[j].punct(), Some('(' | '[')) {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
        }
        let in_trait = ctx.in_trait;
        if j < end && self.t[j].is_punct(';') {
            // Required trait method (or extern decl): signature only.
            if let Some(ti) = in_trait {
                self.out.traits[ti].methods.push(TraitMethod {
                    name,
                    has_default: false,
                    line,
                });
            }
            return j + 1;
        }
        if j >= end {
            return end;
        }
        let body_end = self.skip_group(j, end);
        if let Some(ti) = in_trait {
            self.out.traits[ti].methods.push(TraitMethod {
                name: name.clone(),
                has_default: true,
                line,
            });
        }
        self.out.fns.push(FnItem {
            name,
            impl_type: ctx.impl_type.clone(),
            trait_name: ctx.trait_name.clone(),
            is_pub,
            is_test: test_attr || self.line_is_test(line),
            line,
            body: (j, body_end),
            params,
            has_self,
            ret_words,
        });
        body_end
    }

    /// Parse the parameter list tokens in `t[i..end]` (exclusive of the
    /// parens).
    fn parse_params(&self, i: usize, end: usize) -> (Vec<Param>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        let mut start = i;
        let mut j = i;
        let flush = |lo: usize, hi: usize, params: &mut Vec<Param>, has_self: &mut bool| {
            if lo >= hi {
                return;
            }
            let toks = &self.t[lo..hi];
            let colon = toks.iter().position(|t| t.is_punct(':'));
            let name_toks = &toks[..colon.unwrap_or(toks.len())];
            if name_toks.iter().any(|t| t.is_word("self")) && colon.is_none() {
                *has_self = true;
                params.push(Param {
                    name: "self".to_string(),
                    ty_words: Vec::new(),
                });
                return;
            }
            let name = name_toks
                .iter()
                .filter_map(|t| t.word())
                .find(|w| *w != "mut" && *w != "ref")
                .unwrap_or("_")
                .to_string();
            let ty_words = match colon {
                Some(c) => toks[c + 1..].iter().filter_map(|t| t.word()).map(String::from).collect(),
                None => Vec::new(),
            };
            params.push(Param { name, ty_words });
        };
        let mut depth = 0i64;
        while j < end {
            match self.t[j].punct() {
                Some('(' | '[' | '{' | '<') => depth += 1,
                Some(')' | ']' | '}') => depth -= 1,
                Some('>')
                    if !(j > 0 && self.t[j - 1].is_punct('-')) => {
                        depth -= 1;
                    }
                Some(',') if depth == 0 => {
                    flush(start, j, &mut params, &mut has_self);
                    start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        flush(start, end, &mut params, &mut has_self);
        (params, has_self)
    }

    /// Parse `impl` at `i`; returns the index past the block.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let line = self.t[i].line;
        let mut j = i + 1;
        if j < end && self.t[j].is_punct('<') {
            j = self.skip_angles(j, end);
        }
        // Collect the head: path words up to `for` / `where` / `{`,
        // skipping generic-argument groups.
        let mut first_seg: Vec<String> = Vec::new();
        let mut second_seg: Vec<String> = Vec::new();
        let mut saw_for = false;
        while j < end {
            let t = &self.t[j];
            if t.is_punct('{') || t.is_word("where") {
                break;
            }
            if t.is_word("for") {
                saw_for = true;
                j += 1;
                continue;
            }
            if t.is_punct('<') {
                j = self.skip_angles(j, end);
                continue;
            }
            if let Some(w) = t.word() {
                if !matches!(w, "dyn" | "mut" | "crate" | "super" | "self") {
                    if saw_for {
                        second_seg.push(w.to_string());
                    } else {
                        first_seg.push(w.to_string());
                    }
                }
            }
            j += 1;
        }
        while j < end && !self.t[j].is_punct('{') {
            if matches!(self.t[j].punct(), Some('(' | '[')) {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
        }
        if j >= end {
            return end;
        }
        let (type_name, trait_name) = if saw_for {
            (
                second_seg.last().cloned().unwrap_or_default(),
                first_seg.last().cloned(),
            )
        } else {
            (first_seg.last().cloned().unwrap_or_default(), None)
        };
        let body_end = self.skip_group(j, end);
        self.out.impls.push(ImplItem {
            type_name: type_name.clone(),
            trait_name: trait_name.clone(),
            line,
            is_test: self.line_is_test(line),
        });
        let ctx = Ctx {
            impl_type: Some(type_name),
            trait_name,
            in_trait: None,
        };
        self.items(j + 1, body_end.saturating_sub(1), &ctx);
        body_end
    }

    /// Parse `trait` at `i`; returns the index past the block.
    fn parse_trait(&mut self, i: usize, end: usize) -> usize {
        let line = self.t[i].line;
        let mut j = i + 1;
        let name = match self.t.get(j).and_then(|t| t.word()) {
            Some(w) => w.to_string(),
            None => return i + 1,
        };
        j += 1;
        while j < end && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            if self.t[j].is_punct('<') {
                j = self.skip_angles(j, end);
            } else if matches!(self.t[j].punct(), Some('(' | '[')) {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
        }
        if j >= end || self.t[j].is_punct(';') {
            return (j + 1).min(end);
        }
        let ti = self.out.traits.len();
        self.out.traits.push(TraitItem {
            name: name.clone(),
            line,
            methods: Vec::new(),
            is_test: self.line_is_test(line),
        });
        let body_end = self.skip_group(j, end);
        let ctx = Ctx {
            impl_type: Some(name),
            trait_name: None,
            in_trait: Some(ti),
        };
        self.items(j + 1, body_end.saturating_sub(1), &ctx);
        body_end
    }

    /// Parse `struct` at `i`; returns the index past the item.
    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let line = self.t[i].line;
        let mut j = i + 1;
        let name = match self.t.get(j).and_then(|t| t.word()) {
            Some(w) => w.to_string(),
            None => return i + 1,
        };
        j += 1;
        if j < end && self.t[j].is_punct('<') {
            j = self.skip_angles(j, end);
        }
        let mut fields = Vec::new();
        if j < end && self.t[j].is_punct('(') {
            // Tuple struct: fields named by position.
            let body_end = self.skip_group(j, end);
            let mut idx = 0usize;
            let mut lo = j + 1;
            let hi = body_end.saturating_sub(1);
            let mut depth = 0i64;
            let mut k = lo;
            while k <= hi {
                let at_end = k == hi;
                let at_comma = k < hi && self.t[k].is_punct(',') && depth == 0;
                if at_end || at_comma {
                    let ty_words: Vec<String> = self.t[lo..k]
                        .iter()
                        .filter_map(|t| t.word())
                        .filter(|w| *w != "pub" && *w != "crate")
                        .map(String::from)
                        .collect();
                    if !ty_words.is_empty() {
                        fields.push((idx.to_string(), ty_words));
                        idx += 1;
                    }
                    lo = k + 1;
                }
                if k < hi {
                    match self.t[k].punct() {
                        Some('(' | '[' | '<') => depth += 1,
                        Some(')' | ']' | '>') => depth -= 1,
                        _ => {}
                    }
                }
                k += 1;
            }
            j = self.skip_to_semi_or_block(body_end, end);
        } else {
            while j < end && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
                j += 1;
            }
            if j < end && self.t[j].is_punct('{') {
                let body_end = self.skip_group(j, end);
                fields = self.parse_named_fields(j + 1, body_end.saturating_sub(1));
                j = body_end;
            } else {
                j = (j + 1).min(end);
            }
        }
        self.out.structs.push(StructItem {
            name,
            line,
            fields,
            is_test: self.line_is_test(line),
        });
        j
    }

    /// Parse `name: Type` entries between the braces of a struct body.
    fn parse_named_fields(&self, i: usize, end: usize) -> Vec<(String, Vec<String>)> {
        let mut fields = Vec::new();
        let mut j = i;
        let mut lo = i;
        let mut depth = 0i64;
        while j <= end {
            let at_end = j == end;
            let at_comma = j < end && self.t[j].is_punct(',') && depth == 0;
            if at_end || at_comma {
                let toks = &self.t[lo..j];
                if let Some(colon) = toks.iter().position(|t| t.is_punct(':')) {
                    let name = toks[..colon]
                        .iter()
                        .filter_map(|t| t.word()).rfind(|w| *w != "pub" && *w != "crate" && *w != "r");
                    if let Some(name) = name {
                        let ty_words: Vec<String> = toks[colon + 1..]
                            .iter()
                            .filter_map(|t| t.word())
                            .map(String::from)
                            .collect();
                        fields.push((name.to_string(), ty_words));
                    }
                }
                lo = j + 1;
            }
            if j < end {
                match self.t[j].punct() {
                    Some('(' | '[' | '{' | '<') => depth += 1,
                    Some(')' | ']' | '}') => depth -= 1,
                    Some('>')
                        if !(j > 0 && self.t[j - 1].is_punct('-')) => {
                            depth -= 1;
                        }
                    Some('#')
                        // Field attribute `#[…]`.
                        if j + 1 < end && self.t[j + 1].is_punct('[') => {
                            j = self.skip_group(j + 1, end);
                            continue;
                        }
                    _ => {}
                }
            }
            j += 1;
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn parsed(src: &str) -> ParsedFile {
        parse(&scan(src))
    }

    #[test]
    fn parses_fns_impls_and_structs() {
        let src = "\
pub struct Q { state: Mutex<Lanes>, ready: Condvar }
impl Q {
    pub fn push(&self, j: Job) -> Result<(), Full> { self.state.lock(); Ok(()) }
    fn helper(x: usize) {}
}
fn free() {}
";
        let p = parsed(src);
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Q");
        assert_eq!(p.structs[0].fields[0].0, "state");
        assert!(p.structs[0].fields[0].1.contains(&"Mutex".to_string()));
        assert_eq!(p.structs[0].fields[1].0, "ready");
        assert_eq!(p.fns.len(), 3);
        let push = &p.fns[0];
        assert_eq!(push.name, "push");
        assert_eq!(push.impl_type.as_deref(), Some("Q"));
        assert!(push.is_pub && push.has_self);
        assert_eq!(push.params[1].name, "j");
        assert_eq!(push.ret_words, ["Result", "Full"]);
        assert_eq!(p.fns[2].name, "free");
        assert!(p.fns[2].impl_type.is_none());
    }

    #[test]
    fn parses_trait_with_defaults_and_impls() {
        let src = "\
pub trait Backend {
    fn down(&mut self, x: &Clv) -> Result<(), PlfError>;
    fn down_fused(&mut self, x: &Clv) -> Result<(), PlfError> { self.down(x) }
}
impl Backend for Scalar {
    fn down(&mut self, x: &Clv) -> Result<(), PlfError> { Ok(()) }
}
";
        let p = parsed(src);
        assert_eq!(p.traits.len(), 1);
        let t = &p.traits[0];
        assert_eq!(t.name, "Backend");
        assert_eq!(t.methods.len(), 2);
        assert!(!t.methods[0].has_default);
        assert!(t.methods[1].has_default);
        assert_eq!(p.impls.len(), 1);
        assert_eq!(p.impls[0].type_name, "Scalar");
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Backend"));
        // The trait-default body is indexed as a fn of the trait.
        assert!(p
            .fns
            .iter()
            .any(|f| f.name == "down_fused" && f.impl_type.as_deref() == Some("Backend")));
    }

    #[test]
    fn generic_fn_with_arrow_bound_does_not_derail() {
        let src = "fn f<T: Fn(u32) -> u64>(g: T) -> u64 { g(1) }\nfn after() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn tuple_struct_fields() {
        let p = parsed("pub struct SendPtr(*mut f32);\n");
        assert_eq!(p.structs[0].fields.len(), 1);
        assert!(p.structs[0].fields[0].1.contains(&"f32".to_string()));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let p = parsed(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn impl_trait_for_path_type() {
        let p = parsed("impl std::fmt::Display for plfd::Job {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(p.impls[0].type_name, "Job");
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Display"));
    }
}

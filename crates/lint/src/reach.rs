//! L8 — service-path error hygiene by call-graph reachability.
//!
//! L2 guards a fixed allowlist of hot-path *files*; L8 replaces the
//! path heuristic with reachability: starting from the client-facing
//! entry points — the `pub` `&self` methods of `PlfService` and
//! `JobTicket` in plfd, plus `NetServer` and `NetClient` in plf-net —
//! every function reachable through resolved calls (including dynamic
//! dispatch through the `PlfBackend` trait) must be panic-free: no
//! `unwrap` / `expect` / `panic!` / `todo!` / `unimplemented!`, and
//! (within `crates/plfd` and `crates/net`, where a stray index is a
//! request-killer rather than kernel arithmetic) no slice-indexing
//! `[…]` expressions.
//!
//! Constructors (associated fns without `self`) are *not* entry
//! points: they run at boot, before any client traffic, and failing
//! fast there is policy. Findings that L2 already reports (same file
//! and line) are deduplicated by the driver in `lib.rs`.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::graph::{FnId, Workspace};
use crate::rules::{panic_sites, Diagnostic, Rule};

/// Types whose `pub` `&self` methods are client entry points.
const ENTRY_TYPES: [&str; 4] = ["PlfService", "JobTicket", "NetServer", "NetClient"];

/// `true` for files whose entry types count (the service crates; a
/// `PlfService` fixture elsewhere is somebody's test double).
fn is_entry_file(rel: &str) -> bool {
    rel.contains("plfd") || rel.starts_with("crates/net/")
}

/// `true` where a slice-indexing expression is a request-killer: the
/// plfd service data path and the plf-net reactor/codec.
fn indexing_banned(rel: &str) -> bool {
    rel.starts_with("crates/plfd/") || rel.starts_with("crates/net/")
}

/// Compute the set of functions reachable from service entry points,
/// each mapped to the entry it was first reached from.
pub fn reachable(ws: &Workspace) -> HashMap<FnId, String> {
    let mut queue: VecDeque<(FnId, String)> = VecDeque::new();
    let mut seen: HashMap<FnId, String> = HashMap::new();
    let mut ids: Vec<FnId> = ws.facts.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let file = &ws.files[id.0];
        let f = &file.parsed.fns[id.1];
        let is_entry = f.is_pub
            && f.has_self
            && f.impl_type.as_deref().is_some_and(|t| ENTRY_TYPES.contains(&t))
            && is_entry_file(&file.rel);
        if is_entry {
            let entry = format!("{}::{}", f.impl_type.as_deref().unwrap_or(""), f.name);
            seen.insert(id, entry.clone());
            queue.push_back((id, entry));
        }
    }
    while let Some((id, entry)) = queue.pop_front() {
        let Some(facts) = ws.facts.get(&id) else {
            continue;
        };
        for c in &facts.calls {
            for t in &c.targets {
                if !seen.contains_key(t) && ws.facts.contains_key(t) {
                    seen.insert(*t, entry.clone());
                    queue.push_back((*t, entry.clone()));
                }
            }
        }
    }
    seen
}

/// Run L8 over an analyzed workspace.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let reach = reachable(ws);
    let mut out = Vec::new();
    let mut ids: Vec<(&FnId, &String)> = reach.iter().collect();
    ids.sort();
    let mut seen_lines: BTreeSet<(String, usize, usize)> = BTreeSet::new();
    for (&id, entry) in ids {
        let file = &ws.files[id.0];
        let item = &file.parsed.fns[id.1];
        let toks = &file.parsed.toks;
        let end_line = toks
            .get(item.body.1.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(item.line);

        // Panic-capable constructs on the fn's lines (lexical scan of
        // the cleaned code, same detector as L2).
        for l in item.line..=end_line {
            let Some(code) = file.scanned.code.get(l - 1) else {
                continue;
            };
            if file.scanned.is_test.get(l - 1).copied().unwrap_or(false) {
                continue;
            }
            for (what, col) in panic_sites(code) {
                if seen_lines.insert((file.rel.clone(), l, col)) {
                    out.push(Diagnostic {
                        path: file.rel.clone(),
                        line: l,
                        col: col + 1,
                        rule: Rule::ServiceReach,
                        message: format!(
                            "`{what}` in `{}` is reachable from client entry point \
                             `{entry}`; return an error through the job outcome instead \
                             of panicking",
                            item.name
                        ),
                    });
                }
            }
        }

        // Indexing panics: the service crates only.
        if indexing_banned(&file.rel) {
            let (bs, be) = item.body;
            for i in bs..be {
                if !toks[i].is_punct('[') {
                    continue;
                }
                // Expression indexing: `expr[…]` — the previous token
                // closes an expression. `#[attr]` and slice literals
                // `[0u8; N]` have punct/no predecessors.
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let is_index = prev.is_some_and(|t| {
                    t.word().is_some() || t.is_punct(']') || t.is_punct(')')
                }) && !prev.is_some_and(|t| {
                    t.word().is_some_and(is_type_or_keyword)
                });
                if is_index {
                    let tok = &toks[i];
                    if seen_lines.insert((file.rel.clone(), tok.line, tok.col + 1000)) {
                        out.push(Diagnostic {
                            path: file.rel.clone(),
                            line: tok.line,
                            col: tok.col,
                            rule: Rule::ServiceReach,
                            message: format!(
                                "slice indexing in `{}` is reachable from client entry \
                                 point `{entry}`; use `.get(…)` and surface the miss as \
                                 an error",
                                item.name
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Words that precede `[` without forming an indexing expression.
fn is_type_or_keyword(w: &str) -> bool {
    matches!(
        w,
        "return" | "break" | "in" | "else" | "match" | "if" | "while" | "vec"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let v: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        run(&Workspace::build(&v))
    }

    #[test]
    fn flags_unwrap_reachable_from_entry_point() {
        let service = "\
pub struct PlfService { q: Q }
pub struct Q { n: u32 }
impl PlfService {
    pub fn submit(&self) {
        self.q.deep();
    }
}
impl Q {
    pub fn deep(&self) {
        let x: Option<u32> = None;
        x.unwrap();
    }
}
";
        let diags = run_on(&[("crates/plfd/src/service.rs", service)]);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`unwrap`")
                    && d.message.contains("PlfService::submit")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let service = "\
pub struct PlfService { n: u32 }
impl PlfService {
    pub fn submit(&self) {}
}
fn orphan_helper_nobody_calls() {
    let x: Option<u32> = None;
    x.unwrap();
}
";
        let diags = run_on(&[("crates/plfd/src/service.rs", service)]);
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn constructors_are_not_entry_points() {
        let service = "\
pub struct PlfService { n: u32 }
impl PlfService {
    pub fn new() -> PlfService {
        boot_helper();
        PlfService { n: 0 }
    }
    pub fn submit(&self) {}
}
fn boot_helper() {
    panic!(\"journal could not be opened\");
}
";
        let diags = run_on(&[("crates/plfd/src/service.rs", service)]);
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn indexing_flagged_in_plfd_only() {
        let service = "\
pub struct PlfService { v: Vec<u32> }
impl PlfService {
    pub fn submit(&self) -> u32 {
        self.v[0]
    }
}
";
        let diags = run_on(&[("crates/plfd/src/service.rs", service)]);
        assert!(
            diags.iter().any(|d| d.message.contains("slice indexing")),
            "diags: {diags:?}"
        );
        // Same code outside crates/plfd: kernels index by design.
        let elsewhere = service;
        let diags = run_on(&[("crates/phylo/src/service.rs", elsewhere)]);
        assert!(
            !diags.iter().any(|d| d.message.contains("slice indexing")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn net_server_methods_are_entry_points() {
        let server = "\
pub struct NetServer { v: Vec<u32> }
impl NetServer {
    pub fn run(&self) -> u32 {
        deep_helper();
        self.v[0]
    }
}
fn deep_helper() {
    let x: Option<u32> = None;
    x.unwrap();
}
";
        let diags = run_on(&[("crates/net/src/server.rs", server)]);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`unwrap`") && d.message.contains("NetServer::run")),
            "diags: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("slice indexing")),
            "diags: {diags:?}"
        );
        // A NetServer fixture outside the service crates is inert.
        let diags = run_on(&[("crates/bench/src/server.rs", server)]);
        assert!(diags.is_empty(), "diags: {diags:?}");
    }
}

//! L6 — unsafe raw-pointer dataflow.
//!
//! Within each analyzed function, raw-pointer *sources*
//! (`.as_ptr()` / `.as_mut_ptr()` / `as *mut` / `as *const` casts) are
//! tracked by binding name, and three escapes are flagged:
//!
//! 1. **Cross-thread without argument**: a `SendPtr(..)` wrapper is
//!    constructed with no *disjointness argument* — no comment between
//!    just above the fn and the construction site containing
//!    "disjoint" / "non-overlapping" / "exclusive". Sending a raw
//!    pointer is only sound when the receiving threads touch disjoint
//!    regions, and that argument must be written down.
//! 2. **Move-closure capture**: a bare raw-pointer binding is captured
//!    by a `move` closure. Raw pointers are `Send` only via an unsafe
//!    wrapper; a bare capture is either a compile error waiting to
//!    happen or an unreviewed `unsafe impl Send` at a distance.
//! 3. **Block escape**: a binding declared in an outer block is
//!    assigned a pointer produced in an inner block — the pointee can
//!    die with the inner block while the pointer lives on.
//!
//! The rule is source-region based, not alias-complete (see DESIGN.md
//! §15 for limits).

use crate::graph::Workspace;
use crate::parse::Tok;
use crate::rules::{Diagnostic, Rule};

/// Words that count as a written disjointness argument.
const DISJOINT_WORDS: [&str; 4] = ["disjoint", "non-overlapping", "nonoverlapping", "exclusive"];

/// Run L6 over an analyzed workspace.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.scope.relaxed {
            continue;
        }
        for item in &file.parsed.fns {
            if item.is_test {
                continue;
            }
            check_fn(&file.rel, file, fi, item, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    out
}

fn check_fn(
    rel: &str,
    file: &crate::graph::FileUnit,
    _fi: usize,
    item: &crate::parse::FnItem,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &file.parsed.toks;
    let (start, end) = item.body;

    // Comment text from a few lines above the fn down to `line`
    // containing a disjointness word?
    let has_disjoint_arg = |to_line: usize| -> bool {
        let from = item.line.saturating_sub(5); // 1-based, incl. leading SAFETY block
        (from..=to_line).any(|l| {
            file.scanned
                .comments
                .get(l.saturating_sub(1))
                .is_some_and(|c| {
                    let lc = c.to_lowercase();
                    DISJOINT_WORDS.iter().any(|w| lc.contains(w))
                })
        })
    };

    // --- check 1: SendPtr construction without a disjointness argument.
    let mut i = start;
    while i < end {
        if toks[i].is_word("SendPtr")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !has_disjoint_arg(toks[i].line)
        {
            out.push(diag(
                rel,
                &toks[i],
                "raw pointer sent across threads (`SendPtr`) without a written \
                 disjointness argument; add a `// SAFETY:` comment stating why the \
                 target regions are disjoint"
                    .to_string(),
            ));
        }
        i += 1;
    }

    // --- collect raw-pointer bindings: `let [mut] name = …as_ptr()…;`
    // (not wrapped in SendPtr), plus declared-only names with depths.
    let mut depth = 0i64;
    let mut raw_bindings: Vec<(String, usize, i64)> = Vec::new(); // (name, site, depth)
    let mut decl_depths: Vec<(String, i64)> = Vec::new();
    let mut i = start;
    while i < end {
        match toks[i].punct() {
            Some('{') => depth += 1,
            Some('}') => depth -= 1,
            _ => {}
        }
        if toks[i].is_word("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_word("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(|t| t.word()) {
                decl_depths.push((name.to_string(), depth));
                // Initializer tokens to the statement end.
                let stmt_end = stmt_end(toks, j, end);
                let init = &toks[j..stmt_end];
                let is_raw = init.iter().any(|t| {
                    t.is_word("as_ptr") || t.is_word("as_mut_ptr")
                }) || cast_to_raw(init);
                let wrapped = init.iter().any(|t| t.is_word("SendPtr"));
                if is_raw && !wrapped {
                    raw_bindings.push((name.to_string(), i, depth));
                }
            }
        }
        // --- check 3: `name = …as_ptr()…;` at deeper block than decl.
        if let Some(name) = toks[i].word() {
            let is_assign = toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct('='))
                && (i == 0 || !toks[i - 1].is_punct('.'))
                && (i <= start || toks[i - 1].word().is_none());
            if is_assign {
                if let Some((_, decl_depth)) =
                    decl_depths.iter().rev().find(|(n, _)| n == name)
                {
                    let stmt_e = stmt_end(toks, i, end);
                    let rhs = &toks[i + 2..stmt_e.max(i + 2)];
                    let is_raw = rhs.iter().any(|t| {
                        t.is_word("as_ptr") || t.is_word("as_mut_ptr")
                    }) || cast_to_raw(rhs);
                    if is_raw && depth > *decl_depth {
                        out.push(diag(
                            rel,
                            &toks[i],
                            format!(
                                "raw pointer assigned to `{name}` escapes the block its \
                                 source lives in — the pointee may be dropped while the \
                                 pointer is still reachable"
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }

    // --- check 2: raw binding captured by a later `move` closure.
    for (name, site, _) in &raw_bindings {
        let mut i = *site;
        while i < end {
            if toks[i].is_word("move") {
                let closure_end = stmt_end(toks, i, end);
                if toks[i + 1..closure_end].iter().any(|t| t.is_word(name)) {
                    out.push(diag(
                        rel,
                        &toks[i],
                        format!(
                            "raw pointer `{name}` captured by a `move` closure without a \
                             Send wrapper carrying a disjointness argument (wrap it in a \
                             `SendPtr`-style type with a `// SAFETY:` justification)"
                        ),
                    ));
                    break;
                }
            }
            i += 1;
        }
    }
}

/// Does the token run contain an `as *mut` / `as *const` cast?
fn cast_to_raw(toks: &[Tok]) -> bool {
    toks.windows(3).any(|w| {
        w[0].is_word("as")
            && w[1].is_punct('*')
            && (w[2].is_word("mut") || w[2].is_word("const"))
    })
}

/// Index of the statement-terminating `;` (or enclosing block end)
/// after `from`, at `from`'s brace depth.
fn stmt_end(toks: &[Tok], from: usize, body_end: usize) -> usize {
    let mut d = 0i64;
    let mut i = from;
    while i < body_end {
        match toks[i].punct() {
            Some('{') => d += 1,
            Some('}') => {
                d -= 1;
                if d < 0 {
                    return i;
                }
            }
            Some(';') if d == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body_end
}

fn diag(path: &str, tok: &Tok, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        rule: Rule::UnsafeFlow,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::build(&[("crates/x/src/a.rs".to_string(), src.to_string())]);
        run(&ws)
    }

    #[test]
    fn flags_sendptr_without_disjointness_argument() {
        let src = "\
fn spawn_all(out: &mut [f32]) {
    let p = SendPtr(out.as_mut_ptr());
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "diags: {diags:?}");
        assert!(diags[0].message.contains("disjointness"));
    }

    #[test]
    fn accepts_sendptr_with_disjointness_argument() {
        let src = "\
// SAFETY: every worker writes a disjoint chunk of `out`.
fn spawn_all(out: &mut [f32]) {
    let p = SendPtr(out.as_mut_ptr());
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn flags_raw_pointer_moved_into_closure() {
        let src = "\
fn spawn_all(out: &mut [f32]) {
    let p = out.as_mut_ptr();
    std::thread::spawn(move || unsafe { *p = 0.0 });
}
";
        let diags = run_on(src);
        assert!(
            diags.iter().any(|d| d.message.contains("move` closure")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn flags_pointer_escaping_source_block() {
        let src = "\
fn leak() -> f32 {
    let p;
    {
        let buf = vec![0.0f32; 4];
        p = buf.as_ptr();
    }
    unsafe { *p }
}
";
        let diags = run_on(src);
        assert!(
            diags.iter().any(|d| d.message.contains("escapes the block")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn same_block_assignment_is_fine() {
        let src = "\
fn fine(buf: &[f32]) -> *const f32 {
    let p = buf.as_ptr();
    p
}
";
        assert!(run_on(src).is_empty());
    }
}

//! L7 — kernel-parity matrix.
//!
//! The kernel trait (`PlfBackend`) defines the PLF surface: the three
//! per-op kernels (`cond_like_down` / `cond_like_root` /
//! `cond_like_scaler`) plus their `_fused` batch variants. Every
//! backend must be verifiable against that surface:
//!
//! 1. **Partial fused override**: a backend overriding *some but not
//!    all* of the fused surface mixes custom and default batch paths —
//!    exactly the split-brain that bit-parity testing exists to catch.
//! 2. **Parity-coverage hole**: a backend type that never appears in
//!    the bit-parity suite (`tests/fused.rs`) or in the backend
//!    registry it iterates (`all_backends`) ships kernels no test
//!    compares against the scalar reference.
//!
//! `#[cfg(test)]` impls (fault-injection doubles) are exempt. When the
//! workspace under analysis has no `PlfBackend` trait (e.g. a fixture
//! set), the rule is silent.

use std::collections::BTreeSet;

use crate::graph::Workspace;
use crate::rules::{Diagnostic, Rule};

/// The parity test suite path (workspace-relative).
const PARITY_TEST: &str = "tests/fused.rs";
/// The backend registry fn whose body enumerates live backends.
const REGISTRY_FN: &str = "all_backends";

/// One backend's row in the parity matrix.
#[derive(Debug)]
pub struct BackendRow {
    /// Backend type name.
    pub name: String,
    /// File and line of the `impl PlfBackend for …`.
    pub path: String,
    /// 1-based line of the impl.
    pub line: usize,
    /// Kernel methods the impl overrides.
    pub overridden: BTreeSet<String>,
    /// Mentioned in the parity suite or the backend registry.
    pub covered: bool,
}

/// The full parity matrix: kernel surface × backends.
#[derive(Debug)]
pub struct Matrix {
    /// Kernel surface methods (`cond_like_*`), in trait order.
    pub surface: Vec<String>,
    /// The `_fused` subset of the surface.
    pub fused: Vec<String>,
    /// One row per non-test backend impl.
    pub rows: Vec<BackendRow>,
}

/// Build the parity matrix from an analyzed workspace. `None` when no
/// `PlfBackend` trait is in scope.
pub fn matrix(ws: &Workspace) -> Option<Matrix> {
    // The trait surface, in declaration order.
    let trait_item = ws
        .files
        .iter()
        .flat_map(|f| &f.parsed.traits)
        .find(|t| t.name == "PlfBackend" && !t.is_test)?;
    let surface: Vec<String> = trait_item
        .methods
        .iter()
        .filter(|m| m.name.starts_with("cond_like"))
        .map(|m| m.name.clone())
        .collect();
    let fused: Vec<String> = surface
        .iter()
        .filter(|m| m.ends_with("_fused"))
        .cloned()
        .collect();

    // Words that count as parity coverage: the parity suite itself plus
    // the registry fn body it iterates.
    let mut covered_words: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        if file.rel == PARITY_TEST || file.rel.ends_with(&format!("/{PARITY_TEST}")) {
            for t in &file.parsed.toks {
                if let Some(w) = t.word() {
                    covered_words.insert(w.to_string());
                }
            }
        }
        for f in &file.parsed.fns {
            if f.name == REGISTRY_FN && !f.is_test {
                for t in &file.parsed.toks[f.body.0..f.body.1] {
                    if let Some(w) = t.word() {
                        covered_words.insert(w.to_string());
                    }
                }
            }
        }
    }

    let mut rows = Vec::new();
    for file in &ws.files {
        for imp in &file.parsed.impls {
            if imp.trait_name.as_deref() != Some("PlfBackend") || imp.is_test {
                continue;
            }
            let overridden: BTreeSet<String> = file
                .parsed
                .fns
                .iter()
                .filter(|f| {
                    f.impl_type.as_deref() == Some(imp.type_name.as_str())
                        && f.trait_name.as_deref() == Some("PlfBackend")
                        && surface.contains(&f.name)
                })
                .map(|f| f.name.clone())
                .collect();
            rows.push(BackendRow {
                name: imp.type_name.clone(),
                path: file.rel.clone(),
                line: imp.line,
                overridden,
                covered: covered_words.contains(&imp.type_name),
            });
        }
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Some(Matrix {
        surface,
        fused,
        rows,
    })
}

/// Run L7 over an analyzed workspace.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(m) = matrix(ws) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for row in &m.rows {
        let fused_over: Vec<&String> =
            m.fused.iter().filter(|f| row.overridden.contains(*f)).collect();
        if !fused_over.is_empty() && fused_over.len() < m.fused.len() {
            let missing: Vec<&str> = m
                .fused
                .iter()
                .filter(|f| !row.overridden.contains(*f))
                .map(|s| s.as_str())
                .collect();
            out.push(Diagnostic {
                path: row.path.clone(),
                line: row.line,
                col: 1,
                rule: Rule::KernelParity,
                message: format!(
                    "backend `{}` overrides part of the fused surface but falls back to \
                     the default for {} — cover the whole fused surface or none of it",
                    row.name,
                    missing.join(", ")
                ),
            });
        }
        if !row.covered {
            out.push(Diagnostic {
                path: row.path.clone(),
                line: row.line,
                col: 1,
                rule: Rule::KernelParity,
                message: format!(
                    "backend `{}` has no bit-parity coverage: it appears neither in \
                     `{PARITY_TEST}` nor in the `{REGISTRY_FN}` registry the parity \
                     suite iterates",
                    row.name
                ),
            });
        }
    }
    out
}

/// Render the parity matrix as aligned text (for `--parity`).
pub fn render(ws: &Workspace) -> String {
    let Some(m) = matrix(ws) else {
        return "no PlfBackend trait in scope\n".to_string();
    };
    let mut out = String::new();
    let name_w = m
        .rows
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(7)
        .max("backend".len());
    out.push_str(&format!("{:name_w$}  ", "backend"));
    for s in &m.surface {
        let short = s.trim_start_matches("cond_like_");
        out.push_str(&format!("{short:>12}"));
    }
    out.push_str("  parity\n");
    for row in &m.rows {
        out.push_str(&format!("{:name_w$}  ", row.name));
        for s in &m.surface {
            let cell = if row.overridden.contains(s) {
                "override"
            } else {
                "default"
            };
            out.push_str(&format!("{cell:>12}"));
        }
        out.push_str(if row.covered { "  covered\n" } else { "  HOLE\n" });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;

    const TRAIT_SRC: &str = "\
pub trait PlfBackend {
    fn cond_like_down(&mut self) -> Result<(), PlfError>;
    fn cond_like_root(&mut self) -> Result<(), PlfError>;
    fn cond_like_scaler(&mut self) -> Result<(), PlfError>;
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> { self.cond_like_down() }
    fn cond_like_root_fused(&mut self) -> Result<(), PlfError> { self.cond_like_root() }
}
";

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let v: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        run(&Workspace::build(&v))
    }

    #[test]
    fn flags_uncovered_backend_and_partial_fused() {
        let impls = "\
pub struct Covered;
pub struct Orphan;
impl PlfBackend for Covered {
    fn cond_like_down(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_root(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> { Ok(()) }
}
impl PlfBackend for Orphan {
    fn cond_like_down(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_root(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> { Ok(()) }
}
";
        let parity = "fn parity() { let b = Covered; }\n";
        let diags = run_on(&[
            ("crates/x/src/kernels.rs", TRAIT_SRC),
            ("crates/x/src/impls.rs", impls),
            ("tests/fused.rs", parity),
        ]);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`Orphan`") && d.message.contains("no bit-parity")),
            "diags: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`Orphan`") && d.message.contains("fused surface")),
            "diags: {diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.message.contains("`Covered`")),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn registry_mention_counts_as_coverage() {
        let impls = "\
pub struct ViaRegistry;
impl PlfBackend for ViaRegistry {
    fn cond_like_down(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_root(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> { Ok(()) }
}
pub fn all_backends() -> Vec<Box<dyn PlfBackend>> {
    vec![Box::new(ViaRegistry)]
}
";
        let diags = run_on(&[
            ("crates/x/src/kernels.rs", TRAIT_SRC),
            ("crates/x/src/impls.rs", impls),
        ]);
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn cfg_test_impls_are_exempt() {
        let impls = "\
#[cfg(test)]
mod tests {
    struct Flaky;
    impl PlfBackend for Flaky {
        fn cond_like_down(&mut self) -> Result<(), PlfError> { Ok(()) }
        fn cond_like_root(&mut self) -> Result<(), PlfError> { Ok(()) }
        fn cond_like_scaler(&mut self) -> Result<(), PlfError> { Ok(()) }
    }
}
";
        let diags = run_on(&[
            ("crates/x/src/kernels.rs", TRAIT_SRC),
            ("crates/x/src/impls.rs", impls),
        ]);
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn renders_matrix() {
        let impls = "\
pub struct Covered;
impl PlfBackend for Covered {
    fn cond_like_down(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_root(&mut self) -> Result<(), PlfError> { Ok(()) }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> { Ok(()) }
}
";
        let v: Vec<(String, String)> = vec![
            ("crates/x/src/kernels.rs".to_string(), TRAIT_SRC.to_string()),
            ("crates/x/src/impls.rs".to_string(), impls.to_string()),
        ];
        let text = render(&Workspace::build(&v));
        assert!(text.contains("Covered"), "{text}");
        assert!(text.contains("HOLE"), "{text}");
    }
}

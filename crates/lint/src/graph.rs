//! Workspace-level structural analysis shared by the L5–L8 rules.
//!
//! Builds, from every parsed file:
//!
//! * a **struct table** with per-field type words and the lock fields
//!   (`Mutex`/`RwLock`/`Condvar`) each struct owns;
//! * a **function table** indexed by `(self type, name)` and by bare
//!   name, used to resolve call sites;
//! * per-function **facts**: lock acquisitions with guard lifetimes,
//!   blocking operations, and resolved call sites;
//! * a transitive **fixpoint** (which locks / blocking operations a
//!   call may reach), and the workspace **lock-order graph** with one
//!   witness per edge.
//!
//! Call resolution is deliberately strict — `self` receivers, fields
//! with known struct types, typed params/locals, `Type::method` paths,
//! and (only for otherwise-unresolved names) a workspace-unique bare
//! name outside a stoplist of std-collection look-alikes. Methods of
//! the kernel trait (`PlfBackend`) are resolved as dynamic dispatch to
//! every non-test impl. Unresolved calls are dropped rather than
//! guessed: the rules prefer missing an edge to inventing one.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::parse::{parse, FnItem, ParsedFile, Tok};
use crate::rules::FileScope;
use crate::scan::{scan, Scanned};

/// Kind of lock-bearing field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
    /// `std::sync::Condvar` (not a lock; tracked for wait detection).
    Condvar,
}

/// Blocking-operation kinds recognized by L5.
pub const BLOCK_KINDS: [&str; 7] = [
    "fsync",
    "channel-recv",
    "channel-send",
    "thread-join",
    "sleep",
    "condvar-wait",
    "kernel-dispatch",
];

/// Method names treated as kernel dispatch (the PLF itself: unbounded
/// compute from the caller's point of view).
const KERNEL_WORDS: [&str; 9] = [
    "cond_like_down",
    "cond_like_root",
    "cond_like_scaler",
    "cond_like_down_fused",
    "cond_like_root_fused",
    "cond_like_scaler_fused",
    "evaluate_fused",
    "log_likelihood",
    "log_likelihood_planned",
];

/// Bare names too common to resolve by workspace-wide uniqueness
/// (std-collection methods and ubiquitous helper names).
const STOPLIST: [&str; 36] = [
    "push", "pop", "pop_front", "pop_back", "insert", "remove", "get", "get_mut", "len",
    "is_empty", "contains", "contains_key", "clone", "new", "default", "fmt", "next", "iter",
    "iter_mut", "into_iter", "drain", "extend", "write", "read", "lock", "flush", "send", "recv",
    "wait", "take", "name", "clear", "as_ref", "as_mut", "set", "run",
];

/// One file in the workspace under analysis.
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The scanner output.
    pub scanned: Scanned,
    /// The parser output.
    pub parsed: ParsedFile,
    /// Path-derived rule scope.
    pub scope: FileScope,
}

/// Global function id: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// A lock acquisition inside one function.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Lock identity, `Struct.field`.
    pub lock: String,
    /// Token index of the acquiring call.
    pub site: usize,
    /// Token index at which the guard is released (exclusive).
    pub until: usize,
    /// The `let` binding holding the guard, when not a temporary.
    pub guard_name: Option<String>,
}

/// A blocking operation inside one function.
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// One of [`BLOCK_KINDS`].
    pub kind: &'static str,
    /// Token index of the operation.
    pub site: usize,
    /// Guard binding a condvar wait releases for its duration.
    pub exempt_guard: Option<String>,
}

/// A resolved (or unresolved) call site inside one function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Token index of the callee name.
    pub site: usize,
    /// Resolved targets (empty when unresolvable).
    pub targets: Vec<FnId>,
}

/// Everything the rules need to know about one function.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Direct lock acquisitions, in token order.
    pub acquires: Vec<Acq>,
    /// Direct blocking operations, in token order.
    pub blocks: Vec<BlockSite>,
    /// Call sites, in token order.
    pub calls: Vec<CallSite>,
    /// Locks this function or any callee may acquire.
    pub trans_locks: BTreeSet<String>,
    /// Blocking kinds this function or any callee may perform.
    pub trans_blocks: BTreeSet<&'static str>,
    /// When the fn returns a guard, the lock it acquired.
    pub returns_guard_of: Option<String>,
}

/// A lock-graph edge witness: where `held → acquired` was observed.
#[derive(Debug, Clone)]
pub struct Witness {
    /// File of the acquiring site.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Function the acquisition happens in.
    pub in_fn: String,
}

/// The parsed workspace plus its derived index tables.
pub struct Workspace {
    /// All files, in input order.
    pub files: Vec<FileUnit>,
    /// Struct name → (file, struct index). Last definition wins.
    pub structs: HashMap<String, (usize, usize)>,
    /// Struct name → lock field name → kind.
    pub lock_fields: HashMap<String, HashMap<String, LockKind>>,
    /// `(self type, fn name)` → function ids (non-test only).
    pub by_qual: HashMap<(String, String), Vec<FnId>>,
    /// fn name → function ids (non-test only).
    pub by_name: HashMap<String, Vec<FnId>>,
    /// Methods of the kernel trait (`PlfBackend`), when present.
    pub backend_methods: BTreeSet<String>,
    /// Per-function facts (keyed by [`FnId`]; analyzed fns only).
    pub facts: HashMap<FnId, FnFacts>,
    /// Lock-order edges `(held, acquired)` → first witness.
    pub edges: BTreeMap<(String, String), Witness>,
}

impl Workspace {
    /// Scan, parse, and analyze a set of `(rel path, source)` files.
    pub fn build(inputs: &[(String, String)]) -> Workspace {
        let files: Vec<FileUnit> = inputs
            .iter()
            .map(|(rel, src)| {
                let scanned = scan(src);
                let parsed = parse(&scanned);
                FileUnit {
                    rel: rel.clone(),
                    scope: FileScope::for_path(rel),
                    scanned,
                    parsed,
                }
            })
            .collect();

        let mut ws = Workspace {
            files,
            structs: HashMap::new(),
            lock_fields: HashMap::new(),
            by_qual: HashMap::new(),
            by_name: HashMap::new(),
            backend_methods: BTreeSet::new(),
            facts: HashMap::new(),
            edges: BTreeMap::new(),
        };
        ws.index();
        ws.extract_facts();
        ws.fixpoint();
        ws.build_edges();
        ws
    }

    /// Should this function participate in structural analysis?
    pub fn analyzed(&self, id: FnId) -> bool {
        let f = &self.files[id.0];
        !f.scope.relaxed && !f.parsed.fns[id.1].is_test
    }

    /// The function whose body span covers `line` in `file`, if any.
    pub fn enclosing_fn(&self, file: usize, line: usize) -> Option<&FnItem> {
        let parsed = &self.files[file].parsed;
        parsed
            .fns
            .iter()
            .filter(|f| {
                let end_line = parsed
                    .toks
                    .get(f.body.1.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(f.line);
                f.line <= line && line <= end_line
            })
            // Innermost (latest-starting) covering fn wins.
            .max_by_key(|f| f.line)
    }

    fn index(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (si, st) in file.parsed.structs.iter().enumerate() {
                if st.is_test {
                    continue;
                }
                self.structs.insert(st.name.clone(), (fi, si));
                let mut locks = HashMap::new();
                for (fname, ty) in &st.fields {
                    let kind = if ty.iter().any(|w| w == "Condvar") {
                        Some(LockKind::Condvar)
                    } else if ty.iter().any(|w| w == "RwLock") {
                        Some(LockKind::RwLock)
                    } else if ty.iter().any(|w| w == "Mutex") {
                        Some(LockKind::Mutex)
                    } else {
                        None
                    };
                    if let Some(k) = kind {
                        locks.insert(fname.clone(), k);
                    }
                }
                if !locks.is_empty() {
                    self.lock_fields.insert(st.name.clone(), locks);
                }
            }
            for (ki, f) in file.parsed.fns.iter().enumerate() {
                if f.is_test || file.scope.relaxed {
                    continue;
                }
                if let Some(t) = &f.impl_type {
                    self.by_qual
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push((fi, ki));
                }
                self.by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push((fi, ki));
            }
            for tr in &file.parsed.traits {
                if tr.name == "PlfBackend" && !tr.is_test {
                    self.backend_methods = tr.methods.iter().map(|m| m.name.clone()).collect();
                }
            }
        }
    }

    /// Pick the first word of a type that names a known struct.
    fn struct_of<'a>(&self, ty_words: &'a [String]) -> Option<&'a str> {
        ty_words
            .iter()
            .find(|w| self.structs.contains_key(w.as_str()))
            .map(|w| w.as_str())
    }

    /// Field type lookup: `struct_name.field` → field type words.
    fn field_ty(&self, struct_name: &str, field: &str) -> Option<&[String]> {
        let &(fi, si) = self.structs.get(struct_name)?;
        self.files[fi].parsed.structs[si]
            .fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, ty)| ty.as_slice())
    }

    // -------------------------------------------------- fact extraction

    fn extract_facts(&mut self) {
        // Pass 1: everything except helper-call acquisitions.
        let mut all: Vec<(FnId, FnFacts)> = Vec::new();
        for fi in 0..self.files.len() {
            for ki in 0..self.files[fi].parsed.fns.len() {
                let id = (fi, ki);
                if !self.analyzed(id) {
                    continue;
                }
                all.push((id, self.extract_fn(id)));
            }
        }
        let mut facts: HashMap<FnId, FnFacts> = all.into_iter().collect();

        // Pass 2: guard-returning helpers (a fn whose return type names
        // a guard and whose body takes exactly one lock).
        let guard_words = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];
        let mut helper_locks: HashMap<FnId, String> = HashMap::new();
        for (&id, f) in &facts {
            let item = &self.files[id.0].parsed.fns[id.1];
            if item.ret_words.iter().any(|w| guard_words.contains(&w.as_str())) {
                let locks: BTreeSet<&String> = f.acquires.iter().map(|a| &a.lock).collect();
                if locks.len() == 1 {
                    helper_locks.insert(id, f.acquires[0].lock.clone());
                }
            }
        }
        for (&id, lock) in &helper_locks {
            if let Some(f) = facts.get_mut(&id) {
                f.returns_guard_of = Some(lock.clone());
            }
        }

        // Pass 3: calls to guard-returning helpers become acquisitions
        // at the call site, with the same binding/lifetime treatment as
        // a direct `.lock()`.
        let ids: Vec<FnId> = facts.keys().copied().collect();
        for id in ids {
            let mut extra: Vec<Acq> = Vec::new();
            {
                let f = &facts[&id];
                for c in &f.calls {
                    let mut locks: BTreeSet<String> = BTreeSet::new();
                    for t in &c.targets {
                        if let Some(l) = facts.get(t).and_then(|tf| tf.returns_guard_of.clone()) {
                            locks.insert(l);
                        }
                    }
                    if locks.len() == 1 {
                        let lock = locks.into_iter().next().unwrap_or_default();
                        let item = &self.files[id.0].parsed.fns[id.1];
                        let toks = &self.files[id.0].parsed.toks;
                        let call_end = call_end_index(toks, c.site, item.body.1);
                        let (until, guard_name) =
                            guard_span(toks, item.body, c.site, call_end, false);
                        extra.push(Acq {
                            lock,
                            site: c.site,
                            until,
                            guard_name,
                        });
                    }
                }
            }
            if !extra.is_empty() {
                if let Some(f) = facts.get_mut(&id) {
                    f.acquires.extend(extra);
                    f.acquires.sort_by_key(|a| a.site);
                }
            }
        }
        self.facts = facts;
    }

    /// Extract acquisitions, blocking ops, and calls from one fn body.
    fn extract_fn(&self, id: FnId) -> FnFacts {
        let file = &self.files[id.0];
        let item = &file.parsed.fns[id.1];
        let toks = &file.parsed.toks;
        let (body_start, body_end) = item.body;
        let locals = local_types(self, toks, item);
        let mut facts = FnFacts::default();

        let mut i = body_start;
        while i < body_end {
            let Some(w) = toks[i].word() else {
                i += 1;
                continue;
            };
            let prev_dot = i > 0 && toks[i - 1].is_punct('.');
            let next_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));

            // Lock acquisition: `.lock()`, `.read()`, `.write()` with
            // no arguments, on a receiver resolving to a lock field.
            if prev_dot
                && next_paren
                && matches!(w, "lock" | "read" | "write")
                && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            {
                let mut acquired = false;
                if let Some(chain) = receiver_chain(toks, i) {
                    if let Some((lock, kind)) = self.resolve_lock(item, &locals, &chain) {
                        if kind != LockKind::Condvar {
                            let (until, guard_name) =
                                guard_span(toks, item.body, i, i + 3, false);
                            facts.acquires.push(Acq {
                                lock,
                                site: i,
                                until,
                                guard_name,
                            });
                        }
                        acquired = true;
                    }
                }
                if acquired {
                    i += 3;
                    continue;
                }
                // Not a lock field: may be a method that *returns* a
                // guard (`fn lock(&self) -> MutexGuard<…>`); fall
                // through so the call site is recorded and pass 3 can
                // turn it into an acquisition.
            }

            // Blocking operations.
            if prev_dot && next_paren {
                let kind = match w {
                    "sync_all" | "sync_data" => Some(("fsync", None)),
                    "recv" | "recv_timeout" => Some(("channel-recv", None)),
                    "send" => Some(("channel-send", None)),
                    "join" if toks.get(i + 2).is_some_and(|t| t.is_punct(')')) => {
                        Some(("thread-join", None))
                    }
                    "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while" => {
                        // Condvar wait releases the guard it is passed.
                        let chain = receiver_chain(toks, i);
                        let is_condvar = chain
                            .as_deref()
                            .and_then(|c| self.resolve_lock(item, &locals, c))
                            .is_some_and(|(_, k)| k == LockKind::Condvar);
                        if is_condvar {
                            let exempt = toks.get(i + 2).and_then(|t| t.word()).map(String::from);
                            Some(("condvar-wait", exempt))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((kind, exempt_guard)) = kind {
                    facts.blocks.push(BlockSite {
                        kind,
                        site: i,
                        exempt_guard,
                    });
                    // `send`/`recv` are also method calls; fall through
                    // to call extraction below is unnecessary (they are
                    // stoplisted anyway).
                    i += 1;
                    continue;
                }
            }
            if w == "sleep" && next_paren {
                facts.blocks.push(BlockSite {
                    kind: "sleep",
                    site: i,
                    exempt_guard: None,
                });
                i += 1;
                continue;
            }
            if KERNEL_WORDS.contains(&w) && next_paren {
                facts.blocks.push(BlockSite {
                    kind: "kernel-dispatch",
                    site: i,
                    exempt_guard: None,
                });
                // Kernel methods are also dyn-dispatched calls: record
                // them so L8 reaches the backend impls.
            }

            // Call sites.
            if next_paren && !is_keyword(w) {
                let is_macro = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
                if !is_macro {
                    let targets = self.resolve_call(item, &locals, toks, i);
                    facts.calls.push(CallSite {
                        name: w.to_string(),
                        site: i,
                        targets,
                    });
                }
            }
            i += 1;
        }
        facts
    }

    /// Resolve a receiver chain (outermost-first) to a lock field.
    fn resolve_lock(
        &self,
        item: &FnItem,
        locals: &HashMap<String, Vec<String>>,
        chain: &[Elem],
    ) -> Option<(String, LockKind)> {
        let (last, init) = chain.split_last()?;
        let Elem::Name(field) = last else { return None };
        let owner = self.resolve_owner(item, locals, init)?;
        let kind = *self.lock_fields.get(&owner)?.get(field)?;
        Some((format!("{owner}.{field}"), kind))
    }

    /// Resolve the struct type a chain prefix lands on.
    fn resolve_owner(
        &self,
        item: &FnItem,
        locals: &HashMap<String, Vec<String>>,
        init: &[Elem],
    ) -> Option<String> {
        let mut cur: Option<String> = None;
        for (n, e) in init.iter().enumerate() {
            match e {
                Elem::Name(w) => {
                    if n == 0 {
                        cur = self.resolve_base(item, locals, w);
                    } else {
                        let owner = cur.as_deref()?;
                        let ty = self.field_ty(owner, w)?;
                        cur = self.struct_of(ty).map(String::from);
                    }
                }
                Elem::Call(name) => {
                    // A method call in the chain: resolve it and take
                    // its return type.
                    let mut targets = Vec::new();
                    if let Some(owner) = cur.as_deref() {
                        if let Some(v) = self.by_qual.get(&(owner.to_string(), name.clone())) {
                            targets = v.clone();
                        }
                    }
                    if targets.is_empty() && !STOPLIST.contains(&name.as_str()) {
                        if let Some(v) = self.by_name.get(name) {
                            if v.len() == 1 {
                                targets = v.clone();
                            }
                        }
                    }
                    let t = targets.first()?;
                    let ret = &self.files[t.0].parsed.fns[t.1].ret_words;
                    cur = self.struct_of(ret).map(String::from);
                }
            }
            cur.as_ref()?;
        }
        if init.is_empty() {
            return None;
        }
        cur
    }

    /// Resolve the base word of a receiver chain to a struct name.
    fn resolve_base(
        &self,
        item: &FnItem,
        locals: &HashMap<String, Vec<String>>,
        w: &str,
    ) -> Option<String> {
        if w == "self" {
            return item.impl_type.clone();
        }
        if let Some(p) = item.params.iter().find(|p| p.name == w) {
            if let Some(s) = self.struct_of(&p.ty_words) {
                return Some(s.to_string());
            }
        }
        if let Some(ty) = locals.get(w) {
            if let Some(s) = self.struct_of(ty) {
                return Some(s.to_string());
            }
        }
        // A bare struct name used as a path base (`Registry::get(...)`)
        // or a static — accept known struct names directly.
        if self.structs.contains_key(w) {
            return Some(w.to_string());
        }
        None
    }

    /// Resolve a call site to concrete fns.
    fn resolve_call(
        &self,
        item: &FnItem,
        locals: &HashMap<String, Vec<String>>,
        toks: &[Tok],
        site: usize,
    ) -> Vec<FnId> {
        let name = toks[site].word().unwrap_or_default().to_string();
        let prev_dot = site > 0 && toks[site - 1].is_punct('.');
        let prev_path = site > 1 && toks[site - 1].is_punct(':') && toks[site - 2].is_punct(':');

        // Kernel trait methods: dynamic dispatch to every non-test impl
        // (plus the trait default body, indexed under the trait name).
        if self.backend_methods.contains(&name) {
            let mut out = Vec::new();
            for (key, ids) in &self.by_qual {
                if key.1 == name {
                    let is_backend_impl = self.files[ids[0].0]
                        .parsed
                        .fns
                        .get(ids[0].1)
                        .and_then(|f| f.trait_name.as_deref())
                        == Some("PlfBackend")
                        || key.0 == "PlfBackend";
                    if is_backend_impl {
                        out.extend(ids.iter().copied());
                    }
                }
            }
            out.sort_unstable();
            return out;
        }

        if prev_dot {
            // Method call: resolve the receiver type.
            if let Some(chain) = receiver_chain_prefix(toks, site) {
                if let Some(owner) = match chain.split_first() {
                    Some((Elem::Name(base), [])) => self.resolve_base(item, locals, base),
                    _ => self.resolve_owner(item, locals, &chain),
                } {
                    if let Some(v) = self.by_qual.get(&(owner, name.clone())) {
                        return v.clone();
                    }
                }
            }
        } else if prev_path {
            // `Type::method(...)` — the word before `::`.
            if let Some(t) = toks.get(site.wrapping_sub(3)).and_then(|t| t.word()) {
                if let Some(v) = self.by_qual.get(&(t.to_string(), name.clone())) {
                    return v.clone();
                }
            }
        }

        // Fallback: workspace-unique bare name outside the stoplist.
        if !STOPLIST.contains(&name.as_str()) {
            if let Some(v) = self.by_name.get(&name) {
                if v.len() == 1 {
                    return v.clone();
                }
            }
        }
        Vec::new()
    }

    // ------------------------------------------------------- fixpoint

    /// Propagate `trans_locks` / `trans_blocks` through the call graph.
    fn fixpoint(&mut self) {
        for f in self.facts.values_mut() {
            f.trans_locks = f.acquires.iter().map(|a| a.lock.clone()).collect();
            f.trans_blocks = f.blocks.iter().map(|b| b.kind).collect();
        }
        for _ in 0..64 {
            let mut changed = false;
            let ids: Vec<FnId> = self.facts.keys().copied().collect();
            for id in ids {
                let mut locks = BTreeSet::new();
                let mut blocks = BTreeSet::new();
                for c in &self.facts[&id].calls {
                    for t in &c.targets {
                        if let Some(tf) = self.facts.get(t) {
                            locks.extend(tf.trans_locks.iter().cloned());
                            blocks.extend(tf.trans_blocks.iter().copied());
                        }
                    }
                }
                let f = self.facts.get_mut(&id).expect("id from keys");
                let before = (f.trans_locks.len(), f.trans_blocks.len());
                f.trans_locks.extend(locks);
                f.trans_blocks.extend(blocks);
                if (f.trans_locks.len(), f.trans_blocks.len()) != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    // ------------------------------------------------------ lock graph

    /// Build the workspace lock-order edge set with witnesses.
    fn build_edges(&mut self) {
        let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
        let ids: Vec<FnId> = self.facts.keys().copied().collect();
        for id in ids {
            let file = &self.files[id.0];
            let item = &file.parsed.fns[id.1];
            let toks = &file.parsed.toks;
            let f = &self.facts[&id];
            for ev in event_order(f) {
                let held = held_at(f, ev.0);
                match ev.1 {
                    EvKind::Acquire(a) => {
                        for h in &held {
                            if h.lock != f.acquires[a].lock {
                                let tok = &toks[f.acquires[a].site];
                                edges
                                    .entry((h.lock.clone(), f.acquires[a].lock.clone()))
                                    .or_insert_with(|| Witness {
                                        path: file.rel.clone(),
                                        line: tok.line,
                                        col: tok.col,
                                        in_fn: item.name.clone(),
                                    });
                            }
                        }
                    }
                    EvKind::Call(c) => {
                        let call = &f.calls[c];
                        let mut callee_locks: BTreeSet<String> = BTreeSet::new();
                        for t in &call.targets {
                            if let Some(tf) = self.facts.get(t) {
                                callee_locks.extend(tf.trans_locks.iter().cloned());
                            }
                        }
                        for h in &held {
                            for l in &callee_locks {
                                if *l != h.lock {
                                    let tok = &toks[call.site];
                                    edges
                                        .entry((h.lock.clone(), l.clone()))
                                        .or_insert_with(|| Witness {
                                            path: file.rel.clone(),
                                            line: tok.line,
                                            col: tok.col,
                                            in_fn: item.name.clone(),
                                        });
                                }
                            }
                        }
                    }
                    EvKind::Block(_) => {}
                }
            }
        }
        self.edges = edges;
    }
}

/// An event inside a fn body, ordered by token index.
pub enum EvKind {
    /// Acquisition `acquires[i]` starts.
    Acquire(usize),
    /// Call `calls[i]`.
    Call(usize),
    /// Blocking op `blocks[i]`.
    Block(usize),
}

/// All events of a fn in token order.
pub fn event_order(f: &FnFacts) -> Vec<(usize, EvKind)> {
    let mut ev: Vec<(usize, EvKind)> = Vec::new();
    for (i, a) in f.acquires.iter().enumerate() {
        ev.push((a.site, EvKind::Acquire(i)));
    }
    for (i, c) in f.calls.iter().enumerate() {
        ev.push((c.site, EvKind::Call(i)));
    }
    for (i, b) in f.blocks.iter().enumerate() {
        ev.push((b.site, EvKind::Block(i)));
    }
    ev.sort_by_key(|(s, _)| *s);
    ev
}

/// The acquisitions whose guard span covers token `at` (excluding an
/// acquisition that starts exactly at `at`).
pub fn held_at(f: &FnFacts, at: usize) -> Vec<&Acq> {
    f.acquires
        .iter()
        .filter(|a| a.site < at && at < a.until)
        .collect()
}

/// Receiver-chain element: a plain name or a method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Elem {
    /// Field or base identifier.
    Name(String),
    /// Method call in the chain (resolved via its return type).
    Call(String),
}

/// Walk backwards from the method word at `site` (with `.` at
/// `site-1`), collecting the receiver chain outermost-first. Returns
/// `None` for receivers too complex to resolve.
fn receiver_chain(toks: &[Tok], site: usize) -> Option<Vec<Elem>> {
    receiver_chain_prefix(toks, site)
}

/// The chain before `.name` at `site`, outermost-first.
fn receiver_chain_prefix(toks: &[Tok], site: usize) -> Option<Vec<Elem>> {
    let mut rev: Vec<Elem> = Vec::new();
    let mut k = site.checked_sub(1)?; // the '.'
    loop {
        if !toks.get(k).is_some_and(|t| t.is_punct('.')) {
            break;
        }
        let mut j = k.checked_sub(1)?;
        match &toks[j].kind {
            crate::parse::TokKind::Word(w) => {
                rev.push(Elem::Name(w.clone()));
            }
            crate::parse::TokKind::Punct(']') => {
                // Indexing: skip to the matching '[' and take the word
                // before it (indexing preserves the element type words).
                let open = match_back(toks, j, '[', ']')?;
                j = open.checked_sub(1)?;
                let w = toks.get(j).and_then(|t| t.word())?;
                rev.push(Elem::Name(w.to_string()));
            }
            crate::parse::TokKind::Punct(')') => {
                // Method call in the chain.
                let open = match_back(toks, j, '(', ')')?;
                j = open.checked_sub(1)?;
                let w = toks.get(j).and_then(|t| t.word())?;
                rev.push(Elem::Call(w.to_string()));
            }
            _ => return None,
        }
        // Continue if another '.' precedes.
        let Some(prev) = j.checked_sub(1) else { break };
        if toks[prev].is_punct('.') {
            k = prev;
        } else {
            break;
        }
    }
    if rev.is_empty() {
        return None;
    }
    rev.reverse();
    Some(rev)
}

/// Find the opener matching the closer at `close_idx`, scanning back.
fn match_back(toks: &[Tok], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = close_idx;
    loop {
        if toks[i].is_punct(close) {
            depth += 1;
        } else if toks[i].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.checked_sub(1)?;
    }
}

/// Index just past the closing paren of the call whose name is at
/// `site` (the `(` is at `site+1`).
fn call_end_index(toks: &[Tok], site: usize, body_end: usize) -> usize {
    let mut depth = 0i64;
    let mut i = site + 1;
    while i < body_end {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    body_end
}

/// Combinators that preserve the guard as the expression value.
const GUARD_COMBINATORS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Compute the guard lifetime for an acquisition at token `site` whose
/// acquiring call ends at `call_end`:
///
/// * **let-bound** (statement starts with `let` and, after any
///   guard-preserving combinator chain, ends the initializer): held to
///   the end of the enclosing block, or to a `drop(name)` call;
/// * **temporary** otherwise: held to the end of the current statement
///   (the next `;` at the same brace depth — which correctly extends a
///   `match`/`if let` scrutinee temporary over the arms).
///
/// Returns `(release token index, guard binding name)`.
/// Start of the statement containing `from`, at exactly brace depth
/// `td`: the token after the nearest `;` at that depth, or after the
/// `{` opening the `td`-depth block.
fn stmt_start_at(toks: &[Tok], body_start: usize, from: usize, td: i64) -> usize {
    let mut d = 0i64;
    for t in toks.iter().take(from).skip(body_start) {
        match t.punct() {
            Some('{') => d += 1,
            Some('}') => d -= 1,
            _ => {}
        }
    }
    let mut start = from;
    let mut i = from;
    while i > body_start {
        i -= 1;
        match toks[i].punct() {
            Some('}') => d += 1,
            Some('{') => {
                d -= 1;
                if d < td {
                    return i + 1;
                }
            }
            Some(';') if d == td => return i + 1,
            _ => {}
        }
        start = i;
    }
    start
}

/// Does the token run begin with `let`?
fn starts_with_let(toks: &[Tok]) -> bool {
    toks.first().is_some_and(|t| t.is_word("let"))
}

fn guard_span(
    toks: &[Tok],
    body: (usize, usize),
    site: usize,
    call_end: usize,
    _is_helper: bool,
) -> (usize, Option<String>) {
    let (body_start, body_end) = body;
    // Brace depth at each token of the body, relative to the body.
    let depth_at = |idx: usize| -> i64 {
        let mut d = 0i64;
        for t in toks.iter().take(idx).skip(body_start) {
            match t.punct() {
                Some('{') => d += 1,
                Some('}') => d -= 1,
                _ => {}
            }
        }
        d
    };
    let site_depth = depth_at(site);

    // Statement start: walk back to the nearest `;`, `{`, or `}` at
    // the site's depth.
    let mut stmt_start = site;
    {
        let mut d = site_depth;
        let mut i = site;
        while i > body_start {
            i -= 1;
            match toks[i].punct() {
                Some('}') => d += 1,
                Some('{') => {
                    d -= 1;
                    if d < site_depth {
                        stmt_start = i + 1;
                        break;
                    }
                }
                Some(';') if d == site_depth => {
                    stmt_start = i + 1;
                    break;
                }
                _ => {}
            }
            stmt_start = i;
        }
    }

    let is_let = toks[stmt_start..site]
        .iter()
        .take(4)
        .any(|t| t.is_word("let"))
        // A deref (`let n = *self.state.lock()…`) copies the value out;
        // the guard itself is a temporary dropped at the `;`.
        && !toks[stmt_start..site].iter().any(|t| t.is_punct('*'));
    let let_bound = is_let && {
        // After the call, only guard-preserving combinators may appear
        // before the terminating `;`.
        let mut i = call_end;
        let mut ok = true;
        loop {
            match toks.get(i).map(|t| &t.kind) {
                Some(crate::parse::TokKind::Punct(';')) => break,
                Some(crate::parse::TokKind::Punct('.')) => {
                    let w = toks.get(i + 1).and_then(|t| t.word()).unwrap_or("");
                    if GUARD_COMBINATORS.contains(&w)
                        && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                    {
                        i = call_end_index(toks, i + 1, body_end);
                    } else {
                        ok = false;
                        break;
                    }
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        ok
    };

    if let_bound {
        let mut name = toks[stmt_start..site]
            .iter()
            .skip_while(|t| !t.is_word("let"))
            .filter_map(|t| t.word())
            .find(|w| *w != "let" && *w != "mut")
            .map(String::from);
        // End of the enclosing block: first token where depth drops
        // below the statement's depth.
        let mut end = body_end;
        let mut d = site_depth;
        let mut i = site;
        while i < body_end {
            match toks[i].punct() {
                Some('{') => d += 1,
                Some('}') => {
                    d -= 1;
                    if d < site_depth {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // A guard moved out of its block as (part of) the tail
        // expression — `let outer = match … { Some(k) => { let g =
        // ….lock()…; Some(g) } … };` — lives on in the outer binding:
        // extend the span to the outer binding's block and track the
        // outer name. `match`/`if` bodies add one block level between
        // the arm and the `let`, so the outer statement may sit one
        // depth further up.
        while end < body_end {
            let Some(n) = name.clone() else { break };
            let inner_d = depth_at(end);
            if inner_d == 0 {
                break;
            }
            // Tail expression of the block ending at `end`. A bare (or
            // wrapped) mention moves the guard out; `*g` copies the
            // value and `g.method()` consumes it — neither escapes.
            let tail_start = stmt_start_at(toks, body_start, end, inner_d);
            let escapes = toks[tail_start..end].iter().enumerate().any(|(k, t)| {
                t.is_word(&n)
                    && !toks[tail_start + k + 1..end]
                        .first()
                        .is_some_and(|t| t.is_punct('.'))
                    && !(k > 0 && toks[tail_start + k - 1].is_punct('*'))
            });
            if !escapes {
                break;
            }
            let mut target_d = inner_d - 1;
            let mut os = stmt_start_at(toks, body_start, end, target_d);
            if !starts_with_let(&toks[os..end]) {
                // One level further up, across a `match`/`if` body.
                if target_d == 0 {
                    break;
                }
                let os2 = stmt_start_at(toks, body_start, end, target_d - 1);
                let head: Vec<&Tok> = toks[os2..end]
                    .iter()
                    .take_while(|t| !t.is_punct('{'))
                    .collect();
                if starts_with_let(&toks[os2..end])
                    && head.iter().any(|t| t.is_word("match") || t.is_word("if"))
                {
                    os = os2;
                    target_d -= 1;
                } else {
                    break;
                }
            }
            let outer_name = toks[os..end]
                .iter()
                .skip_while(|t| !t.is_word("let"))
                .filter_map(|t| t.word())
                .find(|w| *w != "let" && *w != "mut")
                .map(String::from);
            // Forward to the end of the block enclosing the outer
            // statement. Depth right after the `}` at `end` is
            // `inner_d - 1` (one more than `target_d` when a
            // `match`/`if` body sits between).
            let mut d = inner_d - 1;
            let mut i = end + 1;
            let mut new_end = body_end;
            while i < body_end {
                match toks[i].punct() {
                    Some('{') => d += 1,
                    Some('}') => {
                        d -= 1;
                        if d < target_d {
                            new_end = i;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            name = outer_name;
            end = new_end;
        }

        // An explicit `drop(name)` releases earlier.
        if let Some(n) = &name {
            let mut i = call_end;
            while i + 2 < end {
                if toks[i].is_word("drop")
                    && toks[i + 1].is_punct('(')
                    && toks[i + 2].is_word(n)
                {
                    end = i;
                    break;
                }
                i += 1;
            }
        }
        (end, name)
    } else {
        // Temporary: to the statement's `;` at the site depth, or the
        // end of the enclosing block if the depth closes first.
        let mut d = site_depth;
        let mut i = call_end;
        while i < body_end {
            match toks[i].punct() {
                Some('{') => d += 1,
                Some('}') => {
                    d -= 1;
                    if d < site_depth {
                        return (i, None);
                    }
                }
                Some(';') if d == site_depth => return (i, None),
                _ => {}
            }
            i += 1;
        }
        (body_end, None)
    }
}

/// Infer local-binding types inside a fn body: `let x: Ty = …` and
/// `let x = Ty::…` / `let x = Ty { …`.
fn local_types(
    ws: &Workspace,
    toks: &[Tok],
    item: &FnItem,
) -> HashMap<String, Vec<String>> {
    let mut out = HashMap::new();
    let (start, end) = item.body;
    let mut i = start;
    while i < end {
        if toks[i].is_word("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_word("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(|t| t.word()).map(String::from) else {
                i += 1;
                continue;
            };
            j += 1;
            if toks.get(j).is_some_and(|t| t.is_punct(':')) {
                // Ascribed type: words up to `=` or `;`.
                let mut ty = Vec::new();
                let mut k = j + 1;
                while k < end {
                    if toks[k].is_punct('=') || toks[k].is_punct(';') {
                        break;
                    }
                    if let Some(w) = toks[k].word() {
                        ty.push(w.to_string());
                    }
                    k += 1;
                }
                out.insert(name, ty);
            } else if toks.get(j).is_some_and(|t| t.is_punct('=')) {
                // `= Ty::…` or `= Ty { …` with a known struct name.
                if let Some(w) = toks.get(j + 1).and_then(|t| t.word()) {
                    let next_is_path = toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                        || toks.get(j + 2).is_some_and(|t| t.is_punct('{'));
                    if next_is_path && ws.structs.contains_key(w) {
                        out.insert(name, vec![w.to_string()]);
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Rust keywords and control-flow words never treated as call names.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "else" | "while" | "match" | "for" | "loop" | "return" | "break" | "continue"
            | "as" | "in" | "move" | "ref" | "mut" | "let" | "fn" | "where" | "impl" | "dyn"
            | "unsafe" | "pub" | "use" | "mod" | "struct" | "enum" | "trait" | "const" | "static"
            | "type" | "crate" | "super" | "self" | "Self" | "async" | "await" | "box" | "drop"
            | "Some" | "None" | "Ok" | "Err" | "Box" | "Arc" | "Rc" | "Vec" | "String"
            | "Mutex" | "RwLock" | "Condvar" | "Duration" | "Instant" | "Ordering" | "Option"
            | "Result" | "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet" | "VecDeque" | "Default"
    )
}

/// Strongly connected components of the lock graph (Tarjan), returned
/// as sorted node lists; only components with ≥ 2 nodes (a cycle) are
/// returned.
pub fn lock_cycles(edges: &BTreeMap<(String, String), Witness>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let idx: HashMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&String> = nodes.iter().copied().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[idx[a]].push(idx[b]);
    }

    // Iterative Tarjan.
    let n = names.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<String>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new(); // (node, child position)

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, ci)) = call.last() {
            if index[v] == usize::MAX {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                let w = adj[v][ci];
                call.last_mut().expect("loop guard").1 += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() >= 2 {
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs.sort();
    sccs
}

/// Render the lock graph as a deterministic Graphviz DOT document.
pub fn lock_graph_dot(ws: &Workspace) -> String {
    let cycles = lock_cycles(&ws.edges);
    let in_cycle: HashSet<&String> = cycles.iter().flatten().collect();
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in ws.edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    // Locks that never appear on an edge still exist; include them so
    // the artifact is a complete inventory.
    let mut all_locks: BTreeSet<String> = nodes.iter().map(|s| s.to_string()).collect();
    for (st, fields) in &ws.lock_fields {
        for (f, k) in fields {
            if *k != LockKind::Condvar {
                all_locks.insert(format!("{st}.{f}"));
            }
        }
    }
    let mut out = String::new();
    out.push_str("// plf-lint --lock-graph: workspace lock-order graph.\n");
    out.push_str("// Edge A -> B: lock B acquired while A is held (first witness).\n");
    out.push_str("digraph lock_order {\n");
    out.push_str("  rankdir=LR;\n");
    out.push_str("  node [shape=box, fontname=\"monospace\", fontsize=10];\n");
    out.push_str("  edge [fontname=\"monospace\", fontsize=9];\n");
    for l in &all_locks {
        let kind = l
            .split_once('.')
            .and_then(|(s, f)| ws.lock_fields.get(s).and_then(|m| m.get(f)))
            .copied();
        let style = match kind {
            Some(LockKind::RwLock) => ", style=rounded",
            _ => "",
        };
        let color = if in_cycle.contains(l) {
            ", color=red"
        } else {
            ""
        };
        out.push_str(&format!("  \"{l}\" [label=\"{l}\"{style}{color}];\n"));
    }
    for ((a, b), w) in &ws.edges {
        let color = if in_cycle.contains(a) && in_cycle.contains(b) {
            " color=red,"
        } else {
            ""
        };
        out.push_str(&format!(
            "  \"{a}\" -> \"{b}\" [{color} label=\"{}:{} ({})\"];\n",
            w.path, w.line, w.in_fn
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let v: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        Workspace::build(&v)
    }

    const QUEUE: &str = "\
pub struct Q { state: Mutex<u32>, ready: Condvar }
pub struct J { inner: Mutex<u32> }
impl Q {
    pub fn both(&self, j: &J) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let h = j.inner.lock().unwrap_or_else(|p| p.into_inner());
    }
}
impl J {
    pub fn reverse(&self, q: &Q) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let h = q.state.lock().unwrap_or_else(|p| p.into_inner());
    }
}
";

    #[test]
    fn lock_edges_and_cycle_detection() {
        let w = ws(&[("crates/x/src/a.rs", QUEUE)]);
        assert!(w.edges.contains_key(&("Q.state".to_string(), "J.inner".to_string())));
        assert!(w.edges.contains_key(&("J.inner".to_string(), "Q.state".to_string())));
        let cycles = lock_cycles(&w.edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], ["J.inner", "Q.state"]);
    }

    #[test]
    fn temporary_guard_does_not_create_edge() {
        let src = "\
pub struct Q { state: Mutex<u32> }
pub struct J { inner: Mutex<u32> }
impl Q {
    pub fn seq(&self, j: &J) {
        let n = *self.state.lock().unwrap_or_else(|p| p.into_inner());
        let m = *j.inner.lock().unwrap_or_else(|p| p.into_inner());
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        assert!(w.edges.is_empty(), "edges: {:?}", w.edges.keys().collect::<Vec<_>>());
    }

    #[test]
    fn helper_named_lock_counts_as_acquisition() {
        // A guard-returning helper named `lock` must not be swallowed
        // by the direct `.lock()` scanner when it isn't a lock field.
        let src = "\
pub struct Q { state: Mutex<u32>, file: File }
impl Q {
    fn lock(&self) -> MutexGuard<'_, Lanes> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
    pub fn push(&self) {
        let mut lanes = self.lock();
        self.file.sync_all();
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        let id = *w
            .facts
            .keys()
            .find(|id| w.files[id.0].parsed.fns[id.1].name == "push")
            .expect("push fn");
        assert!(
            w.facts[&id].acquires.iter().any(|a| a.lock == "Q.state"),
            "push acquires: {:?}",
            w.facts[&id].acquires
        );
    }

    #[test]
    fn guard_moved_out_of_match_arm_stays_held() {
        let src = "\
pub struct Q { state: Mutex<u32> }
pub struct S { dedup: Mutex<u32>, q: Q }
impl Q {
    pub fn push(&self) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
    }
}
impl S {
    pub fn submit(&self, keyed: bool) {
        let dedup_guard = match keyed {
            true => {
                let guard = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
                Some(guard)
            }
            false => None,
        };
        self.q.push();
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        assert!(
            w.edges.contains_key(&("S.dedup".to_string(), "Q.state".to_string())),
            "edges: {:?}",
            w.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn value_copied_out_of_block_releases_guard() {
        let src = "\
pub struct Q { state: Mutex<u32> }
pub struct S { dedup: Mutex<u32>, q: Q }
impl Q {
    pub fn push(&self) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
    }
}
impl S {
    pub fn peek(&self) {
        let n = {
            let guard = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
            *guard
        };
        self.q.push();
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        assert!(
            w.edges.is_empty(),
            "edges: {:?}",
            w.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn drop_releases_guard_early() {
        let src = "\
pub struct Q { state: Mutex<u32> }
pub struct J { inner: Mutex<u32> }
impl Q {
    pub fn seq(&self, j: &J) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        drop(g);
        let h = j.inner.lock().unwrap_or_else(|p| p.into_inner());
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        assert!(w.edges.is_empty());
    }

    #[test]
    fn call_graph_propagates_lock_acquisition() {
        let src = "\
pub struct Q { state: Mutex<u32> }
pub struct J { inner: Mutex<u32> }
impl J {
    pub fn tick(&self) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
    }
}
impl Q {
    pub fn outer(&self, j: &J) {
        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        j.tick();
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        assert!(
            w.edges.contains_key(&("Q.state".to_string(), "J.inner".to_string())),
            "edges: {:?}",
            w.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition() {
        let src = "\
pub struct S { ledger: Mutex<u32> }
pub struct J { inner: Mutex<u32> }
impl S {
    fn lock_ledger(&self) -> MutexGuard<'_, u32> {
        self.ledger.lock().unwrap_or_else(|p| p.into_inner())
    }
    pub fn outer(&self, j: &J) {
        let g = self.lock_ledger();
        let h = j.inner.lock().unwrap_or_else(|p| p.into_inner());
    }
}
";
        let w = ws(&[("crates/x/src/a.rs", src)]);
        assert!(
            w.edges.contains_key(&("S.ledger".to_string(), "J.inner".to_string())),
            "edges: {:?}",
            w.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn dot_output_is_deterministic_and_marks_cycles() {
        let w = ws(&[("crates/x/src/a.rs", QUEUE)]);
        let dot = lock_graph_dot(&w);
        assert!(dot.contains("digraph lock_order"));
        assert!(dot.contains("\"Q.state\" -> \"J.inner\""));
        assert!(dot.contains("color=red"));
        assert_eq!(dot, lock_graph_dot(&ws(&[("crates/x/src/a.rs", QUEUE)])));
    }
}

//! CLI for the PLF workspace invariant checker.
//!
//! ```text
//! plf-lint                      # lint the enclosing workspace (L1–L8)
//! plf-lint --json               # machine-readable diagnostics
//! plf-lint --lock-graph        # workspace lock graph as Graphviz DOT
//! plf-lint --parity            # kernel-parity matrix
//! plf-lint --list-rules         # print the rule table
//! plf-lint [--all-rules] FILE…  # lint specific files (fixtures force
//!                               #   every lexical rule with --all-rules;
//!                               #   structural rules run over the set)
//! ```
//!
//! Exit status: 0 when clean, 1 when any rule fires, 2 on usage or I/O
//! errors. `--lock-graph` and `--parity` always exit 0: they report,
//! they don't gate.

use plf_lint::{
    diagnostics_json, find_workspace_root, graph, lint_files, lint_source, lint_workspace,
    lock_graph_for, parity, parity_report_for, Diagnostic, FileScope, Rule,
};
use std::path::Path;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut all_rules = false;
    let mut json = false;
    let mut lock_graph = false;
    let mut parity_matrix = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--all-rules" => all_rules = true,
            "--json" => json = true,
            "--lock-graph" => lock_graph = true,
            "--parity" => parity_matrix = true,
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.id(), r.name());
                }
                return 0;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: plf-lint [--list-rules] [--all-rules] [--json] \
                     [--lock-graph] [--parity] [FILE...]"
                );
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("plf-lint: unknown flag `{flag}`");
                return 2;
            }
            f => files.push(f.to_string()),
        }
    }

    if lock_graph || parity_matrix {
        return run_report(&files, lock_graph);
    }

    let diags: Vec<Diagnostic> = if files.is_empty() {
        let Some(root) = workspace_root() else {
            return 2;
        };
        match lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("plf-lint: {e}");
                return 2;
            }
        }
    } else {
        let Some(read) = read_files(&files) else {
            return 2;
        };
        let mut out = Vec::new();
        if all_rules {
            // Fixture mode: force every lexical rule per file, then run
            // the structural pass over the set as one workspace.
            for (rel, src) in &read {
                out.extend(lint_source(rel, src, FileScope::all_rules()));
            }
            let ws = graph::Workspace::build(&read);
            out.extend(plf_lint::lock_order::run(&ws));
            out.extend(plf_lint::unsafe_flow::run(&ws));
            out.extend(parity::run(&ws));
            out.extend(plf_lint::reach::run(&ws));
            out.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
        } else {
            out = lint_files(&read);
        }
        out
    };

    if json {
        print!("{}", diagnostics_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        eprintln!("plf-lint: clean");
        0
    } else {
        eprintln!("plf-lint: {} violation(s)", diags.len());
        1
    }
}

/// `--lock-graph` / `--parity` report mode.
fn run_report(files: &[String], want_lock_graph: bool) -> i32 {
    if files.is_empty() {
        let Some(root) = workspace_root() else {
            return 2;
        };
        let text = if want_lock_graph {
            lock_graph_for(&root)
        } else {
            parity_report_for(&root)
        };
        match text {
            Ok(t) => {
                print!("{t}");
                0
            }
            Err(e) => {
                eprintln!("plf-lint: {e}");
                2
            }
        }
    } else {
        let Some(read) = read_files(files) else {
            return 2;
        };
        let ws = graph::Workspace::build(&read);
        if want_lock_graph {
            print!("{}", graph::lock_graph_dot(&ws));
        } else {
            print!("{}", parity::render(&ws));
        }
        0
    }
}

fn workspace_root() -> Option<std::path::PathBuf> {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("plf-lint: cannot determine current directory: {e}");
            return None;
        }
    };
    let root = find_workspace_root(&cwd);
    if root.is_none() {
        eprintln!("plf-lint: no workspace root found above {}", cwd.display());
    }
    root
}

fn read_files(files: &[String]) -> Option<Vec<(String, String)>> {
    let mut read = Vec::new();
    for f in files {
        match std::fs::read_to_string(Path::new(f)) {
            Ok(s) => read.push((f.clone(), s)),
            Err(e) => {
                eprintln!("plf-lint: {f}: {e}");
                return None;
            }
        }
    }
    Some(read)
}

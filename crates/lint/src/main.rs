//! CLI for the PLF workspace invariant checker.
//!
//! ```text
//! plf-lint                      # lint the enclosing workspace
//! plf-lint --list-rules         # print the rule table
//! plf-lint [--all-rules] FILE…  # lint specific files (fixtures force
//!                               #   every rule with --all-rules)
//! ```
//!
//! Exit status: 0 when clean, 1 when any rule fires, 2 on usage or I/O
//! errors.

use plf_lint::{find_workspace_root, lint_source, lint_workspace, Diagnostic, FileScope, Rule};
use std::path::Path;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut all_rules = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--all-rules" => all_rules = true,
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.id(), r.name());
                }
                return 0;
            }
            "--help" | "-h" => {
                eprintln!("usage: plf-lint [--list-rules] [--all-rules] [FILE...]");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("plf-lint: unknown flag `{flag}`");
                return 2;
            }
            f => files.push(f.to_string()),
        }
    }

    let diags: Vec<Diagnostic> = if files.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("plf-lint: cannot determine current directory: {e}");
                return 2;
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("plf-lint: no workspace root found above {}", cwd.display());
            return 2;
        };
        match lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("plf-lint: {e}");
                return 2;
            }
        }
    } else {
        let mut out = Vec::new();
        for f in &files {
            let src = match std::fs::read_to_string(Path::new(f)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("plf-lint: {f}: {e}");
                    return 2;
                }
            };
            let scope = if all_rules {
                FileScope::all_rules()
            } else {
                FileScope::for_path(f)
            };
            out.extend(lint_source(f, &src, scope));
        }
        out
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("plf-lint: clean");
        0
    } else {
        eprintln!("plf-lint: {} violation(s)", diags.len());
        1
    }
}

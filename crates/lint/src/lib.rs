//! # plf-lint — the workspace invariant checker
//!
//! The paper's performance model rests on hard invariants: 128-byte
//! aligned likelihood vectors, ≤16 KB DMA commands, a 256 KB Local
//! Store budget, data-race-free partitioning of the per-pattern loop.
//! This crate makes them machine-checked: a dependency-free static
//! analysis (the offline build has no `syn`; see [`scan`]) that walks
//! every workspace crate and enforces the PLF rule set described in
//! [`rules`] and DESIGN.md §10/§15:
//!
//! * **L1–L4** — lexical rules over one file at a time (SAFETY
//!   comments, hot-path panics, magic numbers, atomic orderings);
//! * **L5–L8** — structural rules over the whole workspace, built on a
//!   small item-level parser ([`parse`]) and a call/lock graph
//!   ([`graph`]): lock-order deadlock analysis, unsafe raw-pointer
//!   dataflow, the kernel-parity matrix, and service-path error
//!   hygiene by call-graph reachability.
//!
//! Run it with `cargo run -p plf-lint` (from anywhere inside the
//! workspace); it exits non-zero iff any rule fires. `scripts/verify.sh`
//! runs it on every verify, so a new magic `16384`, a SAFETY-less
//! `unsafe` block, or a lock-order inversion fails the gate.
//! `--json` emits machine-readable diagnostics, `--lock-graph` the
//! workspace lock graph as DOT, `--parity` the kernel-parity matrix.

#![warn(missing_docs)]

pub mod graph;
pub mod lock_order;
pub mod parity;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod scan;
pub mod unsafe_flow;

pub use rules::{lint_scanned, Diagnostic, FileScope, Rule};

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Lint one source string as workspace-relative path `rel` with the
/// lexical rules (L1–L4) only.
///
/// `scope` is usually [`FileScope::for_path`]`(rel)`; fixture tests use
/// [`FileScope::all_rules`]. The structural rules need the whole file
/// set — use [`lint_files`] for those.
pub fn lint_source(rel: &str, src: &str, scope: FileScope) -> Vec<Diagnostic> {
    lint_scanned(rel, &scan::scan(src), scope)
}

/// Lint a set of `(workspace-relative path, source)` files with every
/// rule: the lexical pass per file plus the structural pass (L5–L8)
/// over the set as one workspace.
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (rel, src) in files {
        diags.extend(lint_source(rel, src, FileScope::for_path(rel)));
    }
    let ws = graph::Workspace::build(files);
    let mut structural = Vec::new();
    structural.extend(lock_order::run(&ws));
    structural.extend(unsafe_flow::run(&ws));
    structural.extend(parity::run(&ws));
    structural.extend(reach::run(&ws));

    // L8 subsumes L2 where both apply: keep the L2 finding (narrower
    // message, stable baseline) and drop the duplicate L8 one.
    let l2_lines: HashSet<(&str, usize)> = diags
        .iter()
        .filter(|d| d.rule == Rule::HotPathPanic)
        .map(|d| (d.path.as_str(), d.line))
        .collect();
    structural.retain(|d| {
        !(d.rule == Rule::ServiceReach && l2_lines.contains(&(d.path.as_str(), d.line)))
    });

    // Suppression for structural findings: line-level allow (as for
    // L1–L4) plus fn-level allow on the enclosing fn declaration.
    let file_idx: std::collections::HashMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();
    structural.retain(|d| {
        let Some(&fi) = file_idx.get(d.path.as_str()) else {
            return true;
        };
        let scanned = &ws.files[fi].scanned;
        if d.line >= 1 && d.line <= scanned.comments.len() && rules::suppressed(scanned, d.line - 1, d.rule)
        {
            return false;
        }
        if let Some(f) = ws.enclosing_fn(fi, d.line) {
            if f.line >= 1
                && f.line <= scanned.comments.len()
                && rules::suppressed(scanned, f.line - 1, d.rule)
            {
                return false;
            }
        }
        true
    });

    diags.extend(structural);
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule.id()).cmp(&(&b.path, b.line, b.col, b.rule.id()))
    });
    diags.dedup();
    diags
}

/// Read every lintable file under `root` into memory.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for (rel, abs) in collect_workspace_files(root)? {
        out.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(out)
}

/// The workspace lock graph as a Graphviz DOT document.
pub fn lock_graph_for(root: &Path) -> std::io::Result<String> {
    let files = load_workspace(root)?;
    let ws = graph::Workspace::build(&files);
    Ok(graph::lock_graph_dot(&ws))
}

/// The kernel-parity matrix as aligned text.
pub fn parity_report_for(root: &Path) -> std::io::Result<String> {
    let files = load_workspace(root)?;
    let ws = graph::Workspace::build(&files);
    Ok(parity::render(&ws))
}

/// Render diagnostics as a JSON document (`{"diagnostics":[…]}`).
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
    format!("{{\"diagnostics\":[{}]}}\n", items.join(","))
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Should `rel` (workspace-relative, `/`-separated) be linted at all?
///
/// Vendored third-party code, build artifacts, and plf-lint's own
/// known-bad fixtures are excluded.
pub fn in_lint_scope(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.contains("/target/") {
        return false;
    }
    if rel.contains("lint_fixtures") {
        return false;
    }
    rel.starts_with("crates/")
        || rel.starts_with("src/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
}

/// Collect every lintable `.rs` file under `root`, returned as
/// (workspace-relative path, absolute path), sorted for stable output.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if in_lint_scope(&rel) {
                out.push((rel, path));
            }
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root` with every rule (L1–L8).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = load_workspace(root)?;
    Ok(lint_files(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_filter() {
        assert!(in_lint_scope("crates/phylo/src/clv.rs"));
        assert!(in_lint_scope("src/lib.rs"));
        assert!(in_lint_scope("tests/invariants.rs"));
        assert!(!in_lint_scope("vendor/rayon/src/lib.rs"));
        assert!(!in_lint_scope("crates/lint/tests/lint_fixtures/l3_magic.rs"));
        assert!(!in_lint_scope("target/debug/build/foo.rs"));
        assert!(!in_lint_scope("README.md"));
    }

    #[test]
    fn workspace_root_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/phylo/Cargo.toml").is_file());
    }

    #[test]
    fn real_workspace_is_clean() {
        // The acceptance invariant: the shipped tree passes its own
        // linter. Any new magic number / bare unsafe fails this test.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let diags = lint_workspace(&root).expect("lint run");
        assert!(
            diags.is_empty(),
            "workspace must be plf-lint clean:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

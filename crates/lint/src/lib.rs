//! # plf-lint — the workspace invariant checker
//!
//! The paper's performance model rests on hard invariants: 128-byte
//! aligned likelihood vectors, ≤16 KB DMA commands, a 256 KB Local
//! Store budget, data-race-free partitioning of the per-pattern loop.
//! This crate makes them machine-checked: a dependency-free static
//! analysis (the offline build has no `syn`; see [`scan`]) that walks
//! every workspace crate and enforces the PLF rule set L1–L4 described
//! in [`rules`] and DESIGN.md §10.
//!
//! Run it with `cargo run -p plf-lint` (from anywhere inside the
//! workspace); it exits non-zero iff any rule fires. `scripts/verify.sh`
//! runs it on every verify, so a new magic `16384` or a SAFETY-less
//! `unsafe` block fails the gate.

#![warn(missing_docs)]

pub mod rules;
pub mod scan;

pub use rules::{lint_scanned, Diagnostic, FileScope, Rule};

use std::path::{Path, PathBuf};

/// Lint one source string as workspace-relative path `rel`.
///
/// `scope` is usually [`FileScope::for_path`]`(rel)`; fixture tests use
/// [`FileScope::all_rules`].
pub fn lint_source(rel: &str, src: &str, scope: FileScope) -> Vec<Diagnostic> {
    lint_scanned(rel, &scan::scan(src), scope)
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Should `rel` (workspace-relative, `/`-separated) be linted at all?
///
/// Vendored third-party code, build artifacts, and plf-lint's own
/// known-bad fixtures are excluded.
pub fn in_lint_scope(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.contains("/target/") {
        return false;
    }
    if rel.contains("lint_fixtures") {
        return false;
    }
    rel.starts_with("crates/")
        || rel.starts_with("src/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
}

/// Collect every lintable `.rs` file under `root`, returned as
/// (workspace-relative path, absolute path), sorted for stable output.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if in_lint_scope(&rel) {
                out.push((rel, path));
            }
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for (rel, abs) in collect_workspace_files(root)? {
        let src = std::fs::read_to_string(&abs)?;
        diags.extend(lint_source(&rel, &src, FileScope::for_path(&rel)));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_filter() {
        assert!(in_lint_scope("crates/phylo/src/clv.rs"));
        assert!(in_lint_scope("src/lib.rs"));
        assert!(in_lint_scope("tests/invariants.rs"));
        assert!(!in_lint_scope("vendor/rayon/src/lib.rs"));
        assert!(!in_lint_scope("crates/lint/tests/lint_fixtures/l3_magic.rs"));
        assert!(!in_lint_scope("target/debug/build/foo.rs"));
        assert!(!in_lint_scope("README.md"));
    }

    #[test]
    fn workspace_root_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/phylo/Cargo.toml").is_file());
    }

    #[test]
    fn real_workspace_is_clean() {
        // The acceptance invariant: the shipped tree passes its own
        // linter. Any new magic number / bare unsafe fails this test.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let diags = lint_workspace(&root).expect("lint run");
        assert!(
            diags.is_empty(),
            "workspace must be plf-lint clean:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

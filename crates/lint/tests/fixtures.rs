//! Fixture-based acceptance tests for the plf-lint rule set.
//!
//! Each file under `tests/lint_fixtures/` is a known-bad (or
//! known-good) snippet that is read, never compiled. Every rule has a
//! fixture that must trip it, the clean fixture must pass all rules,
//! and the shipped binary must agree with the library (non-zero exit
//! on violations, zero on clean input and on the real workspace).

use plf_lint::{lint_source, Diagnostic, FileScope, Rule};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    (path.to_string_lossy().into_owned(), src)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let (path, src) = fixture(name);
    lint_source(&path, &src, FileScope::all_rules())
}

fn rule_ids(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule.id()).collect()
}

/// Lint a fixture as if it lived at the workspace-relative path `rel`,
/// with every rule — the lexical pass plus the structural (L5–L8) pass
/// over the single-file workspace. Structural rules skip relaxed
/// (test/bench) paths, so `rel` must be a first-party `src/` location.
fn lint_structural(name: &str, rel: &str) -> Vec<Diagnostic> {
    let (_, src) = fixture(name);
    plf_lint::lint_files(&[(rel.to_string(), src)])
}

#[test]
fn l1_fixture_trips_only_safety_comment() {
    let diags = lint_fixture("l1_missing_safety.rs");
    assert_eq!(rule_ids(&diags), ["L1", "L1", "L1"], "{diags:?}");
}

#[test]
fn l2_fixture_trips_only_hot_path_panic() {
    let diags = lint_fixture("l2_hot_panic.rs");
    assert_eq!(rule_ids(&diags), ["L2", "L2", "L2", "L2"], "{diags:?}");
}

#[test]
fn l2_applies_to_plfd_service_hot_path() {
    // Lint the fixture under the scope derived from a real plfd
    // data-path location, proving the path gating (not --all-rules)
    // is what trips L2 for the new service crate.
    let (path, src) = fixture("l2_plfd_hot_panic.rs");
    let scope = FileScope::for_path("crates/plfd/src/queue.rs");
    let diags = lint_source(&path, &src, scope);
    assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{diags:?}");
    // The same source under a non-hot plfd path trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/plfd/src/loadgen.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l2_applies_to_self_healing_layer() {
    // The watchdog/breaker (health.rs) and the chaos driver (chaos.rs)
    // are the machinery that absorbs panics — a panic inside them is a
    // hot-path violation, caught by path gating alone.
    let (path, src) = fixture("l2_health_hot_panic.rs");
    for hot in ["crates/plfd/src/health.rs", "crates/plfd/src/chaos.rs"] {
        let diags = lint_source(&path, &src, FileScope::for_path(hot));
        assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{hot}: {diags:?}");
    }
    // The same source outside the self-healing scope trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/plfd/src/loadgen.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l2_applies_to_durability_layer() {
    // The write-ahead journal (journal.rs) and crash recovery
    // (recovery.rs) run inside every terminal publish and on the
    // restart path — a panic there loses acknowledged jobs, caught by
    // path gating alone.
    let (path, src) = fixture("l2_journal_hot_panic.rs");
    for hot in ["crates/plfd/src/journal.rs", "crates/plfd/src/recovery.rs"] {
        let diags = lint_source(&path, &src, FileScope::for_path(hot));
        assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{hot}: {diags:?}");
    }
    // The same source outside the durability scope trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/plfd/src/loadgen.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l2_applies_to_fusion_and_cache_layer() {
    // The fused cross-job driver and the CLV reuse cache run inside
    // every fused batch evaluation — a panic there strands the whole
    // batch. Path gating alone must trip L2.
    let (path, src) = fixture("l2_fused_hot_panic.rs");
    for hot in ["crates/phylo/src/fused.rs", "crates/phylo/src/clv_cache.rs"] {
        let diags = lint_source(&path, &src, FileScope::for_path(hot));
        assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{hot}: {diags:?}");
    }
    // The same source outside the fusion scope trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/phylo/src/model.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l3_fixture_trips_only_magic_number() {
    let diags = lint_fixture("l3_magic.rs");
    assert_eq!(rule_ids(&diags), ["L3", "L3", "L3", "L3"], "{diags:?}");
}

#[test]
fn l4_fixture_trips_only_atomic_ordering() {
    let diags = lint_fixture("l4_ordering.rs");
    assert_eq!(rule_ids(&diags), ["L4"], "{diags:?}");
    assert!(diags[0].message.contains("SeqCst"), "{diags:?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --------------------------------------------- structural rules L5–L8

#[test]
fn l5_fixture_trips_cycle_and_blocking() {
    let diags = lint_structural("l5_deadlock.rs", "crates/plfd/src/fixture.rs");
    assert!(
        diags.iter().all(|d| d.rule == Rule::LockOrder),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("lock-order cycle")),
        "cycle reported: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("blocking fsync")),
        "fsync-under-lock reported: {diags:?}"
    );
}

#[test]
fn l5_allow_fixture_is_suppressed() {
    let diags = lint_structural("l5_allow.rs", "crates/plfd/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l6_fixture_trips_all_three_escapes() {
    let diags = lint_structural("l6_sendptr.rs", "crates/multicore/src/fixture.rs");
    assert_eq!(rule_ids(&diags), ["L6", "L6", "L6"], "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("disjointness")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("move` closure")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("escapes the block")),
        "{diags:?}"
    );
}

#[test]
fn l6_allow_fixture_is_suppressed() {
    let diags = lint_structural("l6_allow.rs", "crates/multicore/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l7_fixture_trips_partial_fused_and_coverage_hole() {
    let diags = lint_structural("l7_parity_hole.rs", "crates/phylo/src/fixture.rs");
    assert_eq!(rule_ids(&diags), ["L7", "L7"], "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("fused surface")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("no bit-parity coverage")),
        "{diags:?}"
    );
}

#[test]
fn l7_allow_fixture_is_suppressed() {
    let diags = lint_structural("l7_allow.rs", "crates/phylo/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l8_fixture_trips_reachable_unwrap_and_indexing() {
    let diags = lint_structural("l8_reachable_unwrap.rs", "crates/plfd/src/fixture.rs");
    assert_eq!(rule_ids(&diags), ["L8", "L8"], "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`unwrap`") && d.message.contains("PlfService::submit")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("slice indexing")),
        "{diags:?}"
    );
}

#[test]
fn l8_allow_fixture_is_suppressed() {
    let diags = lint_structural("l8_allow.rs", "crates/plfd/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn structural_clean_fixture_passes_every_rule() {
    // Negative cases for L5–L8 in one workspace: consistent lock
    // order with guards dropped before blocking, a SendPtr with a
    // written disjointness argument, a registry-covered backend, and a
    // panic-free service path.
    let diags = lint_structural("structural_clean.rs", "crates/plfd/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lex_corpus_fixture_is_clean_under_every_rule() {
    // The corpus hides rule-tripping text (unsafe, panic!, 128, 16384,
    // 262144) inside nested block comments, escaped-newline strings,
    // raw/byte strings, and char literals. Any scanner leak from the
    // comment/literal streams into the code stream trips L1–L4 here.
    let diags = lint_fixture("lex_corpus.rs");
    assert!(diags.is_empty(), "{diags:?}");
    let structural = lint_structural("lex_corpus.rs", "crates/phylo/src/fixture.rs");
    assert!(structural.is_empty(), "{structural:?}");
}

#[test]
fn lex_corpus_line_numbering_survives_continuations() {
    // Escaped newlines and multi-line block comments must not shift
    // line numbering: the scanner's per-line streams stay 1:1 with the
    // source.
    let (_, src) = fixture("lex_corpus.rs");
    let scanned = plf_lint::scan::scan(&src);
    assert_eq!(
        scanned.code.len(),
        src.lines().count() + 1,
        "one cleaned line per source line (plus trailing flush)"
    );
    // The nested block-comment line is fully blanked in the code
    // stream but preserved in the comment stream.
    let (idx, _) = src
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("nested block comment"))
        .expect("corpus keeps the nested-comment line");
    assert!(scanned.code[idx].trim().is_empty(), "{:?}", scanned.code[idx]);
    assert!(
        scanned.comments[idx].contains("nested block comment"),
        "{:?}",
        scanned.comments[idx]
    );
}

#[test]
fn diagnostics_carry_file_line_and_rule_id() {
    let diags = lint_fixture("l3_magic.rs");
    let rendered = diags[0].to_string();
    assert!(rendered.contains("l3_magic.rs:"), "{rendered}");
    assert!(rendered.contains("[L3/magic-number]"), "{rendered}");
    // Line 5 holds the bare `128`.
    assert_eq!(diags[0].line, 5, "{diags:?}");
}

// ------------------------------------------------------------ binary

fn run_binary(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_plf-lint"))
        .args(args)
        .output()
        .expect("plf-lint binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    for name in [
        "l1_missing_safety.rs",
        "l2_hot_panic.rs",
        "l2_health_hot_panic.rs",
        "l2_journal_hot_panic.rs",
        "l2_fused_hot_panic.rs",
        "l3_magic.rs",
        "l4_ordering.rs",
    ] {
        let (path, _) = fixture(name);
        let (code, stdout) = run_binary(&["--all-rules", &path]);
        assert_eq!(code, 1, "{name} must fail: {stdout}");
        assert!(stdout.contains(name), "{name} diagnostics name the file");
    }
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let (path, _) = fixture("clean.rs");
    let (code, stdout) = run_binary(&["--all-rules", &path]);
    assert_eq!(code, 0, "clean fixture must pass: {stdout}");
}

#[test]
fn binary_exits_zero_on_real_workspace() {
    let root = plf_lint::find_workspace_root(PathBuf::from(env!("CARGO_MANIFEST_DIR")).as_path())
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_plf-lint"))
        .current_dir(&root)
        .output()
        .expect("plf-lint binary runs");
    assert!(
        out.status.success(),
        "workspace must be clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_lists_rules() {
    let (code, stdout) = run_binary(&["--list-rules"]);
    assert_eq!(code, 0);
    for r in Rule::ALL {
        assert!(stdout.contains(r.id()) && stdout.contains(r.name()), "{stdout}");
    }
}

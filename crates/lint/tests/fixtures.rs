//! Fixture-based acceptance tests for the plf-lint rule set.
//!
//! Each file under `tests/lint_fixtures/` is a known-bad (or
//! known-good) snippet that is read, never compiled. Every rule has a
//! fixture that must trip it, the clean fixture must pass all rules,
//! and the shipped binary must agree with the library (non-zero exit
//! on violations, zero on clean input and on the real workspace).

use plf_lint::{lint_source, Diagnostic, FileScope, Rule};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    (path.to_string_lossy().into_owned(), src)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let (path, src) = fixture(name);
    lint_source(&path, &src, FileScope::all_rules())
}

fn rule_ids(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule.id()).collect()
}

#[test]
fn l1_fixture_trips_only_safety_comment() {
    let diags = lint_fixture("l1_missing_safety.rs");
    assert_eq!(rule_ids(&diags), ["L1", "L1", "L1"], "{diags:?}");
}

#[test]
fn l2_fixture_trips_only_hot_path_panic() {
    let diags = lint_fixture("l2_hot_panic.rs");
    assert_eq!(rule_ids(&diags), ["L2", "L2", "L2", "L2"], "{diags:?}");
}

#[test]
fn l2_applies_to_plfd_service_hot_path() {
    // Lint the fixture under the scope derived from a real plfd
    // data-path location, proving the path gating (not --all-rules)
    // is what trips L2 for the new service crate.
    let (path, src) = fixture("l2_plfd_hot_panic.rs");
    let scope = FileScope::for_path("crates/plfd/src/queue.rs");
    let diags = lint_source(&path, &src, scope);
    assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{diags:?}");
    // The same source under a non-hot plfd path trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/plfd/src/loadgen.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l2_applies_to_self_healing_layer() {
    // The watchdog/breaker (health.rs) and the chaos driver (chaos.rs)
    // are the machinery that absorbs panics — a panic inside them is a
    // hot-path violation, caught by path gating alone.
    let (path, src) = fixture("l2_health_hot_panic.rs");
    for hot in ["crates/plfd/src/health.rs", "crates/plfd/src/chaos.rs"] {
        let diags = lint_source(&path, &src, FileScope::for_path(hot));
        assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{hot}: {diags:?}");
    }
    // The same source outside the self-healing scope trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/plfd/src/loadgen.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l2_applies_to_durability_layer() {
    // The write-ahead journal (journal.rs) and crash recovery
    // (recovery.rs) run inside every terminal publish and on the
    // restart path — a panic there loses acknowledged jobs, caught by
    // path gating alone.
    let (path, src) = fixture("l2_journal_hot_panic.rs");
    for hot in ["crates/plfd/src/journal.rs", "crates/plfd/src/recovery.rs"] {
        let diags = lint_source(&path, &src, FileScope::for_path(hot));
        assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{hot}: {diags:?}");
    }
    // The same source outside the durability scope trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/plfd/src/loadgen.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l2_applies_to_fusion_and_cache_layer() {
    // The fused cross-job driver and the CLV reuse cache run inside
    // every fused batch evaluation — a panic there strands the whole
    // batch. Path gating alone must trip L2.
    let (path, src) = fixture("l2_fused_hot_panic.rs");
    for hot in ["crates/phylo/src/fused.rs", "crates/phylo/src/clv_cache.rs"] {
        let diags = lint_source(&path, &src, FileScope::for_path(hot));
        assert_eq!(rule_ids(&diags), ["L2", "L2", "L2"], "{hot}: {diags:?}");
    }
    // The same source outside the fusion scope trips nothing.
    let cold = lint_source(&path, &src, FileScope::for_path("crates/phylo/src/model.rs"));
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn l3_fixture_trips_only_magic_number() {
    let diags = lint_fixture("l3_magic.rs");
    assert_eq!(rule_ids(&diags), ["L3", "L3", "L3", "L3"], "{diags:?}");
}

#[test]
fn l4_fixture_trips_only_atomic_ordering() {
    let diags = lint_fixture("l4_ordering.rs");
    assert_eq!(rule_ids(&diags), ["L4"], "{diags:?}");
    assert!(diags[0].message.contains("SeqCst"), "{diags:?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn diagnostics_carry_file_line_and_rule_id() {
    let diags = lint_fixture("l3_magic.rs");
    let rendered = diags[0].to_string();
    assert!(rendered.contains("l3_magic.rs:"), "{rendered}");
    assert!(rendered.contains("[L3/magic-number]"), "{rendered}");
    // Line 5 holds the bare `128`.
    assert_eq!(diags[0].line, 5, "{diags:?}");
}

// ------------------------------------------------------------ binary

fn run_binary(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_plf-lint"))
        .args(args)
        .output()
        .expect("plf-lint binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    for name in [
        "l1_missing_safety.rs",
        "l2_hot_panic.rs",
        "l2_health_hot_panic.rs",
        "l2_journal_hot_panic.rs",
        "l2_fused_hot_panic.rs",
        "l3_magic.rs",
        "l4_ordering.rs",
    ] {
        let (path, _) = fixture(name);
        let (code, stdout) = run_binary(&["--all-rules", &path]);
        assert_eq!(code, 1, "{name} must fail: {stdout}");
        assert!(stdout.contains(name), "{name} diagnostics name the file");
    }
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let (path, _) = fixture("clean.rs");
    let (code, stdout) = run_binary(&["--all-rules", &path]);
    assert_eq!(code, 0, "clean fixture must pass: {stdout}");
}

#[test]
fn binary_exits_zero_on_real_workspace() {
    let root = plf_lint::find_workspace_root(PathBuf::from(env!("CARGO_MANIFEST_DIR")).as_path())
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_plf-lint"))
        .current_dir(&root)
        .output()
        .expect("plf-lint binary runs");
    assert!(
        out.status.success(),
        "workspace must be clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_lists_rules() {
    let (code, stdout) = run_binary(&["--list-rules"]);
    assert_eq!(code, 0);
    for r in Rule::ALL {
        assert!(stdout.contains(r.id()) && stdout.contains(r.name()), "{stdout}");
    }
}

//! Structural-clean fixture — negative cases for every structural
//! rule: consistent lock order with guards released before blocking
//! (L5), a `SendPtr` with a written disjointness argument (L6), a
//! backend covered by the `all_backends` registry (L7), and a service
//! path that surfaces misses as values instead of panicking (L8).

pub struct Queue {
    state: Mutex<u32>,
}

pub struct Journal {
    inner: Mutex<u32>,
    file: File,
}

pub struct PlfService {
    queue: Queue,
}

impl PlfService {
    pub fn submit(&self, journal: &Journal) -> u32 {
        self.queue.pop(journal)
    }
}

impl Queue {
    pub fn pop(&self, journal: &Journal) -> u32 {
        let lanes = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let expired = *lanes;
        drop(lanes);
        journal.append(expired);
        expired
    }
}

impl Journal {
    pub fn append(&self, n: u32) {
        let log = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let _ = (*log, n);
        drop(log);
        let _ = self.file.sync_data();
    }
}

// SAFETY: each spawned worker writes a disjoint chunk of `out`, so the
// shared pointer never aliases across threads.
pub fn fan_out(out: &mut [f32]) {
    let shared = SendPtr(out.as_mut_ptr());
    let _ = shared;
}

pub trait PlfBackend {
    fn cond_like_down(&mut self) -> Result<(), PlfError>;
    fn cond_like_root(&mut self) -> Result<(), PlfError>;
    fn cond_like_scaler(&mut self) -> Result<(), PlfError>;
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> {
        self.cond_like_down()
    }
    fn cond_like_root_fused(&mut self) -> Result<(), PlfError> {
        self.cond_like_root()
    }
}

pub struct ScalarFixture;

impl PlfBackend for ScalarFixture {
    fn cond_like_down(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_root(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
}

pub fn all_backends() -> Vec<Box<dyn PlfBackend>> {
    vec![Box::new(ScalarFixture)]
}

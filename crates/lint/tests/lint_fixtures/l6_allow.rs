//! L6 suppression fixture — the same escapes as `l6_sendptr.rs`, each
//! silenced by a fn-level `allow(L6)` on the declaration.

// plf-lint: allow(L6)
pub fn fan_out(out: &mut [f32]) {
    let shared = SendPtr(out.as_mut_ptr());
    let _ = shared;
}

// plf-lint: allow(L6)
pub fn capture(out: &mut [f32]) {
    let base = out.as_mut_ptr();
    std::thread::spawn(move || {
        let _ = base;
    });
}

// plf-lint: allow(L6)
pub fn outlive() -> *const f32 {
    let p;
    {
        let buf = vec![0.0f32; 4];
        p = buf.as_ptr();
    }
    p
}

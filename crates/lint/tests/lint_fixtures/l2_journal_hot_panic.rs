//! Known-bad fixture: panicking calls in the durability layer.
//! Linted with the scope derived from `crates/plfd/src/journal.rs` and
//! `crates/plfd/src/recovery.rs`, proving the L2 path gating covers
//! the write-ahead journal and crash recovery — a panic there turns a
//! recoverable crash into lost acknowledged jobs. Never compiled.

fn append_record(state: &std::sync::Mutex<Vec<u8>>, frame: &[u8]) {
    // BAD: a poisoned lock must be absorbed with into_inner; the
    // journal append runs inside every worker's publish path.
    let mut guard = state.lock().unwrap();
    guard.extend_from_slice(frame);
}

fn decode_frame(buf: &[u8]) -> u32 {
    // BAD: a torn tail is expected after a crash — truncate and count,
    // never panic during the recovery scan.
    let header: [u8; 4] = buf[..4].try_into().expect("frame header");
    u32::from_le_bytes(header)
}

fn replay_deadline(nanos: Option<u64>) -> u64 {
    // BAD: a replayed record without a deadline is a normal case.
    nanos.expect("journaled deadline")
}

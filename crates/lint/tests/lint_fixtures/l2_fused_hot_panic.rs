//! Known-bad fixture: panicking calls in the fusion/CLV-cache layer.
//! Linted with the scope derived from `crates/phylo/src/fused.rs` and
//! `crates/phylo/src/clv_cache.rs`, proving the L2 path gating covers
//! the fused batch driver and the reuse cache — a panic there takes
//! down every job of the fused batch, not just one. Never compiled.

fn fingerprint_of(fps: &[Option<u64>], node: usize) -> u64 {
    // BAD: a missing fingerprint is a driver invariant error, not a
    // panic.
    fps[node].unwrap()
}

fn cached_entry(entries: &std::collections::HashMap<u64, Vec<f32>>, key: u64) -> &Vec<f32> {
    // BAD: a cache miss is the common case, not a programmer error.
    entries.get(&key).expect("entry present")
}

fn demux_result(results: &[f64], job: usize) -> f64 {
    if job >= results.len() {
        // BAD: a short result vector must surface as a backend error.
        panic!("fused result vector too short");
    }
    results[job]
}

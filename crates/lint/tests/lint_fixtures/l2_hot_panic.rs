// Known-bad fixture for L2/hot-path-panic: panic-capable constructs in
// what the lint treats as a kernel hot-path module. Never compiled.

pub fn kernel(v: &[f32]) -> f32 {
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty");
    if !first.is_finite() {
        panic!("non-finite likelihood");
    }
    if v.len() == 3 {
        todo!()
    }
    first + last
}

// Known-good fixture: passes every rule even with --all-rules.
// Never compiled — read by tests/fixtures.rs.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct RawBox(*mut u8);

// SAFETY: RawBox uniquely owns its allocation; the pointer is never
// aliased, so sending it to another thread is as sound as sending a
// Box<u8>.
unsafe impl Send for RawBox {}

pub fn first(v: &[f32]) -> Option<f32> {
    v.first().copied()
}

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

// "unsafe 128 16384" inside strings or comments must not trip anything.
pub fn describe() -> &'static str {
    "unsafe 128 16384 Ordering::SeqCst panic!"
}

pub fn regs_per_sm() -> usize {
    16384 // plf-lint: allow(L3) — GT200 register-file size, not a DMA bound
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_literals_and_unwrap() {
        let x: Option<usize> = Some(16 * 1024);
        assert_eq!(x.unwrap(), 16384);
    }
}

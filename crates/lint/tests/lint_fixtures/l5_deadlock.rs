//! L5 fixture — a lock-order cycle (`Queue.state` ↔ `Journal.inner`)
//! plus a lock held across an fsync. Linted as a synthetic
//! first-party path; never compiled.

pub struct Queue {
    state: Mutex<u32>,
}

pub struct Journal {
    inner: Mutex<u32>,
    file: File,
}

impl Queue {
    pub fn publish(&self, journal: &Journal) {
        let lanes = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let log = journal.inner.lock().unwrap_or_else(|p| p.into_inner());
        let _ = (lanes, log);
    }
}

impl Journal {
    pub fn compact(&self, queue: &Queue) {
        let log = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let lanes = queue.state.lock().unwrap_or_else(|p| p.into_inner());
        let _ = (log, lanes);
    }

    pub fn append(&self) {
        let log = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let _ = self.file.sync_data();
        drop(log);
    }
}

//! L7 fixture — a backend that overrides part of the fused surface and
//! appears in no parity suite or registry. Linted as a synthetic
//! first-party path; never compiled.

pub trait PlfBackend {
    fn cond_like_down(&mut self) -> Result<(), PlfError>;
    fn cond_like_root(&mut self) -> Result<(), PlfError>;
    fn cond_like_scaler(&mut self) -> Result<(), PlfError>;
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> {
        self.cond_like_down()
    }
    fn cond_like_root_fused(&mut self) -> Result<(), PlfError> {
        self.cond_like_root()
    }
}

pub struct OrphanBackend;

impl PlfBackend for OrphanBackend {
    fn cond_like_down(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_root(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
}

//! Known-bad fixture: panicking calls in the self-healing layer.
//! Linted with the scope derived from `crates/plfd/src/health.rs` and
//! `crates/plfd/src/chaos.rs`, proving the L2 path gating covers the
//! breaker/watchdog/chaos code — a panic there would take down the
//! very machinery that is supposed to absorb panics. Never compiled.

fn breaker_state(states: &std::sync::Mutex<Vec<u8>>) -> u8 {
    // BAD: a poisoned lock must be absorbed with into_inner.
    let guard = states.lock().unwrap();
    // BAD: an unknown worker index is a caller error, not a panic.
    *guard.first().expect("at least one breaker")
}

fn probe_outcome(lnl: f64) -> bool {
    if !lnl.is_finite() {
        // BAD: a failed probe is a normal state machine edge.
        panic!("probe returned non-finite lnL");
    }
    true
}

//! Lexer-audit corpus — every construct here would trip a rule if the
//! scanner leaked comment or literal text into the code stream:
//! nested block comments, escaped newlines inside strings, raw and
//! byte strings, char literals vs lifetimes. The fixture must lint
//! clean under every rule.

/* outer /* nested block comment: unsafe { } 16384 */ still comment: panic!("x") 262144 */

pub fn strings() -> String {
    let a = "line one \
        continued after an escaped newline: unsafe { 262144 }";
    let b = "escaped quote \" and backslash \\ and 16384";
    let c = 'x';
    let d = '\'';
    let e = '\\';
    let r = r#"raw string with quote " and panic!("not real") and 128"#;
    let bs = b"byte string 128";
    let bc = b'y';
    let br = br#"raw byte string 16384"#;
    let _ = (c, d, e, bs, bc, br);
    format!("{a}{b}{r}")
}

pub fn lifetimes<'a>(v: &'a [f32]) -> &'a f32 {
    // 'a above is a lifetime, not an unterminated char literal; the
    // rest of this file must still be scanned as code.
    v.first().unwrap_or(&0.0)
}

pub fn trailing() -> u32 {
    let x = 7; // trailing comment with unsafe { } and 262144
    x
}

//! L6 fixture — the three raw-pointer escapes: a `SendPtr` with no
//! written safety argument, a bare raw pointer captured by a `move`
//! closure, and a pointer escaping the block its source lives in.
//! Linted as a synthetic first-party path; never compiled.
//! (The required safety wording must not appear in this header — the
//! rule scans nearby comments for it.)

pub fn fan_out(out: &mut [f32]) {
    let shared = SendPtr(out.as_mut_ptr());
    let _ = shared;
}

pub fn capture(out: &mut [f32]) {
    let base = out.as_mut_ptr();
    std::thread::spawn(move || {
        let _ = base;
    });
}

pub fn outlive() -> *const f32 {
    let p;
    {
        let buf = vec![0.0f32; 4];
        p = buf.as_ptr();
    }
    p
}

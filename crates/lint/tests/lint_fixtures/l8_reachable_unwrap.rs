//! L8 fixture — an `unwrap` and a slice index both reachable from the
//! client entry point `PlfService::submit`. Linted as a synthetic
//! `crates/plfd/` path; never compiled.

pub struct PlfService {
    queue: Queue,
}

pub struct Queue {
    jobs: Vec<u32>,
}

impl PlfService {
    pub fn submit(&self) -> u32 {
        self.queue.head()
    }
}

impl Queue {
    pub fn head(&self) -> u32 {
        let first = self.jobs.first();
        first.unwrap() + self.jobs[0]
    }
}

// Known-bad fixture for L3/magic-number: the paper's alignment and DMA
// bounds written as inline literals. Never compiled.

pub fn clv_align() -> usize {
    128
}

pub fn dma_max() -> usize {
    16384
}

pub fn dma_max_product() -> usize {
    16 * 1024
}

pub fn local_store() -> usize {
    256 * 1024
}

//! L5 suppression fixture — the same inversions as `l5_deadlock.rs`,
//! every one silenced by a fn-level `allow(L5)` on the declaration.

pub struct Queue {
    state: Mutex<u32>,
}

pub struct Journal {
    inner: Mutex<u32>,
    file: File,
}

impl Queue {
    // Deliberate inversion kept for the suppression test.
    // plf-lint: allow(L5)
    pub fn publish(&self, journal: &Journal) {
        let lanes = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let log = journal.inner.lock().unwrap_or_else(|p| p.into_inner());
        let _ = (lanes, log);
    }
}

impl Journal {
    // plf-lint: allow(L5)
    pub fn compact(&self, queue: &Queue) {
        let log = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let lanes = queue.state.lock().unwrap_or_else(|p| p.into_inner());
        let _ = (log, lanes);
    }

    // plf-lint: allow(L5)
    pub fn append(&self) {
        let log = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let _ = self.file.sync_data();
        drop(log);
    }
}

//! L7 suppression fixture — the same parity holes as
//! `l7_parity_hole.rs`, silenced by a line-level `allow(L7)` above the
//! impl (L7 diagnostics anchor at the `impl` line).

pub trait PlfBackend {
    fn cond_like_down(&mut self) -> Result<(), PlfError>;
    fn cond_like_root(&mut self) -> Result<(), PlfError>;
    fn cond_like_scaler(&mut self) -> Result<(), PlfError>;
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> {
        self.cond_like_down()
    }
    fn cond_like_root_fused(&mut self) -> Result<(), PlfError> {
        self.cond_like_root()
    }
}

pub struct OrphanBackend;

// Staged rollout: parity suite lands in the next change. plf-lint: allow(L7)
impl PlfBackend for OrphanBackend {
    fn cond_like_down(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_root(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_scaler(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
    fn cond_like_down_fused(&mut self) -> Result<(), PlfError> {
        Ok(())
    }
}

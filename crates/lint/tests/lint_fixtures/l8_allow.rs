//! L8 suppression fixture — the same reachable panics as
//! `l8_reachable_unwrap.rs`, silenced by a fn-level `allow(L8)` on the
//! panicking callee's declaration.

pub struct PlfService {
    queue: Queue,
}

pub struct Queue {
    jobs: Vec<u32>,
}

impl PlfService {
    pub fn submit(&self) -> u32 {
        self.queue.head()
    }
}

impl Queue {
    // Invariant: `jobs` is non-empty from construction. plf-lint: allow(L8)
    pub fn head(&self) -> u32 {
        let first = self.jobs.first();
        first.unwrap() + self.jobs[0]
    }
}

// Known-bad fixture for L1/safety-comment: three unsafe sites, none
// with a SAFETY justification. Never compiled — read by tests/fixtures.rs.

pub struct RawBox(*mut u8);

unsafe impl Send for RawBox {}

pub fn deref(p: &RawBox) -> u8 {
    unsafe { *p.0 }
}

pub unsafe fn peek(p: *const u8) -> u8 {
    *p
}

//! Known-bad fixture: panicking calls in a plfd service hot-path
//! file. Linted with the scope derived from a `crates/plfd/src/`
//! path, so this proves the path-based L2 gating itself — not just
//! `--all-rules` — catches a regression in the queue/scheduler/
//! dispatch data path. Never compiled.

fn pop_next(lanes: &std::sync::Mutex<Vec<u32>>) -> u32 {
    // BAD: poisoning must be handled with into_inner, not unwrap.
    let mut guard = lanes.lock().unwrap();
    // BAD: an empty lane is a normal state, not a panic.
    guard.pop().expect("queue not empty")
}

fn admit(depth: usize, capacity: usize) -> usize {
    if depth >= capacity {
        // BAD: over-capacity must reject with retry-after.
        panic!("queue full");
    }
    depth + 1
}

// Known-bad fixture for L4/atomic-ordering: a stray SeqCst in a module
// whose declared counter ordering is Relaxed. Never compiled.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    c.fetch_add(1, Ordering::SeqCst);
}

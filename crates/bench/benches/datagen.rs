//! Criterion benchmarks of the data-generation substrate: sequence
//! evolution throughput and pattern compression (the pipeline behind
//! the paper's Seq-Gen inputs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plf_phylo::alignment::Alignment;
use plf_seqgen::{default_model, evolve_alignment, random_unrooted_tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_evolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolve_alignment");
    group.sample_size(10);
    let model = default_model();
    for &taxa in &[10usize, 50] {
        let tree = random_unrooted_tree(taxa, 0.25, &mut StdRng::seed_from_u64(1));
        group.throughput(Throughput::Elements(2_000));
        group.bench_with_input(BenchmarkId::from_parameter(taxa), &taxa, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(evolve_alignment(&tree, &model, 2_000, &mut rng)))
        });
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let model = default_model();
    let tree = random_unrooted_tree(20, 0.25, &mut StdRng::seed_from_u64(2));
    let aln: Alignment = evolve_alignment(&tree, &model, 10_000, &mut StdRng::seed_from_u64(3));
    let mut group = c.benchmark_group("pattern_compression");
    group.sample_size(20);
    group.throughput(Throughput::Elements(aln.n_sites() as u64));
    group.bench_function("compress_20x10K", |b| b.iter(|| black_box(aln.compress())));
    group.finish();
}

criterion_group!(benches, bench_evolve, bench_compress);
criterion_main!(benches);

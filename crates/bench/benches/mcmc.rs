//! Criterion benchmark of MCMC generation throughput: full per-proposal
//! re-evaluation vs MrBayes-style incremental updates — the host-level
//! measurement behind the `incremental_updates` example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plf_mcmc::{Chain, ChainOptions, Priors};
use plf_phylo::kernels::ScalarBackend;
use plf_seqgen::{default_model, generate, DatasetSpec};
use std::hint::black_box;

fn bench_chain(c: &mut Criterion) {
    let ds = generate(DatasetSpec::new(20, 500), 2009);
    let mut group = c.benchmark_group("mcmc_generations");
    group.sample_size(10);
    const GENS: usize = 200;
    group.throughput(Throughput::Elements(GENS as u64));
    for (label, incremental) in [("full", false), ("incremental", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &incremental, |b, &inc| {
            b.iter(|| {
                let mut chain = Chain::new(
                    ds.tree.clone(),
                    &ds.data,
                    default_model().params().clone(),
                    0.5,
                    Priors::default(),
                    ChainOptions {
                        generations: GENS,
                        seed: 11,
                        sample_every: 0,
                        incremental: inc,
                        ..ChainOptions::default()
                    },
                )
                .unwrap();
                black_box(chain.run(&mut ScalarBackend).unwrap().final_ln_likelihood)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);

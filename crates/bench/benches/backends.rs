//! Criterion benchmarks of full-tree likelihood evaluation on every
//! backend — the host-measured analogue of the paper's per-architecture
//! PLF comparison (simulated backends additionally maintain their
//! modeled timings; here we measure their host overhead).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use plf_cellbe::CellBackend;
use plf_gpu::GpuBackend;
use plf_multicore::{PersistentPoolBackend, RayonBackend};
use plf_phylo::kernels::{PlfBackend, ScalarBackend, Simd4Backend};
use plf_phylo::likelihood::TreeLikelihood;
use plf_seqgen::{default_model, generate, DatasetSpec};
use std::hint::black_box;

fn bench_tree_eval(c: &mut Criterion) {
    let ds = generate(DatasetSpec::new(10, 2_000), 2009);
    let model = default_model();

    let mut group = c.benchmark_group("tree_log_likelihood_10x2K");
    group.throughput(Throughput::Elements(ds.data.n_patterns() as u64));
    group.sample_size(15);

    let mut cases: Vec<(&str, Box<dyn PlfBackend>)> = vec![
        ("scalar", Box::new(ScalarBackend)),
        ("simd-colwise", Box::new(Simd4Backend::col_wise())),
        ("simd-rowwise", Box::new(Simd4Backend::row_wise())),
        ("rayon", Box::new(RayonBackend::new(
            std::thread::available_parallelism().map_or(2, |n| n.get()),
        ).expect("thread pool"))),
        ("persistent", Box::new(PersistentPoolBackend::new(
            std::thread::available_parallelism().map_or(2, |n| n.get()),
        ))),
        ("cellbe-ps3", Box::new(CellBackend::ps3())),
        ("gpu-8800gt", Box::new(GpuBackend::gt8800())),
    ];
    for (name, backend) in cases.iter_mut() {
        let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, model.clone()).unwrap();
        group.bench_function(*name, |b| {
            b.iter(|| {
                black_box(
                    eval.log_likelihood(black_box(&ds.tree), backend.as_mut())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_eval);
criterion_main!(benches);

//! Criterion micro-benchmarks of the three PLF kernels across the
//! scalar reference and both SIMD schedules, swept over the paper's
//! pattern counts. This is the measured (host) counterpart of the §3.3
//! row-wise/column-wise comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plf_phylo::clv::TransitionMatrices;
use plf_phylo::kernels::{scalar, simd4, SimdSchedule};
use std::hint::black_box;

const N_RATES: usize = 4;

fn mats(seed: u64) -> TransitionMatrices {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32).fract().abs() * 0.9 + 0.05
    };
    TransitionMatrices::from_mats(
        (0..N_RATES)
            .map(|_| std::array::from_fn(|_| std::array::from_fn(|_| next())))
            .collect(),
    )
}

fn clv(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0xD1342543DE82EF95).wrapping_add(7);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 33) as f32 / (1u64 << 31) as f32).fract().abs()
        })
        .collect()
}

fn bench_down(c: &mut Criterion) {
    let mut group = c.benchmark_group("cond_like_down");
    for &m in &[1_000usize, 20_000] {
        let len = m * N_RATES * 4;
        let (pl, pr) = (mats(1), mats(2));
        let (l, r) = (clv(3, len), clv(4, len));
        let mut out = vec![0.0f32; len];
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("scalar", m), &m, |b, _| {
            b.iter(|| {
                scalar::cond_like_down_range(
                    black_box(&l),
                    &pl,
                    black_box(&r),
                    &pr,
                    &mut out,
                    N_RATES,
                )
            })
        });
        for (name, sched) in [
            ("simd-rowwise", SimdSchedule::RowWise),
            ("simd-colwise", SimdSchedule::ColWise),
        ] {
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                b.iter(|| {
                    simd4::cond_like_down_range(
                        sched,
                        black_box(&l),
                        &pl,
                        black_box(&r),
                        &pr,
                        &mut out,
                        N_RATES,
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_root(c: &mut Criterion) {
    let mut group = c.benchmark_group("cond_like_root");
    let m = 5_000usize;
    let len = m * N_RATES * 4;
    let (pa, pb, pc) = (mats(5), mats(6), mats(7));
    let (a, bb, cc) = (clv(8, len), clv(9, len), clv(10, len));
    let mut out = vec![0.0f32; len];
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            scalar::cond_like_root_range(
                black_box(&a),
                &pa,
                &bb,
                &pb,
                Some((&cc[..], &pc)),
                &mut out,
                N_RATES,
            )
        })
    });
    group.bench_function("simd-colwise", |b| {
        b.iter(|| {
            simd4::cond_like_root_range(
                SimdSchedule::ColWise,
                black_box(&a),
                &pa,
                &bb,
                &pb,
                Some((&cc[..], &pc)),
                &mut out,
                N_RATES,
            )
        })
    });
    group.finish();
}

fn bench_scaler(c: &mut Criterion) {
    let mut group = c.benchmark_group("cond_like_scaler");
    let m = 5_000usize;
    let len = m * N_RATES * 4;
    let base = clv(11, len);
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function("scalar", |b| {
        b.iter_batched(
            || (base.clone(), vec![0.0f32; m]),
            |(mut c, mut s)| scalar::cond_like_scaler_range(&mut c, &mut s, N_RATES),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("simd", |b| {
        b.iter_batched(
            || (base.clone(), vec![0.0f32; m]),
            |(mut c, mut s)| simd4::cond_like_scaler_range(&mut c, &mut s, N_RATES),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_down, bench_root, bench_scaler
}
criterion_main!(benches);

//! Regeneration of every table and figure in the paper's evaluation
//! (§4). Each function returns plain data; the `src/bin/*` binaries
//! print it as text tables (or JSON with `--json`).

use plf_cellbe::CellModel;
use plf_gpu::{GpuModel, LaunchConfig, WorkDistribution};
use plf_multicore::MultiCoreModel;
use plf_phylo::kernels::SimdSchedule;
use plf_seqgen::{paper_grid, real_world, DatasetSpec};
use plf_simcore::machine::table1;
use plf_simcore::model::MachineModel;
use plf_simcore::workload::PlfWorkload;
use serde::Serialize;

/// Evaluations per modeled run. Speedups are evaluation-count invariant
/// (everything scales linearly), so any representative count works.
pub const N_EVALS: u64 = 100;

/// Γ rate categories (the paper's model).
pub const N_RATES: usize = 4;

/// Baseline serial share: the paper's real-data measurement is 62 s
/// total with 57 s in the PLF (§4.2), i.e. Remaining = 5/57 of the PLF.
/// Our Rust MCMC's serial bookkeeping is leaner than MrBayes 3.1.2's C
/// code, so Figure 12 uses the paper's measured ratio to reproduce the
/// application the paper profiled (see EXPERIMENTS.md).
pub const BASELINE_REMAINING_OVER_PLF: f64 = 5.0 / 57.0;

/// Workload for one grid cell.
pub fn workload_for(spec: DatasetSpec) -> PlfWorkload {
    PlfWorkload::for_run(spec.taxa, spec.patterns, N_RATES, N_EVALS, 1)
}

/// The 16 data sets in Figures 9–11's x-axis order.
pub fn grid() -> Vec<DatasetSpec> {
    paper_grid()
}

/// One speedup curve.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// System name (figure legend).
    pub system: String,
    /// `(data set label, speedup)` per grid cell, x-axis order.
    pub points: Vec<(String, f64)>,
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Column header.
    pub name: String,
    /// System description.
    pub system: String,
    /// Core configuration.
    pub cores: usize,
    /// CPU/GPU model.
    pub model: String,
    /// Clock (GHz).
    pub freq_ghz: f64,
    /// Cache description.
    pub cache: String,
    /// Memory (GB).
    pub mem_gb: f64,
}

/// Table 1: the systems setup.
pub fn table1_rows() -> Vec<Table1Row> {
    table1()
        .into_iter()
        .map(|m| Table1Row {
            name: m.name.to_string(),
            system: m.system.to_string(),
            cores: m.cores,
            model: m.model.to_string(),
            freq_ghz: m.freq_ghz,
            cache: m.cache.to_string(),
            mem_gb: m.mem_gb,
        })
        .collect()
}

/// Figure 9: relative speedup (n cores vs 1 core) of the three
/// general-purpose multi-core systems over the 16-cell grid.
pub fn fig09() -> Vec<Series> {
    MultiCoreModel::figure9_systems()
        .into_iter()
        .map(|m| Series {
            system: m.config().name.to_string(),
            points: grid()
                .into_iter()
                .map(|spec| {
                    let w = workload_for(spec);
                    (spec.label(), m.speedup(&w, m.max_units()))
                })
                .collect(),
        })
        .collect()
}

/// Figure 10: Cell/BE speedup vs one SPE (PS3: 6 SPEs, QS20: 16 SPEs).
pub fn fig10() -> Vec<Series> {
    [CellModel::ps3(), CellModel::qs20()]
        .into_iter()
        .map(|m| Series {
            system: m.config().name.to_string(),
            points: grid()
                .into_iter()
                .map(|spec| {
                    let w = workload_for(spec);
                    (spec.label(), m.speedup(&w, m.max_units()))
                })
                .collect(),
        })
        .collect()
}

/// Figure 11: GPU performance normalized to the 8800 GT on the 10_1K
/// set ("the speedup reported is the performance improvement relative
/// to the execution on the lower-spec GPU using the smaller data set").
pub fn fig11() -> Vec<Series> {
    let reference =
        GpuModel::gt8800().relative_performance(&workload_for(DatasetSpec::new(10, 1000)));
    [GpuModel::gt8800(), GpuModel::gtx285()]
        .into_iter()
        .map(|m| Series {
            system: m.config().name.to_string(),
            points: grid()
                .into_iter()
                .map(|spec| {
                    let w = workload_for(spec);
                    (spec.label(), m.relative_performance(&w) / reference)
                })
                .collect(),
        })
        .collect()
}

/// One bar of Figure 12 (percentages of the baseline total).
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// System name.
    pub system: String,
    /// PLF share (%).
    pub plf_pct: f64,
    /// Serial remainder share (%).
    pub remaining_pct: f64,
    /// PCIe share (%).
    pub pcie_pct: f64,
    /// Total (%).
    pub total_pct: f64,
    /// Overall application speedup vs the baseline.
    pub speedup: f64,
}

/// All eight machine models in Table 1 order.
pub fn all_machine_models() -> Vec<Box<dyn MachineModel>> {
    vec![
        Box::new(MultiCoreModel::baseline()),
        Box::new(MultiCoreModel::xeon_2x4()),
        Box::new(MultiCoreModel::opteron_4x4()),
        Box::new(MultiCoreModel::opteron_8x2()),
        Box::new(CellModel::ps3()),
        Box::new(CellModel::qs20()),
        Box::new(GpuModel::gt8800()),
        Box::new(GpuModel::gtx285()),
    ]
}

/// Figure 12: frequency-scaled total-time breakdown on the real-world
/// data set (20 organisms, 8,543 distinct patterns).
///
/// `remaining_over_plf` sets the baseline's serial share; pass
/// [`BASELINE_REMAINING_OVER_PLF`] for the paper's measured ratio, or a
/// locally measured one.
pub fn fig12(remaining_over_plf: f64) -> Vec<Fig12Row> {
    let w = workload_for(real_world());
    let models = all_machine_models();
    let baseline_plf = models[0].plf_time(&w, 1);
    let baseline_remaining = baseline_plf * remaining_over_plf;
    let reference_total = {
        let b = models[0].breakdown(&w, baseline_remaining);
        b.total()
    };
    models
        .iter()
        .map(|m| {
            let b = m.breakdown(&w, baseline_remaining);
            let (plf_pct, remaining_pct, pcie_pct) = b.normalized(reference_total);
            Fig12Row {
                system: b.system.clone(),
                plf_pct,
                remaining_pct,
                pcie_pct,
                total_pct: plf_pct + remaining_pct + pcie_pct,
                speedup: b.speedup_vs(reference_total),
            }
        })
        .collect()
}

/// One variant of an ablation comparison.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Modeled PLF seconds on the real data set.
    pub plf_s: f64,
    /// Overall application speedup vs baseline (with the paper's serial
    /// share).
    pub overall_speedup: f64,
}

fn overall_speedup(model: &dyn MachineModel, w: &PlfWorkload) -> f64 {
    let baseline = MultiCoreModel::baseline();
    let baseline_plf = baseline.plf_time(w, 1);
    let baseline_remaining = baseline_plf * BASELINE_REMAINING_OVER_PLF;
    let reference = baseline.breakdown(w, baseline_remaining).total();
    model.breakdown(w, baseline_remaining).speedup_vs(reference)
}

/// §3.3 ablation: Cell SIMD row-wise vs column-wise (paper: column-wise
/// gains 2× on the PLF and 34% on the total speedup). Run on the PS3
/// (compute-bound regime — on the bandwidth-bound 16-SPE QS20 the DMA
/// floor hides part of the kernel difference).
pub fn ablation_cell_simd() -> Vec<AblationRow> {
    let w = workload_for(real_world());
    [SimdSchedule::RowWise, SimdSchedule::ColWise]
        .into_iter()
        .map(|s| {
            let m = CellModel::ps3().with_schedule(s);
            AblationRow {
                variant: format!("{s:?}"),
                plf_s: m.plf_time(&w, m.max_units()),
                overall_speedup: overall_speedup(&m, &w),
            }
        })
        .collect()
}

/// The matrix–vector kernels' (CondLikeDown-only) row/col time ratio on
/// the PS3 — the paper's "2× for the PLF speedup" statement isolates
/// exactly this.
pub fn cell_simd_down_only_ratio() -> f64 {
    let spec = real_world();
    let w = PlfWorkload {
        n_leaves: spec.taxa,
        n_patterns: spec.patterns,
        n_rates: N_RATES,
        n_down: 100,
        n_root: 0,
        n_scale: 0,
    };
    let row = CellModel::ps3().with_schedule(SimdSchedule::RowWise);
    let col = CellModel::ps3().with_schedule(SimdSchedule::ColWise);
    row.plf_time(&w, 6) / col.plf_time(&w, 6)
}

/// §3.4 ablation: GPU reduction-parallel vs entry-parallel work
/// distribution (paper: entry-parallel gains 2.5× on the PLF and 36%
/// on the total speedup).
pub fn ablation_gpu_sched() -> Vec<AblationRow> {
    let w = workload_for(real_world());
    [
        WorkDistribution::ReductionParallel,
        WorkDistribution::EntryParallel,
    ]
    .into_iter()
    .map(|d| {
        let m = GpuModel::gt8800().with_distribution(d);
        AblationRow {
            variant: format!("{d:?}"),
            plf_s: m.plf_time(&w, 1),
            overall_speedup: overall_speedup(&m, &w),
        }
    })
    .collect()
}

/// §3.4 design-space exploration: best launch configuration per device.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// Device name.
    pub device: String,
    /// Best threads per block found.
    pub best_threads: usize,
    /// Best block count found.
    pub best_blocks: usize,
    /// PLF seconds at the optimum.
    pub best_plf_s: f64,
    /// PLF seconds at the paper's configuration.
    pub paper_plf_s: f64,
    /// The paper's configuration for reference.
    pub paper_config: (usize, usize),
}

/// Figure 7 ablation: Cell/BE with and without DMA/compute double
/// buffering.
pub fn ablation_cell_double_buffering() -> Vec<AblationRow> {
    let w = workload_for(real_world());
    [
        ("no-double-buffering", CellModel::ps3().without_double_buffering()),
        ("double-buffered", CellModel::ps3()),
    ]
    .into_iter()
    .map(|(name, m)| AblationRow {
        variant: name.to_string(),
        plf_s: m.plf_time(&w, m.max_units()),
        overall_speedup: overall_speedup(&m, &w),
    })
    .collect()
}

/// §3.4 ablation: GPU with and without the 4-thread-group coalescing
/// trick.
pub fn ablation_gpu_coalescing() -> Vec<AblationRow> {
    let w = workload_for(real_world());
    [
        ("strided", GpuModel::gt8800().without_coalescing()),
        ("coalesced", GpuModel::gt8800()),
    ]
    .into_iter()
    .map(|(name, m)| AblationRow {
        variant: name.to_string(),
        plf_s: m.plf_time(&w, 1),
        overall_speedup: overall_speedup(&m, &w),
    })
    .collect()
}

/// §4.2/§6 what-ifs: the future heterogeneous systems the paper argues
/// for, as Figure 12-style rows (appended after the stock systems).
pub fn future_hybrids() -> Vec<Fig12Row> {
    use plf_simcore::hybrid::HybridModel;
    let w = workload_for(real_world());
    let baseline = MultiCoreModel::baseline();
    let baseline_plf = baseline.plf_time(&w, 1);
    let baseline_remaining = baseline_plf * BASELINE_REMAINING_OVER_PLF;
    let reference_total = baseline.breakdown(&w, baseline_remaining).total();

    let mut rows = Vec::new();
    let mut push = |label: &str, b: plf_simcore::Breakdown| {
        let (plf_pct, remaining_pct, pcie_pct) = b.normalized(reference_total);
        rows.push(Fig12Row {
            system: label.to_string(),
            plf_pct,
            remaining_pct,
            pcie_pct,
            total_pct: plf_pct + remaining_pct + pcie_pct,
            speedup: b.speedup_vs(reference_total),
        });
    };
    push(
        "QS20 + strong host",
        HybridModel::new(CellModel::qs20())
            .with_strong_host()
            .breakdown(&w, baseline_remaining),
    );
    push(
        "8800GT + overlap",
        HybridModel::new(GpuModel::gt8800())
            .with_transfer_overlap()
            .breakdown(&w, baseline_remaining),
    );
    push(
        "GTX285 + overlap",
        HybridModel::new(GpuModel::gtx285())
            .with_transfer_overlap()
            .breakdown(&w, baseline_remaining),
    );
    push(
        "GTX285 + overlap + strong host",
        HybridModel::new(GpuModel::gtx285())
            .with_transfer_overlap()
            .with_strong_host()
            .breakdown(&w, baseline_remaining),
    );
    push(
        "GTX285 + overlap + 4x bus + strong host",
        HybridModel::new(GpuModel::gtx285())
            .with_transfer_overlap()
            .with_faster_transfers(4.0)
            .with_strong_host()
            .breakdown(&w, baseline_remaining),
    );
    rows
}

/// One row of the rate-category sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RateSweepRow {
    /// Discrete Γ categories.
    pub n_rates: usize,
    /// Floats per likelihood-vector element (`4 × n_rates`; Figure 3's
    /// 16 at the paper's 4 categories).
    pub entry_floats: usize,
    /// Modeled baseline (1-core) PLF seconds.
    pub baseline_plf_s: f64,
    /// Modeled QS20 16-SPE PLF seconds.
    pub qs20_plf_s: f64,
    /// Modeled GTX 285 PLF seconds.
    pub gtx285_plf_s: f64,
}

/// §3.1: "the computational load … depends on the sequence length (m)
/// and the number of discrete rates (r)". Sweep r on the real data set.
pub fn rates_sweep() -> Vec<RateSweepRow> {
    let spec = real_world();
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|r| {
            let w = PlfWorkload::for_run(spec.taxa, spec.patterns, r, N_EVALS, 1);
            RateSweepRow {
                n_rates: r,
                entry_floats: 4 * r,
                baseline_plf_s: MultiCoreModel::baseline().plf_time(&w, 1),
                qs20_plf_s: CellModel::qs20().plf_time(&w, 16),
                gtx285_plf_s: GpuModel::gtx285().plf_time(&w, 1),
            }
        })
        .collect()
}

/// Run the sweep on both devices.
pub fn gpu_design_space() -> Vec<SweepResult> {
    let w = workload_for(real_world());
    [
        (GpuModel::gt8800(), LaunchConfig::paper_8800gt()),
        (GpuModel::gtx285(), LaunchConfig::paper_gtx285()),
    ]
    .into_iter()
    .map(|(m, paper)| {
        let (best, t) = m.sweep(&w);
        let paper_t = m.clone().with_config(paper).plf_time(&w, 1);
        SweepResult {
            device: m.config().name.to_string(),
            best_threads: best.threads,
            best_blocks: best.blocks,
            best_plf_s: t,
            paper_plf_s: paper_t,
            paper_config: (paper.threads, paper.blocks),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_shape() {
        let series = fig09();
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), 16);
            for (label, v) in &s.points {
                assert!(*v >= 1.0 && *v <= 16.0, "{} {label}: {v}", s.system);
            }
        }
        // Winner check: on large sets the 16-core systems beat the 8-core
        // Xeon.
        let at = |sys: &str, label: &str| {
            series
                .iter()
                .find(|s| s.system == sys)
                .unwrap()
                .points
                .iter()
                .find(|(l, _)| l == label)
                .unwrap()
                .1
        };
        assert!(at("4xOpteron(4)", "10_50K") > at("2xXeon(4)", "10_50K"));
    }

    #[test]
    fn fig10_shape() {
        let series = fig10();
        assert_eq!(series.len(), 2);
        let qs20 = &series[1];
        assert!(qs20.system.contains("QS20"));
        // Peak near 12× on large sets; 1K noticeably lower.
        let peak = qs20
            .points
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max);
        assert!((10.0..14.0).contains(&peak), "peak {peak}");
        let v1k = qs20.points.iter().find(|(l, _)| l == "10_1K").unwrap().1;
        assert!(v1k < peak * 0.9, "1K should scale worse: {v1k} vs {peak}");
    }

    #[test]
    fn fig11_shape() {
        let series = fig11();
        let g8 = &series[0];
        let gtx = &series[1];
        // Normalization anchor: 8800GT @ 10_1K == 1.
        assert!((g8.points[0].1 - 1.0).abs() < 1e-9);
        // GTX 2.2–2.4× over the 8800 at 20K/50K columns (§4.1.3).
        for label in ["50_20K", "100_50K"] {
            let a = g8.points.iter().find(|(l, _)| l == label).unwrap().1;
            let b = gtx.points.iter().find(|(l, _)| l == label).unwrap().1;
            let ratio = b / a;
            assert!((1.9..=2.9).contains(&ratio), "{label}: {ratio}");
        }
        // Speedup grows with data size for both devices.
        let first = gtx.points[0].1;
        let last = gtx.points[15].1;
        assert!(last > 2.0 * first, "{first} -> {last}");
    }

    #[test]
    fn fig12_shape() {
        let rows = fig12(BASELINE_REMAINING_OVER_PLF);
        assert_eq!(rows.len(), 8);
        let row = |name: &str| rows.iter().find(|r| r.system == name).unwrap();
        // Baseline is 100% by construction.
        assert!((row("Baseline").total_pct - 100.0).abs() < 1e-9);
        // §4.2 shape checks:
        // multi-cores reduce the PLF to 10–15%.
        for sys in ["4xOpteron(4)", "8xOpteron(2)"] {
            let r = row(sys);
            assert!(r.plf_pct < 20.0, "{sys} plf {}", r.plf_pct);
        }
        // Cell reduces PLF to 20–30% but Remaining blows up (weak PPE).
        for sys in ["PS3", "Blade QS20"] {
            let r = row(sys);
            assert!(r.remaining_pct > 3.0 * row("Baseline").remaining_pct, "{sys}");
        }
        // GPUs: smallest PLF share, massive PCIe; 8800GT total exceeds
        // the baseline.
        assert!(row("8800GT").pcie_pct > row("8800GT").plf_pct);
        assert!(row("8800GT").total_pct > 100.0);
        assert!(row("GTX285").total_pct < 100.0);
        // Overall winner ordering: a 16-core multi-core beats Cell and GPU.
        assert!(row("4xOpteron(4)").speedup > row("Blade QS20").speedup);
        assert!(row("4xOpteron(4)").speedup > row("GTX285").speedup);
        // Magnitudes: ~4× for 8 cores, ~7× for 16, ~1.5× Cell/GTX.
        assert!((3.0..6.0).contains(&row("2xXeon(4)").speedup), "{}", row("2xXeon(4)").speedup);
        assert!(row("4xOpteron(4)").speedup > 5.0);
        assert!((1.0..2.5).contains(&row("Blade QS20").speedup), "{}", row("Blade QS20").speedup);
    }

    #[test]
    fn ablation_cell_matches_paper_factors() {
        let rows = ablation_cell_simd();
        let plf_ratio = rows[0].plf_s / rows[1].plf_s; // row / col
        assert!((1.5..2.2).contains(&plf_ratio), "PLF ratio {plf_ratio}");
        let total_gain = rows[1].overall_speedup / rows[0].overall_speedup;
        assert!(total_gain > 1.1, "total gain {total_gain}");
        // The matvec kernels alone show the paper's full 2x.
        let down_only = cell_simd_down_only_ratio();
        assert!((1.8..2.2).contains(&down_only), "down-only ratio {down_only}");
    }

    #[test]
    fn ablation_gpu_matches_plf_factor() {
        let rows = ablation_gpu_sched();
        let plf_ratio = rows[0].plf_s / rows[1].plf_s; // reduction / entry
        assert!((1.8..3.2).contains(&plf_ratio), "PLF ratio {plf_ratio}");
    }

    #[test]
    fn double_buffering_ablation_shows_benefit() {
        let rows = ablation_cell_double_buffering();
        assert!(rows[0].plf_s > rows[1].plf_s);
        assert!(rows[1].overall_speedup > rows[0].overall_speedup);
    }

    #[test]
    fn coalescing_ablation_shows_benefit() {
        let rows = ablation_gpu_coalescing();
        let ratio = rows[0].plf_s / rows[1].plf_s;
        assert!(ratio > 1.5, "strided/coalesced PLF ratio {ratio}");
    }

    #[test]
    fn future_hybrids_realize_the_papers_predictions() {
        let rows = future_hybrids();
        assert_eq!(rows.len(), 5);
        let stock = fig12(BASELINE_REMAINING_OVER_PLF);
        let stock_speedup = |name: &str| {
            stock.iter().find(|r| r.system == name).unwrap().speedup
        };
        let hybrid_speedup = |name: &str| {
            rows.iter().find(|r| r.system == name).unwrap().speedup
        };
        // A strong serial host rescues the Cell (§4.2's diagnosis).
        assert!(hybrid_speedup("QS20 + strong host") > 2.0 * stock_speedup("Blade QS20"));
        // Overlapping transfers rescues the GPUs (§4.2's suggestion).
        assert!(hybrid_speedup("8800GT + overlap") > stock_speedup("8800GT"));
        // Overlap alone cannot hide a bus 20x slower than the kernel —
        // the interesting (and honest) modeling result: PCIe remains
        // exposed until the bus itself gets faster.
        assert!(hybrid_speedup("GTX285 + overlap") < stock_speedup("4xOpteron(4)"));
        // With the paper's *other* remedy too (a faster bus), the
        // heterogeneous future system becomes competitive with the best
        // 2009 multi-core.
        let best_stock = stock.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        let full = hybrid_speedup("GTX285 + overlap + 4x bus + strong host");
        assert!(full > 0.75 * best_stock, "hybrid {full} vs best stock {best_stock}");
    }

    #[test]
    fn rates_sweep_scales_linearly() {
        let rows = rates_sweep();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[2].n_rates, 4);
        assert_eq!(rows[2].entry_floats, 16); // Figure 3's 16 floats
        // Doubling r roughly doubles the baseline PLF cost.
        let ratio = rows[3].baseline_plf_s / rows[2].baseline_plf_s;
        assert!((1.7..=2.3).contains(&ratio), "r 4->8 ratio {ratio}");
    }

    #[test]
    fn table1_complete() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].name, "Baseline");
        assert_eq!(rows.iter().map(|r| r.cores).max(), Some(240));
    }

    #[test]
    fn design_space_finds_paper_neighbourhood() {
        for r in gpu_design_space() {
            assert!((192..=288).contains(&r.best_threads), "{}: {}", r.device, r.best_threads);
            assert!(r.best_plf_s <= r.paper_plf_s * 1.001);
            // The paper's config is near-optimal in the model too.
            assert!(r.paper_plf_s <= r.best_plf_s * 1.25, "{}", r.device);
        }
    }
}

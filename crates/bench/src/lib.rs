//! # plf-bench — benchmark and figure-regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§4):
//!
//! | target | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — systems setup |
//! | `fig09` | Figure 9 — multi-core scalability |
//! | `fig10` | Figure 10 — Cell/BE scalability |
//! | `fig11` | Figure 11 — GPU scalability |
//! | `fig12` | Figure 12 — frequency-scaled time breakdown |
//! | `ablation_cell_simd` | §3.3 — row-wise vs column-wise SIMD |
//! | `ablation_gpu_sched` | §3.4 — reduction- vs entry-parallel |
//! | `gpu_design_space` | §3.4 — threads×blocks exploration |
//!
//! Pass `--json` to any binary for machine-readable output. Criterion
//! micro-benchmarks of the kernels and backends live under `benches/`.

#![warn(missing_docs)]

pub mod figures;
pub mod netbench;
pub mod report;

//! Regenerate Figure 7: the DMA/SPE double-buffering synchronization
//! schedule — operand transfers (T), computation (C), and result
//! write-backs (R) overlapping across Local-Store chunks.
use plf_cellbe::dma::DmaEngine;
use plf_cellbe::timing::{CellCalibration, KernelKind};
use plf_cellbe::{double_buffered_schedule, render_gantt};
use plf_phylo::kernels::SimdSchedule;

fn main() {
    // One CondLikeDown call on one PS3 SPE: 8,543-pattern real data set
    // split 6 ways, then chunked to the Local Store.
    let cal = CellCalibration::default();
    let engine = DmaEngine::new(1, 1);
    let patterns_per_spe = 8543usize.div_ceil(6);
    let chunks = cal.chunk_costs(
        KernelKind::Down,
        SimdSchedule::ColWise,
        patterns_per_spe,
        4,
        &engine,
        6,
    );
    println!(
        "Figure 7: double-buffered DMA/compute schedule (one SPE, CondLikeDown,\n\
         {} patterns in {} Local-Store chunks; digits are chunk ids)\n",
        patterns_per_spe,
        chunks.len()
    );
    let events = double_buffered_schedule(&chunks);
    print!("{}", render_gantt(&events, 100));
    let serial: f64 = chunks.iter().map(|c| c.dma_in + c.compute + c.dma_out).sum();
    let overlapped = events.iter().fold(0.0f64, |m, e| m.max(e.end));
    println!(
        "\nwithout double buffering this chunk stream would take {:.1} µs ({:.0}% longer)",
        serial * 1e6,
        100.0 * (serial / overlapped - 1.0)
    );
}

//! Regenerate Figure 9: scalability of the general-purpose multi-core
//! systems (relative speedup, n cores vs 1 core, 16 data sets).
//!
//! Default: the calibrated models of the paper's three systems. With
//! `--measured`, additionally measure *this host's* rayon scaling on a
//! reduced grid (wall-clock of real parallel PLF kernels) — the
//! present-day counterpart of the paper's OpenMP measurements.
use plf_bench::figures::{fig09, workload_for, N_RATES};
use plf_bench::report::{json_mode, print_json, print_series_table};
use plf_multicore::RayonBackend;
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::TreeLikelihood;
use plf_seqgen::{generate, DatasetSpec};

fn measured_host_scaling() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nMeasured on this host ({cores} core(s)) with rayon:");
    if cores < 2 {
        println!("  (single-core machine: parallel speedup is not measurable here;");
        println!("   the modeled figures above carry the reproduction)");
    }
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= cores)
        .collect();
    print!("{:<10}", "dataset");
    for t in &thread_counts {
        print!(" {:>10}", format!("{t} thr"));
    }
    println!();
    for spec in [DatasetSpec::new(10, 1_000), DatasetSpec::new(10, 20_000)] {
        let ds = generate(spec, 2009);
        let model = plf_seqgen::default_model();
        let mut times = Vec::new();
        for &threads in &thread_counts {
            let mut backend = RayonBackend::new(threads).expect("thread pool");
            let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, model.clone()).unwrap();
            // Warm up once, then time a few evaluations.
            eval.log_likelihood(&ds.tree, &mut backend).unwrap();
            let reps = 5;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                eval.log_likelihood(&ds.tree, &mut backend).unwrap();
            }
            times.push(t0.elapsed().as_secs_f64() / reps as f64);
            let _ = backend.name();
        }
        print!("{:<10}", spec.label());
        for t in &times {
            print!(" {:>10.2}", times[0] / t);
        }
        println!("   (speedup vs 1 thread)");
    }
    // Keep the model workload helper linked for consistency checks.
    let _ = workload_for(DatasetSpec::new(10, 1_000));
    let _ = N_RATES;
}

fn main() {
    let series = fig09();
    if json_mode() {
        print_json(&series);
        return;
    }
    print_series_table(
        "Figure 9: Scalability for the multi-core based systems (speedup vs 1 core)",
        &series,
    );
    if std::env::args().any(|a| a == "--measured") {
        measured_host_scaling();
    }
}

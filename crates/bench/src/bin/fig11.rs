//! Regenerate Figure 11: GPU scalability (performance normalized to the
//! 8800 GT on the 10_1K data set).
use plf_bench::figures::fig11;
use plf_bench::report::{json_mode, print_json, print_series_table};

fn main() {
    let series = fig11();
    if json_mode() {
        print_json(&series);
    } else {
        print_series_table(
            "Figure 11: GPU scalability (speedup normalized to 8800GT @ 10_1K)",
            &series,
        );
    }
}

//! §4.2/§6 what-ifs: the heterogeneous future systems the paper argues
//! for — strong serial host for the Cell, transfer/compute overlap for
//! the GPUs — as extra Figure 12 rows.
use plf_bench::figures::{fig12, future_hybrids, BASELINE_REMAINING_OVER_PLF};
use plf_bench::report::{json_mode, print_json};

fn main() {
    let stock = fig12(BASELINE_REMAINING_OVER_PLF);
    let hybrids = future_hybrids();
    if json_mode() {
        print_json(&hybrids);
        return;
    }
    println!("Future heterogeneous systems (Figure 12 extension; % of baseline)");
    println!(
        "{:<32} {:>8} {:>12} {:>8} {:>8} {:>9}",
        "System", "PLF%", "Remaining%", "PCIe%", "Total%", "Speedup"
    );
    for r in stock.iter().chain(hybrids.iter()) {
        println!(
            "{:<32} {:>8.1} {:>12.1} {:>8.1} {:>8.1} {:>8.2}x",
            r.system, r.plf_pct, r.remaining_pct, r.pcie_pct, r.total_pct, r.speedup
        );
    }
    println!("\n(§6 realized: a strong serial host rescues the Cell; overlap helps the");
    println!(" GPUs but PCIe stays exposed until the bus itself gets faster)");
}

//! §3.4 ablation: GPU memory coalescing (4-thread groups on adjacent
//! discrete-rate arrays) on/off.
use plf_bench::figures::ablation_gpu_coalescing;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let rows = ablation_gpu_coalescing();
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("GPU coalescing ablation (8800GT, real data set)");
    println!("{:<12} {:>12} {:>16}", "variant", "PLF (s)", "overall speedup");
    for r in &rows {
        println!("{:<12} {:>12.4} {:>15.2}x", r.variant, r.plf_s, r.overall_speedup);
    }
    println!(
        "\ncoalescing speeds the memory-bound PLF up by {:.2}x",
        rows[0].plf_s / rows[1].plf_s
    );
}

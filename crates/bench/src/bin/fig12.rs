//! Regenerate Figure 12: frequency-scaled total execution time, broken
//! into PLF / Remaining / PCIe, for all eight systems on the real-world
//! data set (20 organisms, 8,543 distinct patterns).
//!
//! By default the baseline's serial share uses the paper's measurement
//! (62 s total, 57 s PLF → Remaining = 5/57 of PLF), because our Rust
//! MCMC's serial code is leaner than MrBayes 3.1.2's. Pass `--measured`
//! to instead measure the ratio by running the MCMC chain on this
//! machine (slower; generates the full 8,543-pattern data set).

use plf_bench::figures::{fig12, BASELINE_REMAINING_OVER_PLF};
use plf_bench::report::{json_mode, print_json};
use plf_mcmc::{Chain, ChainOptions, Priors};
use plf_phylo::kernels::ScalarBackend;
use plf_seqgen::{default_model, generate, real_world};

fn measured_ratio() -> f64 {
    eprintln!("generating the real-world data set (20 taxa, 8,543 patterns)...");
    let ds = generate(real_world(), 2009);
    eprintln!("running 100 MCMC generations on the scalar baseline...");
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 100,
            seed: 1,
            sample_every: 0,
            ..ChainOptions::default()
        },
    )
    .expect("chain over generated data");
    let stats = chain.run(&mut ScalarBackend).expect("MCMC run");
    let ratio = stats.remaining_time().as_secs_f64() / stats.plf_time.as_secs_f64();
    eprintln!(
        "measured: PLF {:.2}s, Remaining {:.2}s (ratio {:.4}; paper's was {:.4})",
        stats.plf_time.as_secs_f64(),
        stats.remaining_time().as_secs_f64(),
        ratio,
        BASELINE_REMAINING_OVER_PLF
    );
    ratio
}

fn main() {
    let ratio = if std::env::args().any(|a| a == "--measured") {
        measured_ratio()
    } else {
        BASELINE_REMAINING_OVER_PLF
    };
    let rows = fig12(ratio);
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("Figure 12: frequency-scaled total time, real data set (% of baseline)");
    println!(
        "{:<14} {:>8} {:>12} {:>8} {:>8} {:>9}",
        "System", "PLF%", "Remaining%", "PCIe%", "Total%", "Speedup"
    );
    for r in &rows {
        println!(
            "{:<14} {:>8.1} {:>12.1} {:>8.1} {:>8.1} {:>8.2}x",
            r.system, r.plf_pct, r.remaining_pct, r.pcie_pct, r.total_pct, r.speedup
        );
    }
}

//! Regenerate Figure 10: Cell/BE scalability (speedup vs 1 SPE).
use plf_bench::figures::fig10;
use plf_bench::report::{json_mode, print_json, print_series_table};

fn main() {
    let series = fig10();
    if json_mode() {
        print_json(&series);
    } else {
        print_series_table(
            "Figure 10: Scalability for the Cell/BE based systems (speedup vs 1 SPE)",
            &series,
        );
    }
}

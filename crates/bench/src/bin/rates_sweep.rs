//! §3.1 sweep: PLF cost as a function of the number of discrete Γ rate
//! categories r (the paper fixes r = 4, giving the 16-float elements of
//! Figure 3; here we sweep r to show the linear scaling).
use plf_bench::figures::rates_sweep;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let rows = rates_sweep();
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("PLF cost vs discrete rate categories (real data set, modeled)");
    println!(
        "{:>7} {:>13} {:>14} {:>12} {:>12}",
        "rates", "floats/elem", "baseline (s)", "QS20 (s)", "GTX285 (s)"
    );
    for r in &rows {
        println!(
            "{:>7} {:>13} {:>14.4} {:>12.4} {:>12.4}",
            r.n_rates, r.entry_floats, r.baseline_plf_s, r.qs20_plf_s, r.gtx285_plf_s
        );
    }
}

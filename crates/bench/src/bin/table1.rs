//! Regenerate Table 1 (systems setup).
use plf_bench::figures::table1_rows;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let rows = table1_rows();
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("Table 1: Systems Setup");
    println!(
        "{:<14} {:<20} {:>5} {:<14} {:>8} {:<14} {:>7}",
        "Name", "System", "Cores", "Model", "GHz", "Cache", "Mem(GB)"
    );
    for r in rows {
        println!(
            "{:<14} {:<20} {:>5} {:<14} {:>8.3} {:<14} {:>7.2}",
            r.name, r.system, r.cores, r.model, r.freq_ghz, r.cache, r.mem_gb
        );
    }
}

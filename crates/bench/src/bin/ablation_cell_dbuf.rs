//! Figure 7 ablation: Cell/BE double buffering on/off.
use plf_bench::figures::ablation_cell_double_buffering;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let rows = ablation_cell_double_buffering();
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("Cell/BE double-buffering ablation (PS3, real data set)");
    println!("{:<22} {:>12} {:>16}", "variant", "PLF (s)", "overall speedup");
    for r in &rows {
        println!("{:<22} {:>12.4} {:>15.2}x", r.variant, r.plf_s, r.overall_speedup);
    }
    println!(
        "\ndouble buffering hides {:.0}% of the PLF time",
        100.0 * (1.0 - rows[1].plf_s / rows[0].plf_s)
    );
}

//! §3.3 ablation: Cell/BE SIMD schedules (row-wise vs column-wise).
//! Paper: column-wise is 2x faster on the PLF and worth +34% total speedup.
use plf_bench::figures::ablation_cell_simd;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let rows = ablation_cell_simd();
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("Cell/BE SIMD schedule ablation (PS3, real data set)");
    println!("{:<10} {:>12} {:>16}", "variant", "PLF (s)", "overall speedup");
    for r in &rows {
        println!("{:<10} {:>12.4} {:>15.2}x", r.variant, r.plf_s, r.overall_speedup);
    }
    println!(
        "\nPLF ratio (RowWise/ColWise): {:.2}x   total-speedup gain: {:.0}%",
        rows[0].plf_s / rows[1].plf_s,
        100.0 * (rows[1].overall_speedup / rows[0].overall_speedup - 1.0)
    );
    println!("matvec-kernels-only ratio: {:.2}x (paper: 2x PLF, +34% total)", plf_bench::figures::cell_simd_down_only_ratio());
}

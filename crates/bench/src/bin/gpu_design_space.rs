//! §3.4 design-space exploration: find the best threads x blocks launch
//! configuration per device. Paper: 256x40 (8800GT), 256x85 (GTX285).
use plf_bench::figures::gpu_design_space;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let results = gpu_design_space();
    if json_mode() {
        print_json(&results);
        return;
    }
    println!("GPU launch-configuration design space (real data set)");
    for r in &results {
        println!(
            "{:<8} best {}x{} ({:.4} s); paper {}x{} ({:.4} s, {:+.1}% vs best)",
            r.device,
            r.best_threads,
            r.best_blocks,
            r.best_plf_s,
            r.paper_config.0,
            r.paper_config.1,
            r.paper_plf_s,
            100.0 * (r.paper_plf_s / r.best_plf_s - 1.0)
        );
    }
}

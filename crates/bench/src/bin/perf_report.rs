//! `perf_report` — run every functional backend under `PlfCounters`
//! instrumentation and emit `BENCH_plf.json`.
//!
//! For each data set, each backend evaluates the same tree likelihood
//! `N` times with a fresh counter block attached; the snapshot becomes
//! one `BENCH_plf.json` entry — per-kernel invocation/pattern/time
//! shares, the measured PLF share of wall time, and (for the Cell and
//! GPU backends) the modeled DMA/PCIe transfer estimate and double-
//! buffer overlap ratio, i.e. the Figure 12 breakdown measured on this
//! machine instead of modeled. Schema v2 adds a `service` section: the
//! plfd serial-vs-batched submission comparison on a rayon worker
//! pool, with every completed result checked bit-for-bit against the
//! serial scalar reference. Schema v6 adds a `net_service` section:
//! the same service behind a real plf-net loopback socket, flooded by
//! the event-driven network load generator, with end-to-end latency
//! percentiles and the server's wire counters.
//!
//! ```text
//! perf_report [--smoke | --full] [--out PATH] [--require-batched-win]
//! ```
//!
//! * default: the 10_1K and 20_1K grid cells, 10 evaluations each;
//! * `--smoke`: one tiny 10-taxa × 200-pattern set, 2 evaluations —
//!   fast enough for `scripts/verify.sh`;
//! * `--full`: the paper's whole 16-cell grid (slow);
//! * `--out`: output path (default `BENCH_plf.json`);
//! * `--require-batched-win`: exit nonzero unless the batched service
//!   out-throughputs direct per-job dispatch (the fused-execution
//!   perf gate in CI).

use plf_bench::netbench::{net_service_section, NetServiceBench};
use plf_bench::report::{
    plf_backend_report, validate_bench_json, write_json, PlfBenchReport, PlfDatasetReport,
    PLF_BENCH_SCHEMA_VERSION,
};
use plf_cellbe::CellBackend;
use plf_gpu::GpuBackend;
use plf_multicore::{PersistentPoolBackend, RayonBackend};
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::PlfCounters;
use plf_seqgen::{generate, paper_grid, DatasetSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Same generation seed as the figure binaries.
const SEED: u64 = 2009;

/// Threads for the host multi-core backends.
const THREADS: usize = 4;

fn backends(counters: &Arc<PlfCounters>) -> Vec<Box<dyn PlfBackend>> {
    let armed = || Arc::clone(counters);
    vec![
        Box::new(
            RayonBackend::new(THREADS)
                .expect("rayon pool")
                .with_metrics(armed()),
        ),
        Box::new(PersistentPoolBackend::new(THREADS).with_metrics(armed())),
        Box::new(CellBackend::qs20().with_metrics(armed())),
        Box::new(GpuBackend::gt8800().with_metrics(armed())),
    ]
}

fn run_dataset(spec: DatasetSpec, evals: u64) -> PlfDatasetReport {
    eprintln!("generating {} ({} taxa x {} patterns)...", spec.label(), spec.taxa, spec.patterns);
    let ds = generate(spec, SEED);
    let counters = PlfCounters::new();
    let mut reports = Vec::new();
    for mut backend in backends(&counters) {
        counters.reset();
        let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, plf_seqgen::default_model())
            .expect("likelihood over generated data");
        let t0 = Instant::now();
        let mut lnl = 0.0;
        for _ in 0..evals {
            lnl = eval
                .log_likelihood(&ds.tree, backend.as_mut())
                .expect("likelihood evaluation");
        }
        let wall = t0.elapsed().as_secs_f64();
        let report = plf_backend_report(&backend.name(), wall, &counters.snapshot());
        eprintln!(
            "  {:<22} lnL {:>12.4}  wall {:>8.3}s  PLF {:>5.1}%  transfer {:>5.1}%",
            report.backend, lnl, wall, report.plf_pct, report.transfer_pct
        );
        reports.push(report);
    }
    PlfDatasetReport {
        label: spec.label(),
        taxa: spec.taxa,
        patterns: spec.patterns,
        backends: reports,
    }
}

/// The schema-v2 `service` section: the plfd serial-vs-batched
/// comparison on a rayon worker pool. `jobs` shrinks in smoke mode.
fn service_section(jobs: usize, patterns: usize) -> plfd::ServiceBenchmark {
    eprintln!("service benchmark: {jobs} jobs on {THREADS} rayon workers...");
    let report = plfd::loadgen::benchmark_batching(
        &|| Box::new(RayonBackend::new(THREADS).expect("rayon pool")),
        THREADS,
        10,
        patterns,
        jobs,
        SEED,
    )
    .unwrap_or_else(|e| {
        eprintln!("service benchmark failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "  direct {:>7.1} jobs/s   serial {:>7.1} jobs/s   batched {:>7.1} jobs/s   \
         speedup {:.2}x   occupancy {:.0}%   mismatches {}",
        report.direct_jobs_per_sec,
        report.serial_jobs_per_sec,
        report.batched_jobs_per_sec,
        report.speedup_batched_over_serial,
        100.0 * report.batch_occupancy,
        report.bit_mismatches
    );
    report
}

/// The schema-v6 `net_service` section: the same rayon-backed service
/// behind a real loopback socket, flooded by the event-driven network
/// load generator.
fn net_section(connections: usize, jobs: u64, patterns: usize) -> NetServiceBench {
    eprintln!("net benchmark: {jobs} jobs over {connections} connections...");
    let bench = net_service_section(
        &|| Box::new(RayonBackend::new(THREADS).expect("rayon pool")),
        THREADS,
        connections,
        jobs,
        10,
        patterns,
    )
    .unwrap_or_else(|e| {
        eprintln!("net benchmark failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "  {:>7.1} jobs/s over {} connection(s)   p50 {:.2} ms   p99 {:.2} ms   \
         p999 {:.2} ms   {} retries   {} lost acks",
        bench.loadgen.throughput_jobs_per_s,
        bench.loadgen.connections,
        bench.loadgen.latency_ms.p50,
        bench.loadgen.latency_ms.p99,
        bench.loadgen.latency_ms.p999,
        bench.loadgen.retries,
        bench.loadgen.lost_acks
    );
    bench
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_plf.json");
    let mut specs = vec![DatasetSpec::new(10, 1_000), DatasetSpec::new(20, 1_000)];
    let mut evals: u64 = 10;
    let mut service_jobs: usize = 256;
    let mut service_patterns: usize = 1_000;
    let mut net_connections: usize = 64;
    let mut net_jobs: u64 = 512;
    let mut require_batched_win = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                specs = vec![DatasetSpec::new(10, 200)];
                evals = 2;
                service_jobs = 64;
                service_patterns = 200;
                net_connections = 8;
                net_jobs = 64;
            }
            "--full" => specs = paper_grid(),
            "--require-batched-win" => require_batched_win = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = PathBuf::from(p),
                    None => {
                        eprintln!("error: --out needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} (expected --smoke, --full, --out PATH, \
                     --require-batched-win)"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = PlfBenchReport {
        schema_version: PLF_BENCH_SCHEMA_VERSION,
        evaluations: evals,
        datasets: specs.into_iter().map(|s| run_dataset(s, evals)).collect(),
        service: service_section(service_jobs, service_patterns),
        net_service: net_section(net_connections, net_jobs, service_patterns),
    };
    if report.service.bit_mismatches > 0 {
        eprintln!(
            "error: {} service result(s) were not bit-identical to the serial reference",
            report.service.bit_mismatches
        );
        return ExitCode::FAILURE;
    }
    if require_batched_win
        && report.service.batched_jobs_per_sec <= report.service.direct_jobs_per_sec
    {
        eprintln!(
            "error: batched throughput ({:.1} jobs/s) does not beat direct dispatch \
             ({:.1} jobs/s) — fused execution regressed",
            report.service.batched_jobs_per_sec, report.service.direct_jobs_per_sec
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_json(&out, &report) {
        eprintln!("error: {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    // Self-check: the file we just wrote must pass the same validator
    // that gates check-ins.
    let written = match std::fs::read_to_string(&out) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: re-reading {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_bench_json(&written) {
        eprintln!("error: emitted report failed validation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} (schema v{PLF_BENCH_SCHEMA_VERSION}, validated)", out.display());
    ExitCode::SUCCESS
}

//! `perf_report` — run every functional backend under `PlfCounters`
//! instrumentation and emit `BENCH_plf.json`.
//!
//! For each data set, each backend evaluates the same tree likelihood
//! `N` times with a fresh counter block attached; the snapshot becomes
//! one `BENCH_plf.json` entry — per-kernel invocation/pattern/time
//! shares, the measured PLF share of wall time, and (for the Cell and
//! GPU backends) the modeled DMA/PCIe transfer estimate and double-
//! buffer overlap ratio, i.e. the Figure 12 breakdown measured on this
//! machine instead of modeled.
//!
//! ```text
//! perf_report [--smoke | --full] [--out PATH]
//! ```
//!
//! * default: the 10_1K and 20_1K grid cells, 10 evaluations each;
//! * `--smoke`: one tiny 10-taxa × 200-pattern set, 2 evaluations —
//!   fast enough for `scripts/verify.sh`;
//! * `--full`: the paper's whole 16-cell grid (slow);
//! * `--out`: output path (default `BENCH_plf.json`).

use plf_bench::report::{
    plf_backend_report, write_json, PlfBenchReport, PlfDatasetReport, PLF_BENCH_SCHEMA_VERSION,
};
use plf_cellbe::CellBackend;
use plf_gpu::GpuBackend;
use plf_multicore::{PersistentPoolBackend, RayonBackend};
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::PlfCounters;
use plf_seqgen::{generate, paper_grid, DatasetSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Same generation seed as the figure binaries.
const SEED: u64 = 2009;

/// Threads for the host multi-core backends.
const THREADS: usize = 4;

fn backends(counters: &Arc<PlfCounters>) -> Vec<Box<dyn PlfBackend>> {
    let armed = || Arc::clone(counters);
    vec![
        Box::new(
            RayonBackend::new(THREADS)
                .expect("rayon pool")
                .with_metrics(armed()),
        ),
        Box::new(PersistentPoolBackend::new(THREADS).with_metrics(armed())),
        Box::new(CellBackend::qs20().with_metrics(armed())),
        Box::new(GpuBackend::gt8800().with_metrics(armed())),
    ]
}

fn run_dataset(spec: DatasetSpec, evals: u64) -> PlfDatasetReport {
    eprintln!("generating {} ({} taxa x {} patterns)...", spec.label(), spec.taxa, spec.patterns);
    let ds = generate(spec, SEED);
    let counters = PlfCounters::new();
    let mut reports = Vec::new();
    for mut backend in backends(&counters) {
        counters.reset();
        let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, plf_seqgen::default_model())
            .expect("likelihood over generated data");
        let t0 = Instant::now();
        let mut lnl = 0.0;
        for _ in 0..evals {
            lnl = eval
                .log_likelihood(&ds.tree, backend.as_mut())
                .expect("likelihood evaluation");
        }
        let wall = t0.elapsed().as_secs_f64();
        let report = plf_backend_report(&backend.name(), wall, &counters.snapshot());
        eprintln!(
            "  {:<22} lnL {:>12.4}  wall {:>8.3}s  PLF {:>5.1}%  transfer {:>5.1}%",
            report.backend, lnl, wall, report.plf_pct, report.transfer_pct
        );
        reports.push(report);
    }
    PlfDatasetReport {
        label: spec.label(),
        taxa: spec.taxa,
        patterns: spec.patterns,
        backends: reports,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_plf.json");
    let mut specs = vec![DatasetSpec::new(10, 1_000), DatasetSpec::new(20, 1_000)];
    let mut evals: u64 = 10;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                specs = vec![DatasetSpec::new(10, 200)];
                evals = 2;
            }
            "--full" => specs = paper_grid(),
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = PathBuf::from(p),
                    None => {
                        eprintln!("error: --out needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("error: unknown argument {other:?} (expected --smoke, --full, --out PATH)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = PlfBenchReport {
        schema_version: PLF_BENCH_SCHEMA_VERSION,
        evaluations: evals,
        datasets: specs.into_iter().map(|s| run_dataset(s, evals)).collect(),
    };
    if let Err(e) = write_json(&out, &report) {
        eprintln!("error: {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    ExitCode::SUCCESS
}

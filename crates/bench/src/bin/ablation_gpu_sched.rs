//! §3.4 ablation: GPU work distribution (reduction- vs entry-parallel).
//! Paper: entry-parallel is 2.5x faster on the PLF and worth +36% total.
use plf_bench::figures::ablation_gpu_sched;
use plf_bench::report::{json_mode, print_json};

fn main() {
    let rows = ablation_gpu_sched();
    if json_mode() {
        print_json(&rows);
        return;
    }
    println!("GPU work-distribution ablation (8800GT, real data set)");
    println!("{:<20} {:>12} {:>16}", "variant", "PLF (s)", "overall speedup");
    for r in &rows {
        println!("{:<20} {:>12.4} {:>15.2}x", r.variant, r.plf_s, r.overall_speedup);
    }
    println!(
        "\nPLF ratio (Reduction/Entry): {:.2}x   total-speedup gain: {:.0}%",
        rows[0].plf_s / rows[1].plf_s,
        100.0 * (rows[1].overall_speedup / rows[0].overall_speedup - 1.0)
    );
    println!("(paper: 2.5x PLF, +36% total; our total gain is smaller because");
    println!(" the un-overlapped PCIe transfers dominate either way — see EXPERIMENTS.md)");
}

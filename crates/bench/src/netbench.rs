//! The schema-v6 `net_service` benchmark: a real `plf-net` socket
//! server over loopback, flooded by the event-driven network load
//! generator, with end-to-end latency percentiles and the server-side
//! wire counters folded into `BENCH_plf.json`.

use plf_net::{NetLoadConfig, NetLoadReport, NetServer, NetServerConfig, ShutdownFlag};
use plf_phylo::kernels::PlfBackend;
use plf_phylo::metrics::{NetCounters, NetSnapshot};
use plf_seqgen::DatasetSpec;
use plfd::{PlfService, ServiceConfig};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Seed shared with the other benchmark sections.
const SEED: u64 = 2009;

/// The `net_service` section of `BENCH_plf.json` (schema v6).
#[derive(Debug, Clone, Serialize)]
pub struct NetServiceBench {
    /// Client-side load-generator report: completions, retries,
    /// lost-ack accounting, and p50/p99/p999 end-to-end latency.
    pub loadgen: NetLoadReport,
    /// Server-side wire counters (frames, bytes, per-tenant admission).
    pub counters: NetSnapshot,
}

/// Run the network benchmark: an in-process `PlfService` behind a
/// `NetServer` on an ephemeral loopback port, driven by
/// [`plf_net::loadgen`] over `connections` concurrent sockets.
pub fn net_service_section(
    factory: &dyn Fn() -> Box<dyn PlfBackend>,
    workers: usize,
    connections: usize,
    jobs: u64,
    taxa: usize,
    patterns: usize,
) -> Result<NetServiceBench, String> {
    let ds = plf_seqgen::generate(DatasetSpec::new(taxa, patterns), SEED);
    let model = plf_seqgen::default_model();
    let service = PlfService::new(
        ServiceConfig::default(),
        (0..workers.max(1)).map(|_| factory()).collect(),
    );
    let dataset = service.register_dataset(ds.data);
    let shutdown = ShutdownFlag::local();
    let counters = NetCounters::new();
    let server = NetServer::bind(
        "127.0.0.1:0",
        service,
        dataset,
        model,
        NetServerConfig::default(),
        shutdown.clone(),
        Arc::clone(&counters),
    )
    .map_err(|e| format!("net benchmark bind: {e}"))?;
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let cfg = NetLoadConfig {
        connections,
        jobs,
        tenants: 4,
        pipeline: 2,
        churn_every: 16,
        seed: SEED,
        deadline: Duration::from_secs(120),
        ..NetLoadConfig::default()
    };
    let loadgen = plf_net::loadgen::run(addr, &cfg);
    shutdown.request();
    let joined = handle.join().map_err(|_| "net benchmark server panicked")?;
    let (service, _report) = joined.map_err(|e| format!("net benchmark server: {e}"))?;
    let snapshot = counters.snapshot();
    service.shutdown();
    let loadgen = loadgen.map_err(|e| format!("net benchmark loadgen: {e}"))?;
    if loadgen.lost_acks > 0 {
        return Err(format!(
            "net benchmark lost {} acknowledged job(s)",
            loadgen.lost_acks
        ));
    }
    if loadgen.completed == 0 {
        return Err("net benchmark completed no jobs".into());
    }
    Ok(NetServiceBench {
        loadgen,
        counters: snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::kernels::ScalarBackend;

    #[test]
    fn tiny_net_benchmark_completes_cleanly() {
        let bench = net_service_section(&|| Box::new(ScalarBackend), 2, 4, 24, 6, 48)
            .expect("net benchmark");
        assert_eq!(bench.loadgen.completed, 24);
        assert_eq!(bench.loadgen.lost_acks, 0);
        assert!(bench.counters.frames_in > 0 && bench.counters.frames_out > 0);
        assert!(bench.loadgen.latency_ms.p999 >= bench.loadgen.latency_ms.p50);
    }
}

//! Text/JSON rendering shared by the figure binaries, plus the
//! `BENCH_plf.json` schema emitted by the `perf_report` binary.

use crate::figures::Series;
use plf_phylo::metrics::{Kernel, MetricsSnapshot};
use serde::Serialize;
use std::path::Path;

/// Should the binary emit JSON instead of a text table?
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Print any serializable payload as pretty JSON.
pub fn print_json<T: Serialize>(value: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("figure data serializes")
    );
}

/// Render speedup series as the paper's figure layout: data sets down
/// the rows (x-axis order), one column per system.
pub fn print_series_table(title: &str, series: &[Series]) {
    println!("{title}");
    print!("{:<10}", "dataset");
    for s in series {
        print!(" {:>14}", s.system);
    }
    println!();
    let n = series[0].points.len();
    for i in 0..n {
        print!("{:<10}", series[0].points[i].0);
        for s in series {
            print!(" {:>14.2}", s.points[i].1);
        }
        println!();
    }
}

/// Schema version stamped into `BENCH_plf.json`.
///
/// v2 added the mandatory top-level `service` section (the plfd
/// serial-vs-batched comparison); v3 added the self-healing counters
/// (breaker transitions, watchdog respawns, sheds, probe outcomes) to
/// the service section's `batched_service` snapshot; v4 added the
/// crash-durability counters (journal appends, replayed / deduped
/// jobs, truncated records) to the same snapshot; v5 added the CLV
/// reuse cache counters (`clv_cache_hits`/`clv_cache_misses`) that
/// the fused dispatch path maintains; v6 added the mandatory
/// `net_service` section (the plf-net socket benchmark: loadgen
/// latency percentiles plus server-side wire counters). Older
/// documents are rejected by [`validate_bench_json`].
pub const PLF_BENCH_SCHEMA_VERSION: u32 = 6;

/// Top level of `BENCH_plf.json`: measured PLF observability numbers
/// (from [`plf_phylo::metrics::PlfCounters`]) for every backend over a
/// set of data sets, plus the plfd batching-service benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct PlfBenchReport {
    /// Schema version; bump on incompatible layout changes.
    pub schema_version: u32,
    /// Full likelihood evaluations run per backend per data set.
    pub evaluations: u64,
    /// One entry per data set, in run order.
    pub datasets: Vec<PlfDatasetReport>,
    /// Schema v2: the plfd service benchmark — the same seeded job
    /// stream evaluated directly, through the service one job at a
    /// time, and through the service fully batched.
    pub service: plfd::ServiceBenchmark,
    /// Schema v6: the plf-net socket benchmark — the same service
    /// behind a real loopback socket, flooded by the event-driven
    /// network load generator.
    pub net_service: crate::netbench::NetServiceBench,
}

/// Top-level keys the v2 `service` section must carry. Kept in sync
/// with [`plfd::ServiceBenchmark`] by the `validate_accepts_emitted_v2`
/// test, which round-trips a real report through serialization.
const SERVICE_REQUIRED_KEYS: [&str; 6] = [
    "jobs",
    "serial_jobs_per_sec",
    "batched_jobs_per_sec",
    "speedup_batched_over_serial",
    "bit_mismatches",
    "batched_service",
];

/// Self-healing (v3), crash-durability (v4), and CLV-cache (v5)
/// counters the `service.batched_service` snapshot must carry (from
/// [`plf_phylo::metrics::ServiceSnapshot`]); kept in sync by the same
/// round-trip test.
const BATCHED_SERVICE_REQUIRED_KEYS: [&str; 15] = [
    "shed",
    "requeued_jobs",
    "watchdog_respawns",
    "watchdog_hangs",
    "breaker_opened",
    "breaker_half_opened",
    "breaker_closed",
    "probes_ok",
    "probes_failed",
    "journal_appends",
    "replayed_jobs",
    "deduped_jobs",
    "truncated_records",
    "clv_cache_hits",
    "clv_cache_misses",
];

/// Keys the v6 `net_service.loadgen` report must carry (from
/// [`plf_net::NetLoadReport`]); kept in sync by the round-trip test.
const NET_LOADGEN_REQUIRED_KEYS: [&str; 6] = [
    "connections",
    "completed",
    "lost_acks",
    "retries",
    "throughput_jobs_per_s",
    "latency_ms",
];

/// Percentiles the v6 `net_service.loadgen.latency_ms` object must
/// carry (from `plf_net::loadgen::LatencyMs`).
const NET_LATENCY_REQUIRED_KEYS: [&str; 3] = ["p50", "p99", "p999"];

/// Keys the v6 `net_service.counters` snapshot must carry (from
/// [`plf_phylo::metrics::NetSnapshot`]).
const NET_COUNTERS_REQUIRED_KEYS: [&str; 5] = [
    "connections_opened",
    "frames_in",
    "frames_out",
    "protocol_errors",
    "tenants",
];

/// Validate a `BENCH_plf.json` document against the current schema,
/// rejecting version mismatches loudly (a v1 file with no `service`
/// section names both versions in the error instead of failing on a
/// missing key later).
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    // The vendored serde_json models objects as ordered key/value
    // pairs, so field lookup is a linear scan.
    fn field<'a>(obj: &'a [(String, serde_json::Value)], key: &str) -> Option<&'a serde_json::Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("BENCH_plf.json is not valid JSON: {e}"))?;
    let top = doc
        .as_object()
        .ok_or("BENCH_plf.json: top level must be an object")?;
    let version = field(top, "schema_version")
        .and_then(serde_json::Value::as_u64)
        .ok_or("BENCH_plf.json: missing numeric schema_version")?;
    if version != u64::from(PLF_BENCH_SCHEMA_VERSION) {
        return Err(format!(
            "BENCH_plf.json schema mismatch: file is v{version}, this tree expects \
             v{PLF_BENCH_SCHEMA_VERSION} (v2 added the mandatory `service` section, v3 its \
             self-healing counters, v4 its crash-durability counters, v5 its CLV-cache \
             counters, v6 the `net_service` socket benchmark; regenerate with \
             `cargo run --release -p plf-bench --bin perf_report`)"
        ));
    }
    let datasets = field(top, "datasets")
        .and_then(serde_json::Value::as_array)
        .ok_or("BENCH_plf.json: missing datasets array")?;
    if datasets.is_empty() {
        return Err("BENCH_plf.json: datasets array is empty".into());
    }
    for (i, ds) in datasets.iter().enumerate() {
        let backends = ds
            .as_object()
            .and_then(|o| field(o, "backends"))
            .and_then(serde_json::Value::as_array);
        if backends.is_none_or(Vec::is_empty) {
            return Err(format!("BENCH_plf.json: datasets[{i}] has no backends"));
        }
    }
    let service = field(top, "service")
        .and_then(serde_json::Value::as_object)
        .ok_or("BENCH_plf.json: v2 requires a `service` object (file looks v1-shaped)")?;
    for key in SERVICE_REQUIRED_KEYS {
        if field(service, key).is_none() {
            return Err(format!("BENCH_plf.json: service section missing `{key}`"));
        }
    }
    let batched = field(service, "batched_service")
        .and_then(serde_json::Value::as_object)
        .ok_or("BENCH_plf.json: service.batched_service must be an object")?;
    for key in BATCHED_SERVICE_REQUIRED_KEYS {
        if field(batched, key).is_none() {
            return Err(format!(
                "BENCH_plf.json: service.batched_service missing required counter `{key}` \
                 (file predates schema v{PLF_BENCH_SCHEMA_VERSION})"
            ));
        }
    }
    let net = field(top, "net_service")
        .and_then(serde_json::Value::as_object)
        .ok_or("BENCH_plf.json: v6 requires a `net_service` object (file looks v5-shaped)")?;
    let net_loadgen = field(net, "loadgen")
        .and_then(serde_json::Value::as_object)
        .ok_or("BENCH_plf.json: net_service.loadgen must be an object")?;
    for key in NET_LOADGEN_REQUIRED_KEYS {
        if field(net_loadgen, key).is_none() {
            return Err(format!("BENCH_plf.json: net_service.loadgen missing `{key}`"));
        }
    }
    let latency = field(net_loadgen, "latency_ms")
        .and_then(serde_json::Value::as_object)
        .ok_or("BENCH_plf.json: net_service.loadgen.latency_ms must be an object")?;
    for key in NET_LATENCY_REQUIRED_KEYS {
        if field(latency, key).is_none() {
            return Err(format!(
                "BENCH_plf.json: net_service.loadgen.latency_ms missing percentile `{key}`"
            ));
        }
    }
    let net_counters = field(net, "counters")
        .and_then(serde_json::Value::as_object)
        .ok_or("BENCH_plf.json: net_service.counters must be an object")?;
    for key in NET_COUNTERS_REQUIRED_KEYS {
        if field(net_counters, key).is_none() {
            return Err(format!(
                "BENCH_plf.json: net_service.counters missing `{key}`"
            ));
        }
    }
    Ok(())
}

/// Per-data-set section of `BENCH_plf.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PlfDatasetReport {
    /// Grid label, e.g. `10_1K`.
    pub label: String,
    /// Taxa (tree leaves).
    pub taxa: usize,
    /// Distinct alignment patterns.
    pub patterns: usize,
    /// One entry per backend, in run order.
    pub backends: Vec<PlfBackendReport>,
}

/// One kernel's share of a backend's PLF time.
#[derive(Debug, Clone, Serialize)]
pub struct PlfKernelShare {
    /// Kernel label (`down` / `root` / `scale`).
    pub kernel: &'static str,
    /// Calls.
    pub invocations: u64,
    /// Patterns processed across all calls.
    pub patterns: u64,
    /// Wall seconds inside the kernel.
    pub seconds: f64,
    /// Fraction of the backend's total PLF seconds (0 when no PLF time
    /// was recorded).
    pub share: f64,
}

/// Per-backend section of `BENCH_plf.json` — the Figure 12 breakdown
/// (PLF share plus a transfer-time estimate) with per-kernel detail.
#[derive(Debug, Clone, Serialize)]
pub struct PlfBackendReport {
    /// Backend name as reported by `PlfBackend::name()`.
    pub backend: String,
    /// Measured wall seconds for the whole evaluation loop.
    pub wall_seconds: f64,
    /// Measured wall seconds inside PLF kernels.
    pub plf_seconds: f64,
    /// `plf_seconds` as a percentage of `wall_seconds` (the Figure 12
    /// "PLF" bar; the rest is the harness's "Remaining").
    pub plf_pct: f64,
    /// Modeled transfer seconds if fully serialized (Cell DMA / GPU
    /// PCIe); zero for host-memory backends.
    pub transfer_seconds: f64,
    /// Modeled transfer seconds left exposed after double-buffer
    /// overlap.
    pub transfer_exposed_seconds: f64,
    /// Exposed transfer time as a percentage of the modeled
    /// PLF + transfer budget (the Figure 12 "PCIe" bar). Modeled, not
    /// wall-clock: the functional devices compute on the host, so their
    /// bus time exists only in the calibration model.
    pub transfer_pct: f64,
    /// Fraction of serialized transfer time hidden by double buffering.
    pub overlap_ratio: f64,
    /// Bytes moved toward the device.
    pub transfer_bytes_in: u64,
    /// Bytes moved back to the host.
    pub transfer_bytes_out: u64,
    /// Hardware transfer commands (Cell: ≤16 KB each).
    pub transfer_commands: u64,
    /// Per-kernel invocation/pattern/time shares.
    pub kernels: Vec<PlfKernelShare>,
    /// Patterns actually rescaled by scaler calls.
    pub rescaled_patterns: u64,
    /// Tree evaluations recorded by the backend.
    pub evaluations: u64,
}

/// Fold a counter snapshot plus the measured wall time of the run into
/// one `BENCH_plf.json` backend entry.
pub fn plf_backend_report(
    backend: &str,
    wall_seconds: f64,
    snapshot: &MetricsSnapshot,
) -> PlfBackendReport {
    let plf_seconds = snapshot.plf_seconds();
    let exposed = snapshot.transfer.exposed_seconds();
    let budget = plf_seconds + exposed;
    let kernels = Kernel::ALL
        .iter()
        .map(|&k| {
            let cell = snapshot.kernel(k);
            PlfKernelShare {
                kernel: k.label(),
                invocations: cell.invocations,
                patterns: cell.patterns,
                seconds: cell.seconds,
                share: if plf_seconds > 0.0 { cell.seconds / plf_seconds } else { 0.0 },
            }
        })
        .collect();
    PlfBackendReport {
        backend: backend.to_string(),
        wall_seconds,
        plf_seconds,
        plf_pct: if wall_seconds > 0.0 { 100.0 * plf_seconds / wall_seconds } else { 0.0 },
        transfer_seconds: snapshot.transfer.seconds,
        transfer_exposed_seconds: exposed,
        transfer_pct: if budget > 0.0 { 100.0 * exposed / budget } else { 0.0 },
        overlap_ratio: snapshot.transfer.overlap_ratio(),
        transfer_bytes_in: snapshot.transfer.bytes_in,
        transfer_bytes_out: snapshot.transfer.bytes_out,
        transfer_commands: snapshot.transfer.commands,
        kernels,
        rescaled_patterns: snapshot.rescaled_patterns,
        evaluations: snapshot.evaluations,
    }
}

/// Write any serializable payload as pretty JSON (trailing newline),
/// creating parent directories as needed.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = serde_json::to_string_pretty(value).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::metrics::PlfCounters;
    use std::time::Duration;

    #[test]
    fn backend_report_computes_shares() {
        let c = PlfCounters::new();
        c.record_kernel(Kernel::Down, 1000, Duration::from_millis(3));
        c.record_kernel(Kernel::Root, 1000, Duration::from_millis(1));
        c.record_transfer(4096, 2048, 3, 2e-3);
        c.record_overlap_saved(1e-3);
        c.record_rescaled(17);
        c.record_evaluation();
        let r = plf_backend_report("qs20", 0.008, &c.snapshot());
        assert_eq!(r.backend, "qs20");
        assert!((r.plf_seconds - 4e-3).abs() < 1e-9);
        assert!((r.plf_pct - 50.0).abs() < 1e-6);
        let down = r.kernels.iter().find(|k| k.kernel == "down").unwrap();
        assert!((down.share - 0.75).abs() < 1e-9);
        assert_eq!(r.kernels.iter().map(|k| k.invocations).sum::<u64>(), 2);
        // Exposed transfer: 2ms - 1ms hidden = 1ms; budget 4+1 = 5ms.
        assert!((r.transfer_exposed_seconds - 1e-3).abs() < 1e-9);
        assert!((r.transfer_pct - 20.0).abs() < 1e-6);
        assert!((r.overlap_ratio - 0.5).abs() < 1e-9);
        assert_eq!(r.transfer_bytes_in, 4096);
        assert_eq!(r.rescaled_patterns, 17);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn backend_report_safe_on_empty_counters() {
        let r = plf_backend_report("scalar", 0.0, &MetricsSnapshot::default());
        assert_eq!(r.plf_pct, 0.0);
        assert_eq!(r.transfer_pct, 0.0);
        for k in &r.kernels {
            assert_eq!(k.share, 0.0);
        }
    }

    #[test]
    fn write_json_creates_parents_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("plf-report-{}", std::process::id()));
        let path = dir.join("nested/out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), "[1,2,3]");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_stale_shaped_documents() {
        // A v1 file: schema_version 1, no `service` section.
        let v1 = r#"{"schema_version": 1, "evaluations": 10, "datasets": [{"label": "10_1K", "backends": [{"backend": "scalar"}]}]}"#;
        let err = validate_bench_json(v1).expect_err("v1 must be rejected");
        assert!(err.contains("v1") && err.contains("v6"), "names both versions: {err}");

        // A v5 file is rejected by version before shape.
        let v5 = r#"{"schema_version": 5, "evaluations": 10, "datasets": [{"label": "10_1K", "backends": [{"backend": "scalar"}]}]}"#;
        let err = validate_bench_json(v5).expect_err("v5 must be rejected");
        assert!(err.contains("v5") && err.contains("v6"), "names both versions: {err}");

        // Right version but still v1-shaped (no service section).
        let hybrid = r#"{"schema_version": 6, "evaluations": 10, "datasets": [{"label": "10_1K", "backends": [{"backend": "scalar"}]}]}"#;
        let err = validate_bench_json(hybrid).expect_err("missing service must be rejected");
        assert!(err.contains("service"), "{err}");

        // Right version, service present, but the batched_service
        // snapshot predates the self-healing counters (v2-shaped).
        let stale_snapshot = r#"{"schema_version": 6, "evaluations": 10,
            "datasets": [{"label": "10_1K", "backends": [{"backend": "scalar"}]}],
            "service": {"jobs": 4, "serial_jobs_per_sec": 1.0, "batched_jobs_per_sec": 2.0,
                        "speedup_batched_over_serial": 2.0, "bit_mismatches": 0,
                        "batched_service": {"submitted": 4}}}"#;
        let err = validate_bench_json(stale_snapshot).expect_err("stale snapshot must be rejected");
        assert!(err.contains("shed"), "{err}");

        let full_batched = r#"{"submitted": 4, "shed": 0, "requeued_jobs": 0,
                            "watchdog_respawns": 0, "watchdog_hangs": 0, "breaker_opened": 0,
                            "breaker_half_opened": 0, "breaker_closed": 0,
                            "probes_ok": 0, "probes_failed": 0, "journal_appends": 0,
                            "journal_fsyncs": 0, "journal_rotations": 0,
                            "journal_compactions": 0, "replayed_jobs": 0,
                            "deduped_jobs": 0, "truncated_records": 0,
                            "clv_cache_hits": 0, "clv_cache_misses": 0}"#;

        // Right version, self-healing and crash-durability counters
        // present, but the CLV-cache counters are missing (v4-shaped
        // snapshot).
        let v4_snapshot = r#"{"schema_version": 6, "evaluations": 10,
            "datasets": [{"label": "10_1K", "backends": [{"backend": "scalar"}]}],
            "service": {"jobs": 4, "serial_jobs_per_sec": 1.0, "batched_jobs_per_sec": 2.0,
                        "speedup_batched_over_serial": 2.0, "bit_mismatches": 0,
                        "batched_service": {"submitted": 4, "shed": 0, "requeued_jobs": 0,
                            "watchdog_respawns": 0, "watchdog_hangs": 0, "breaker_opened": 0,
                            "breaker_half_opened": 0, "breaker_closed": 0,
                            "probes_ok": 0, "probes_failed": 0, "journal_appends": 0,
                            "journal_fsyncs": 0, "journal_rotations": 0,
                            "journal_compactions": 0, "replayed_jobs": 0,
                            "deduped_jobs": 0, "truncated_records": 0}}}"#;
        let err = validate_bench_json(v4_snapshot).expect_err("v4-shaped snapshot must be rejected");
        assert!(err.contains("clv_cache_hits"), "{err}");

        // Right version, full service section, but no net_service
        // (v5-shaped file with a bumped version stamp).
        let no_net = format!(
            r#"{{"schema_version": 6, "evaluations": 10,
            "datasets": [{{"label": "10_1K", "backends": [{{"backend": "scalar"}}]}}],
            "service": {{"jobs": 4, "serial_jobs_per_sec": 1.0, "batched_jobs_per_sec": 2.0,
                        "speedup_batched_over_serial": 2.0, "bit_mismatches": 0,
                        "batched_service": {full_batched}}}}}"#
        );
        let err = validate_bench_json(&no_net).expect_err("missing net_service must be rejected");
        assert!(err.contains("net_service"), "{err}");

        // net_service present but its loadgen report lacks the latency
        // percentiles.
        let no_latency = format!(
            r#"{{"schema_version": 6, "evaluations": 10,
            "datasets": [{{"label": "10_1K", "backends": [{{"backend": "scalar"}}]}}],
            "service": {{"jobs": 4, "serial_jobs_per_sec": 1.0, "batched_jobs_per_sec": 2.0,
                        "speedup_batched_over_serial": 2.0, "bit_mismatches": 0,
                        "batched_service": {full_batched}}},
            "net_service": {{"loadgen": {{"connections": 4, "completed": 4, "lost_acks": 0,
                                          "retries": 0, "throughput_jobs_per_s": 1.0}},
                             "counters": {{"connections_opened": 4, "frames_in": 1,
                                           "frames_out": 1, "protocol_errors": 0,
                                           "tenants": []}}}}}}"#
        );
        let err =
            validate_bench_json(&no_latency).expect_err("missing latency_ms must be rejected");
        assert!(err.contains("latency_ms"), "{err}");

        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json(r#"{"schema_version": 6, "datasets": [], "service": {}}"#).is_err());
    }

    #[test]
    fn validate_accepts_emitted_v2() {
        // Round-trip a real report so the validator stays in sync with
        // the Rust types that emit the file.
        let service = plfd::loadgen::benchmark_batching(
            &|| Box::new(plf_phylo::kernels::ScalarBackend),
            1,
            4,
            16,
            2,
            3,
        )
        .expect("service benchmark");
        let net_service = crate::netbench::net_service_section(
            &|| Box::new(plf_phylo::kernels::ScalarBackend),
            1,
            2,
            8,
            4,
            16,
        )
        .expect("net benchmark");
        let report = PlfBenchReport {
            schema_version: PLF_BENCH_SCHEMA_VERSION,
            evaluations: 1,
            datasets: vec![PlfDatasetReport {
                label: "4_16".into(),
                taxa: 4,
                patterns: 16,
                backends: vec![plf_backend_report("scalar", 0.1, &MetricsSnapshot::default())],
            }],
            service,
            net_service,
        };
        let text = serde_json::to_string_pretty(&report).unwrap();
        validate_bench_json(&text).expect("emitted report validates");
    }

    #[test]
    fn series_table_renders() {
        let series = vec![Series {
            system: "X".into(),
            points: vec![("10_1K".into(), 1.5), ("20_1K".into(), 2.0)],
        }];
        // Smoke: must not panic.
        print_series_table("t", &series);
        print_json(&series);
    }
}

//! Text/JSON rendering shared by the figure binaries.

use crate::figures::Series;
use serde::Serialize;

/// Should the binary emit JSON instead of a text table?
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Print any serializable payload as pretty JSON.
pub fn print_json<T: Serialize>(value: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("figure data serializes")
    );
}

/// Render speedup series as the paper's figure layout: data sets down
/// the rows (x-axis order), one column per system.
pub fn print_series_table(title: &str, series: &[Series]) {
    println!("{title}");
    print!("{:<10}", "dataset");
    for s in series {
        print!(" {:>14}", s.system);
    }
    println!();
    let n = series[0].points.len();
    for i in 0..n {
        print!("{:<10}", series[0].points[i].0);
        for s in series {
            print!(" {:>14.2}", s.points[i].1);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_table_renders() {
        let series = vec![Series {
            system: "X".into(),
            points: vec![("10_1K".into(), 1.5), ("20_1K".into(), 2.0)],
        }];
        // Smoke: must not panic.
        print_series_table("t", &series);
        print_json(&series);
    }
}

//! Text/JSON rendering shared by the figure binaries, plus the
//! `BENCH_plf.json` schema emitted by the `perf_report` binary.

use crate::figures::Series;
use plf_phylo::metrics::{Kernel, MetricsSnapshot};
use serde::Serialize;
use std::path::Path;

/// Should the binary emit JSON instead of a text table?
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Print any serializable payload as pretty JSON.
pub fn print_json<T: Serialize>(value: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("figure data serializes")
    );
}

/// Render speedup series as the paper's figure layout: data sets down
/// the rows (x-axis order), one column per system.
pub fn print_series_table(title: &str, series: &[Series]) {
    println!("{title}");
    print!("{:<10}", "dataset");
    for s in series {
        print!(" {:>14}", s.system);
    }
    println!();
    let n = series[0].points.len();
    for i in 0..n {
        print!("{:<10}", series[0].points[i].0);
        for s in series {
            print!(" {:>14.2}", s.points[i].1);
        }
        println!();
    }
}

/// Schema version stamped into `BENCH_plf.json`.
pub const PLF_BENCH_SCHEMA_VERSION: u32 = 1;

/// Top level of `BENCH_plf.json`: measured PLF observability numbers
/// (from [`plf_phylo::metrics::PlfCounters`]) for every backend over a
/// set of data sets.
#[derive(Debug, Clone, Serialize)]
pub struct PlfBenchReport {
    /// Schema version; bump on incompatible layout changes.
    pub schema_version: u32,
    /// Full likelihood evaluations run per backend per data set.
    pub evaluations: u64,
    /// One entry per data set, in run order.
    pub datasets: Vec<PlfDatasetReport>,
}

/// Per-data-set section of `BENCH_plf.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PlfDatasetReport {
    /// Grid label, e.g. `10_1K`.
    pub label: String,
    /// Taxa (tree leaves).
    pub taxa: usize,
    /// Distinct alignment patterns.
    pub patterns: usize,
    /// One entry per backend, in run order.
    pub backends: Vec<PlfBackendReport>,
}

/// One kernel's share of a backend's PLF time.
#[derive(Debug, Clone, Serialize)]
pub struct PlfKernelShare {
    /// Kernel label (`down` / `root` / `scale`).
    pub kernel: &'static str,
    /// Calls.
    pub invocations: u64,
    /// Patterns processed across all calls.
    pub patterns: u64,
    /// Wall seconds inside the kernel.
    pub seconds: f64,
    /// Fraction of the backend's total PLF seconds (0 when no PLF time
    /// was recorded).
    pub share: f64,
}

/// Per-backend section of `BENCH_plf.json` — the Figure 12 breakdown
/// (PLF share plus a transfer-time estimate) with per-kernel detail.
#[derive(Debug, Clone, Serialize)]
pub struct PlfBackendReport {
    /// Backend name as reported by `PlfBackend::name()`.
    pub backend: String,
    /// Measured wall seconds for the whole evaluation loop.
    pub wall_seconds: f64,
    /// Measured wall seconds inside PLF kernels.
    pub plf_seconds: f64,
    /// `plf_seconds` as a percentage of `wall_seconds` (the Figure 12
    /// "PLF" bar; the rest is the harness's "Remaining").
    pub plf_pct: f64,
    /// Modeled transfer seconds if fully serialized (Cell DMA / GPU
    /// PCIe); zero for host-memory backends.
    pub transfer_seconds: f64,
    /// Modeled transfer seconds left exposed after double-buffer
    /// overlap.
    pub transfer_exposed_seconds: f64,
    /// Exposed transfer time as a percentage of the modeled
    /// PLF + transfer budget (the Figure 12 "PCIe" bar). Modeled, not
    /// wall-clock: the functional devices compute on the host, so their
    /// bus time exists only in the calibration model.
    pub transfer_pct: f64,
    /// Fraction of serialized transfer time hidden by double buffering.
    pub overlap_ratio: f64,
    /// Bytes moved toward the device.
    pub transfer_bytes_in: u64,
    /// Bytes moved back to the host.
    pub transfer_bytes_out: u64,
    /// Hardware transfer commands (Cell: ≤16 KB each).
    pub transfer_commands: u64,
    /// Per-kernel invocation/pattern/time shares.
    pub kernels: Vec<PlfKernelShare>,
    /// Patterns actually rescaled by scaler calls.
    pub rescaled_patterns: u64,
    /// Tree evaluations recorded by the backend.
    pub evaluations: u64,
}

/// Fold a counter snapshot plus the measured wall time of the run into
/// one `BENCH_plf.json` backend entry.
pub fn plf_backend_report(
    backend: &str,
    wall_seconds: f64,
    snapshot: &MetricsSnapshot,
) -> PlfBackendReport {
    let plf_seconds = snapshot.plf_seconds();
    let exposed = snapshot.transfer.exposed_seconds();
    let budget = plf_seconds + exposed;
    let kernels = Kernel::ALL
        .iter()
        .map(|&k| {
            let cell = snapshot.kernel(k);
            PlfKernelShare {
                kernel: k.label(),
                invocations: cell.invocations,
                patterns: cell.patterns,
                seconds: cell.seconds,
                share: if plf_seconds > 0.0 { cell.seconds / plf_seconds } else { 0.0 },
            }
        })
        .collect();
    PlfBackendReport {
        backend: backend.to_string(),
        wall_seconds,
        plf_seconds,
        plf_pct: if wall_seconds > 0.0 { 100.0 * plf_seconds / wall_seconds } else { 0.0 },
        transfer_seconds: snapshot.transfer.seconds,
        transfer_exposed_seconds: exposed,
        transfer_pct: if budget > 0.0 { 100.0 * exposed / budget } else { 0.0 },
        overlap_ratio: snapshot.transfer.overlap_ratio(),
        transfer_bytes_in: snapshot.transfer.bytes_in,
        transfer_bytes_out: snapshot.transfer.bytes_out,
        transfer_commands: snapshot.transfer.commands,
        kernels,
        rescaled_patterns: snapshot.rescaled_patterns,
        evaluations: snapshot.evaluations,
    }
}

/// Write any serializable payload as pretty JSON (trailing newline),
/// creating parent directories as needed.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = serde_json::to_string_pretty(value).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::metrics::PlfCounters;
    use std::time::Duration;

    #[test]
    fn backend_report_computes_shares() {
        let c = PlfCounters::new();
        c.record_kernel(Kernel::Down, 1000, Duration::from_millis(3));
        c.record_kernel(Kernel::Root, 1000, Duration::from_millis(1));
        c.record_transfer(4096, 2048, 3, 2e-3);
        c.record_overlap_saved(1e-3);
        c.record_rescaled(17);
        c.record_evaluation();
        let r = plf_backend_report("qs20", 0.008, &c.snapshot());
        assert_eq!(r.backend, "qs20");
        assert!((r.plf_seconds - 4e-3).abs() < 1e-9);
        assert!((r.plf_pct - 50.0).abs() < 1e-6);
        let down = r.kernels.iter().find(|k| k.kernel == "down").unwrap();
        assert!((down.share - 0.75).abs() < 1e-9);
        assert_eq!(r.kernels.iter().map(|k| k.invocations).sum::<u64>(), 2);
        // Exposed transfer: 2ms - 1ms hidden = 1ms; budget 4+1 = 5ms.
        assert!((r.transfer_exposed_seconds - 1e-3).abs() < 1e-9);
        assert!((r.transfer_pct - 20.0).abs() < 1e-6);
        assert!((r.overlap_ratio - 0.5).abs() < 1e-9);
        assert_eq!(r.transfer_bytes_in, 4096);
        assert_eq!(r.rescaled_patterns, 17);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn backend_report_safe_on_empty_counters() {
        let r = plf_backend_report("scalar", 0.0, &MetricsSnapshot::default());
        assert_eq!(r.plf_pct, 0.0);
        assert_eq!(r.transfer_pct, 0.0);
        for k in &r.kernels {
            assert_eq!(k.share, 0.0);
        }
    }

    #[test]
    fn write_json_creates_parents_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("plf-report-{}", std::process::id()));
        let path = dir.join("nested/out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), "[1,2,3]");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn series_table_renders() {
        let series = vec![Series {
            system: "X".into(),
            points: vec![("10_1K".into(), 1.5), ("20_1K".into(), 2.0)],
        }];
        // Smoke: must not panic.
        print_series_table("t", &series);
        print_json(&series);
    }
}

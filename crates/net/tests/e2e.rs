//! End-to-end tests: a real `NetServer` on a loopback socket, a real
//! `PlfService` with scalar workers behind it, and real clients in
//! front — the protocol, the reactor, fair admission, retry, drain,
//! and the network load generator all exercised through the socket.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use plf_net::loadgen::{self, NetLoadConfig};
use plf_net::{
    NetClient, NetServer, NetServerConfig, NetServerReport, Response, ShutdownFlag,
    SubmitParams, TenantPolicy,
};
use plf_phylo::kernels::{PlfBackend, ScalarBackend};
use plf_phylo::metrics::NetCounters;
use plf_phylo::model::SiteModel;
use plf_phylo::likelihood::TreeLikelihood;
use plfd::{PlfService, RetryPolicy, ServiceConfig};
use plf_seqgen::DatasetSpec;

struct TestServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    counters: Arc<NetCounters>,
    handle: JoinHandle<std::io::Result<(PlfService, NetServerReport)>>,
}

impl TestServer {
    fn stop(self) -> (PlfService, NetServerReport) {
        self.shutdown.request();
        let (service, report) = self
            .handle
            .join()
            .expect("server thread")
            .expect("server run");
        (service, report)
    }
}

fn start_server(net_cfg: NetServerConfig) -> (TestServer, Vec<String>, SiteModel) {
    let ds = plf_seqgen::generate(DatasetSpec::new(6, 48), 17);
    let model = plf_seqgen::default_model();
    let service = PlfService::new(
        ServiceConfig::default(),
        vec![
            Box::new(ScalarBackend) as Box<dyn PlfBackend>,
            Box::new(ScalarBackend) as Box<dyn PlfBackend>,
        ],
    );
    let taxa = ds.data.taxa().to_vec();
    let dataset = service.register_dataset(ds.data);
    let shutdown = ShutdownFlag::local();
    let counters = NetCounters::new();
    let server = NetServer::bind(
        "127.0.0.1:0",
        service,
        dataset,
        model.clone(),
        net_cfg,
        shutdown.clone(),
        Arc::clone(&counters),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (
        TestServer {
            addr,
            shutdown,
            counters,
            handle,
        },
        taxa,
        model,
    )
}

fn submit_params(tenant: &str, taxa: &[String], seed: u64) -> SubmitParams {
    SubmitParams {
        tenant: tenant.to_string(),
        high_priority: false,
        deadline: None,
        idempotency_key: None,
        newick: loadgen::ladder_newick(taxa, seed),
    }
}

#[test]
fn greeting_carries_service_shape_and_taxa() {
    let (server, taxa, _model) = start_server(NetServerConfig::default());
    let client = NetClient::connect(server.addr).expect("connect");
    let greeting = client.greeting();
    assert_eq!(greeting.taxa, taxa);
    assert_eq!(greeting.workers, 2);
    assert!(greeting.queue_capacity > 0);
    assert!(greeting.unit_patterns > 0);
    drop(client);
    let (service, report) = server.stop();
    assert_eq!(report.accepted, 1);
    service.shutdown();
}

#[test]
fn submit_completes_with_bit_identical_likelihood() {
    let (server, taxa, model) = start_server(NetServerConfig::default());
    let mut client = NetClient::connect(server.addr).expect("connect");

    let params = submit_params("tenant-a", &taxa, 42);
    let response = client
        .submit_and_wait(&params, &RetryPolicy::default())
        .expect("submit");
    let Response::Completed {
        ln_likelihood,
        backend,
        ..
    } = &response
    else {
        panic!("expected Completed, got {response:?}");
    };
    assert!(ln_likelihood.is_finite());
    assert!(!backend.is_empty());

    // The wire result must be bit-identical to a direct in-process
    // evaluation of the same tree on the same dataset.
    let ds = plf_seqgen::generate(DatasetSpec::new(6, 48), 17);
    let tree =
        plf_phylo::tree::Tree::from_newick(&params.newick).expect("newick");
    let mut eval = TreeLikelihood::new(&tree, &ds.data, model).expect("workspace");
    let mut backend_direct = ScalarBackend;
    let direct = eval
        .log_likelihood(&tree, &mut backend_direct)
        .expect("direct eval");
    assert_eq!(direct.to_bits(), ln_likelihood.to_bits());

    let (service, report) = server.stop();
    assert_eq!(report.completed, 1);
    assert_eq!(report.unresolved, 0);
    service.shutdown();
}

#[test]
fn multiple_jobs_on_one_connection_interleave() {
    let (server, taxa, _model) = start_server(NetServerConfig::default());
    let mut client = NetClient::connect(server.addr).expect("connect");
    let mut ids = Vec::new();
    for i in 0..8u64 {
        let params = submit_params("tenant-a", &taxa, 100 + i);
        ids.push(client.submit(&params).expect("submit"));
    }
    for id in ids {
        let response = client.wait_for(id).expect("response");
        assert!(
            matches!(response, Response::Completed { .. }),
            "job {id}: {response:?}"
        );
    }
    let (service, report) = server.stop();
    assert_eq!(report.completed, 8);
    service.shutdown();
}

#[test]
fn auto_idempotency_keys_do_not_collide_across_connections() {
    // Two connections, each letting submit_and_wait auto-generate its
    // idempotency key, submit *different* trees. The server dedups
    // keys globally, so connection-local keys (the old `net-1`) would
    // silently hand the second client the first client's result.
    let (server, taxa, model) = start_server(NetServerConfig::default());
    let mut a = NetClient::connect(server.addr).expect("connect a");
    let mut b = NetClient::connect(server.addr).expect("connect b");
    let params_a = submit_params("tenant-a", &taxa, 1001);
    let params_b = submit_params("tenant-b", &taxa, 2002);
    let ra = a
        .submit_and_wait(&params_a, &RetryPolicy::default())
        .expect("submit a");
    let rb = b
        .submit_and_wait(&params_b, &RetryPolicy::default())
        .expect("submit b");
    let (Response::Completed { ln_likelihood: la, .. }, Response::Completed { ln_likelihood: lb, .. }) =
        (&ra, &rb)
    else {
        panic!("expected two Completed, got {ra:?} / {rb:?}");
    };
    // Each client must get the likelihood of *its own* tree.
    let ds = plf_seqgen::generate(DatasetSpec::new(6, 48), 17);
    for (params, wire) in [(&params_a, *la), (&params_b, *lb)] {
        let tree = plf_phylo::tree::Tree::from_newick(&params.newick).expect("newick");
        let mut eval = TreeLikelihood::new(&tree, &ds.data, model.clone()).expect("workspace");
        let direct = eval
            .log_likelihood(&tree, &mut ScalarBackend)
            .expect("direct eval");
        assert_eq!(direct.to_bits(), wire.to_bits());
    }
    let (service, report) = server.stop();
    assert_eq!(report.completed, 2, "both jobs must actually execute");
    service.shutdown();
}

#[test]
fn cancel_of_unknown_job_is_idempotent() {
    let (server, _taxa, _model) = start_server(NetServerConfig::default());
    let mut client = NetClient::connect(server.addr).expect("connect");
    client.cancel(999).expect("cancel write");
    let response = client.wait_for(999).expect("response");
    assert!(matches!(response, Response::Cancelled { client_job: 999 }));
    let (service, _report) = server.stop();
    service.shutdown();
}

#[test]
fn cancel_of_unknown_id_does_not_swallow_a_later_submit() {
    let (server, taxa, _model) = start_server(NetServerConfig::default());
    let mut client = NetClient::connect(server.addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).ok();
    // Cancel an id that was never submitted; the first submit on this
    // connection will then reuse client_job = 1. A stale cancellation
    // mark must not make the server drop that job on the floor.
    client.cancel(1).expect("cancel write");
    let response = client.wait_for(1).expect("cancel response");
    assert!(matches!(response, Response::Cancelled { client_job: 1 }));
    let id = client
        .submit(&submit_params("tenant-a", &taxa, 77))
        .expect("submit");
    assert_eq!(id, 1, "first submit reuses the cancelled id");
    let response = client.wait_for(id).expect("job must get a response");
    assert!(
        matches!(response, Response::Completed { .. }),
        "expected Completed, got {response:?}"
    );
    let (service, report) = server.stop();
    assert_eq!(report.completed, 1);
    service.shutdown();
}

#[test]
fn bad_newick_gets_an_error_frame_not_a_hang() {
    let (server, _taxa, _model) = start_server(NetServerConfig::default());
    let mut client = NetClient::connect(server.addr).expect("connect");
    let params = SubmitParams {
        tenant: "t".into(),
        high_priority: false,
        deadline: None,
        idempotency_key: None,
        newick: "((((".into(),
    };
    let id = client.submit(&params).expect("submit");
    let response = client.wait_for(id).expect("response");
    assert!(
        matches!(response, Response::Error { .. }),
        "expected Error, got {response:?}"
    );
    let (service, _report) = server.stop();
    service.shutdown();
}

#[test]
fn rate_limited_tenant_sees_reject_and_retry_succeeds() {
    let mut cfg = NetServerConfig::default();
    cfg.tenant_policies.push((
        "throttled".to_string(),
        TenantPolicy {
            weight: 1.0,
            rate_per_sec: 50.0,
            burst: 1.0,
            max_pending: 1,
        },
    ));
    let (server, taxa, _model) = start_server(cfg);
    let mut client = NetClient::connect(server.addr).expect("connect");

    // Flood faster than the staging cap of 1 can drain: at least one
    // submit must come back RateLimited with a usable hint.
    let mut ids = Vec::new();
    for i in 0..16u64 {
        let params = SubmitParams {
            tenant: "throttled".into(),
            ..submit_params("throttled", &taxa, 200 + i)
        };
        ids.push(client.submit(&params).expect("submit"));
    }
    let mut rejects = 0;
    let mut completed = 0;
    for id in ids {
        match client.wait_for(id).expect("response") {
            Response::Reject {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, plf_net::RejectReason::RateLimited);
                assert!(reason.is_retryable());
                assert!(retry_after_ns > 0, "hint must be actionable");
                rejects += 1;
            }
            Response::Completed { .. } => completed += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(rejects > 0, "expected at least one RateLimited reject");
    assert!(completed > 0, "paced submits must still complete");

    // submit_and_wait's retry loop must absorb the same pressure.
    let response = client
        .submit_and_wait(
            &SubmitParams {
                tenant: "throttled".into(),
                ..submit_params("throttled", &taxa, 999)
            },
            &RetryPolicy::default(),
        )
        .expect("retry loop");
    assert!(
        matches!(response, Response::Completed { .. }),
        "retries must converge: {response:?}"
    );
    let (service, _report) = server.stop();
    service.shutdown();
}

#[test]
fn drain_rejects_new_submits_but_finishes_inflight() {
    let (server, taxa, _model) = start_server(NetServerConfig::default());
    let mut client = NetClient::connect(server.addr).expect("connect");
    let mut ids = Vec::new();
    for i in 0..4u64 {
        ids.push(
            client
                .submit(&submit_params("tenant-a", &taxa, 300 + i))
                .expect("submit"),
        );
    }
    server.shutdown.request();
    // Every submission gets a terminal answer: Completed (staged or in
    // flight before the drain began), Error (drain budget exhausted;
    // journal owns it), or a Draining reject (the submit frame lost
    // the race and reached the server after the drain began). A
    // silently closed socket is the one forbidden outcome.
    let mut terminal = 0;
    for id in ids {
        match client.wait_for(id) {
            Ok(Response::Completed { .. }) | Ok(Response::Error { .. }) => terminal += 1,
            Ok(Response::Reject { reason, .. }) => {
                assert_eq!(reason, plf_net::RejectReason::Draining);
                terminal += 1;
            }
            Ok(other) => panic!("unexpected {other:?}"),
            Err(e) => panic!("pre-drain job lost: {e}"),
        }
    }
    assert_eq!(terminal, 4);
    let (service, report) = server.stop();
    assert_eq!(
        report.unresolved, 0,
        "drain budget must cover the in-flight tail"
    );
    service.shutdown();
}

#[test]
fn net_loadgen_runs_churn_without_losing_acknowledged_jobs() {
    let (server, _taxa, _model) = start_server(NetServerConfig::default());
    let cfg = NetLoadConfig {
        connections: 8,
        jobs: 48,
        tenants: 3,
        pipeline: 2,
        churn_every: 3,
        high_every: 4,
        seed: 7,
        deadline: Duration::from_secs(60),
        ..NetLoadConfig::default()
    };
    let report = loadgen::run(server.addr, &cfg).expect("loadgen");
    assert_eq!(report.lost_acks, 0, "zero lost acknowledged jobs");
    assert_eq!(report.completed, 48, "{report:?}");
    assert!(report.reconnects > 0, "churn must actually reconnect");
    assert!(report.latency_ms.p50 > 0.0);
    assert!(report.latency_ms.p999 >= report.latency_ms.p99);
    assert!(report.latency_ms.p99 >= report.latency_ms.p50);

    // The server observes client-side closes asynchronously; give the
    // reactor a moment to process the final hangups.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let snap = loop {
        let snap = server.counters.snapshot();
        if snap.connections_active == 0 || std::time::Instant::now() >= deadline {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(snap.connections_opened >= 8 + report.reconnects);
    assert_eq!(snap.connections_active, 0, "everything closed by exit");
    assert!(snap.frames_in > 0 && snap.frames_out > 0);
    // Tenant breakdown covers every tenant the loadgen used.
    assert!(snap.tenants.len() >= 3, "{:?}", snap.tenants);

    let (service, report) = server.stop();
    assert_eq!(report.unresolved, 0);
    service.shutdown();
}

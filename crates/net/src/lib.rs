//! # plf-net — event-driven socket front end for the plfd service
//!
//! The paper's likelihood kernels became a batched service in `plfd`;
//! this crate puts that service on the network. One epoll reactor
//! ([`server::NetServer`]) multiplexes thousands of client connections
//! onto a single [`PlfService`](plfd::PlfService), speaking a
//! length-prefixed CRC-framed binary protocol ([`wire`], [`proto`])
//! with per-tenant weighted fair queuing and token-bucket rate limits
//! at admission ([`tenant`]).
//!
//! Layer map:
//!
//! * [`wire`] — frame codec: `[magic][version][kind][len][payload][crc32]`,
//!   total (never panics) and incremental (handles torn frames).
//! * [`proto`] — typed request/response records over frames, including
//!   the remote mirror of [`SubmitError`](plfd::SubmitError): `Reject`
//!   frames carry `retry_after` + `jobs_ahead` verbatim so remote
//!   retry loops behave exactly like in-process ones.
//! * [`poll`] — thin epoll facade (raw syscall FFI; no new deps).
//! * [`tenant`] — WFQ virtual-time scheduler + token buckets.
//! * [`shutdown`] — the one [`ShutdownFlag`](shutdown::ShutdownFlag)
//!   shared by socket and stdio front ends, wired to SIGINT/SIGTERM.
//! * [`server`] — the reactor: accept → decode → fair-queue → submit →
//!   poll tickets → write back, with graceful drain.
//! * [`client`] — blocking client with the shared retry contract.
//! * [`loadgen`] — multi-connection open-loop load generator behind
//!   `plfr loadgen --connect`, scaling to 10k+ concurrent connections.

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod poll;
pub mod proto;
pub mod server;
pub mod shutdown;
pub mod tenant;
pub mod wire;

pub use client::{NetClient, ServerGreeting, SubmitParams};
pub use loadgen::{NetLoadConfig, NetLoadReport};
pub use proto::{RejectReason, Request, Response};
pub use server::{NetServer, NetServerConfig, NetServerReport};
pub use shutdown::ShutdownFlag;
pub use tenant::{FairQueue, TenantPolicy, TokenBucket};
pub use wire::{FrameDecoder, FrameError, FrameKind};

//! Length-prefixed, CRC-framed binary wire format.
//!
//! Every frame on the wire is
//!
//! ```text
//! [magic u16 LE][version u8][kind u8][len u32 LE][payload: len bytes][crc u32 LE]
//! ```
//!
//! — an 8-byte header, the payload, and a CRC-32 trailer computed over
//! header *and* payload (the same reflected polynomial as the plfd
//! journal, so a flipped bit anywhere in the frame is caught). `len`
//! counts payload bytes only and is bounded by [`MAX_PAYLOAD`]; a
//! larger prefix is rejected *before* any allocation, so a corrupt or
//! hostile length cannot balloon memory.
//!
//! [`FrameDecoder`] is incremental: feed it whatever the socket
//! yielded and pop complete frames. Torn frames (header or body still
//! in flight) simply wait for more bytes; only structural violations —
//! bad magic, version skew, oversized length, CRC mismatch, unknown
//! kind — surface as [`FrameError`]s, after which the connection is
//! unsynchronized and must be closed.
//!
//! Payload records are read and written through [`WireWriter`] /
//! [`WireReader`]: fixed-width little-endian integers and
//! length-prefixed UTF-8 strings. The reader is total — every
//! accessor returns `Result`, no slice indexing — because this code
//! sits on the `plf-lint` L8 service path where a panic kills a
//! connection multiplexing thousands of clients.

use std::fmt;

/// Frame magic: `"PL"` little-endian.
pub const MAGIC: u16 = 0x4C50;

/// Wire protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard bound on one frame's payload (1 MiB) — larger length prefixes
/// are structural errors, not allocation requests.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 8;

/// Bytes in the CRC trailer.
pub const TRAILER_LEN: usize = 4;

/// CRC-32 (IEEE reflected, poly 0xEDB88320) — bitwise form of the same
/// checksum the plfd journal uses, table-free so the L8 service path
/// stays free of slice indexing.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = u32::MAX;
    for &b in data {
        crc ^= b as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
            k += 1;
        }
    }
    !crc
}

/// Frame discriminator: requests flow client → server, responses
/// server → client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Server → client, sent once on accept: dataset shape and queue
    /// geometry, so a remote client needs no local copy of the
    /// alignment.
    ServerInfo = 0x01,
    /// Client → server: submit one evaluation job.
    Submit = 0x02,
    /// Client → server: cancel a previously submitted job.
    Cancel = 0x03,
    /// Server → client: job completed with a log-likelihood.
    Completed = 0x10,
    /// Server → client: evaluation failed.
    Failed = 0x11,
    /// Server → client: job cancelled before evaluation.
    Cancelled = 0x12,
    /// Server → client: deadline passed before evaluation started.
    DeadlineMissed = 0x13,
    /// Server → client: admission refused; carries the reason and the
    /// same retry-after / jobs-ahead hints the in-process
    /// `SubmitError` exposes.
    Reject = 0x14,
    /// Server → client: request-level error (malformed payload,
    /// unparseable tree, journal failure).
    Error = 0x15,
    /// Server → client: graceful drain has begun — in-flight jobs
    /// still resolve, new submissions will be rejected.
    Draining = 0x16,
}

impl FrameKind {
    /// Decode the header's kind byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::ServerInfo,
            0x02 => FrameKind::Submit,
            0x03 => FrameKind::Cancel,
            0x10 => FrameKind::Completed,
            0x11 => FrameKind::Failed,
            0x12 => FrameKind::Cancelled,
            0x13 => FrameKind::DeadlineMissed,
            0x14 => FrameKind::Reject,
            0x15 => FrameKind::Error,
            0x16 => FrameKind::Draining,
            _ => return None,
        })
    }
}

/// Structural framing violation; the stream is unsynchronized after
/// any of these and the connection must be closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Header magic was not [`MAGIC`].
    BadMagic(u16),
    /// Header carried a protocol version this build does not speak.
    VersionSkew(u8),
    /// Length prefix exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// CRC trailer did not match header + payload.
    CrcMismatch {
        /// CRC carried on the wire.
        got: u32,
        /// CRC computed over the received bytes.
        want: u32,
    },
    /// Kind byte named no known frame type.
    UnknownKind(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::VersionSkew(v) => write!(
                f,
                "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
            FrameError::Oversized(n) => {
                write!(f, "length prefix {n} exceeds max payload {MAX_PAYLOAD}")
            }
            FrameError::CrcMismatch { got, want } => {
                write!(f, "frame CRC mismatch (wire {got:#010x}, computed {want:#010x})")
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
        }
    }
}

/// Encode one complete frame (header + payload + CRC trailer).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One decoded frame plus its on-wire size (for byte accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame discriminator from the header.
    pub kind: FrameKind,
    /// Payload bytes (header and CRC stripped).
    pub payload: Vec<u8>,
    /// Total bytes the frame occupied on the wire.
    pub wire_len: usize,
}

fn le_u16(b: &[u8]) -> Option<u16> {
    let arr: [u8; 2] = b.get(..2)?.try_into().ok()?;
    Some(u16::from_le_bytes(arr))
}

fn le_u32(b: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = b.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Incremental frame decoder: buffer socket reads with
/// [`FrameDecoder::feed`], pop complete frames with
/// [`FrameDecoder::next_frame`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (torn frame in flight).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame. `Ok(None)` means the buffer holds
    /// only a torn prefix — feed more bytes. Any `Err` poisons the
    /// decoder: the stream is unsynchronized and every later call
    /// repeats the error.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        match self.parse_next() {
            Ok(frame) => Ok(frame),
            Err(err) => {
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }

    fn parse_next(&mut self) -> Result<Option<Frame>, FrameError> {
        // Header first: validate magic/version/length *before* waiting
        // for the body, so garbage fails fast instead of stalling.
        let Some(magic) = le_u16(&self.buf) else {
            return Ok(None);
        };
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let Some(&version) = self.buf.get(2) else {
            return Ok(None);
        };
        if version != PROTOCOL_VERSION {
            return Err(FrameError::VersionSkew(version));
        }
        let Some(&kind_byte) = self.buf.get(3) else {
            return Ok(None);
        };
        let Some(len) = self.buf.get(4..).and_then(le_u32) else {
            return Ok(None);
        };
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized(len));
        }
        let Some(kind) = FrameKind::from_u8(kind_byte) else {
            return Err(FrameError::UnknownKind(kind_byte));
        };
        let total = HEADER_LEN + len as usize + TRAILER_LEN;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body_end = HEADER_LEN + len as usize;
        let want = self.buf.get(..body_end).map(crc32).unwrap_or(0);
        let got = self.buf.get(body_end..).and_then(le_u32).unwrap_or(0);
        if got != want {
            return Err(FrameError::CrcMismatch { got, want });
        }
        let payload = self
            .buf
            .get(HEADER_LEN..body_end)
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
        self.buf.drain(..total);
        Ok(Some(Frame {
            kind,
            payload,
            wire_len: total,
        }))
    }
}

/// Payload-record decode failure (framing was intact, the record
/// inside was not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Record ended before the field did.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A tag byte named no known variant.
    BadTag(u8),
    /// Bytes remained after the record's last field.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "record truncated mid-field"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadTag(t) => write!(f, "unknown record tag {t:#04x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after record"),
        }
    }
}

/// Append-only payload builder: fixed-width little-endian integers and
/// `u32`-length-prefixed UTF-8 strings.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Finish and take the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its little-endian bit pattern (bit-exact
    /// round-trip; the service's bit-identity guarantee extends over
    /// the wire).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a payload record; every accessor is total (`Result`,
/// no indexing) so malformed payloads surface as protocol errors, not
/// panics on the service path.
#[derive(Debug)]
pub struct WireReader<'a> {
    rest: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Read from the start of `payload`.
    pub fn new(payload: &'a [u8]) -> WireReader<'a> {
        WireReader { rest: payload }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let head = self.rest.get(..n).ok_or(WireError::Truncated)?;
        self.rest = self.rest.get(n..).unwrap_or(&[]);
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let arr: [u8; 4] = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let arr: [u8; 8] = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Error unless the record was fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.rest.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_journal_vector() {
        // Same known-answer vector the plfd journal's table-driven
        // implementation is pinned to.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let wire = encode_frame(FrameKind::Submit, b"hello");
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let f = dec.next_frame().expect("decode").expect("complete");
        assert_eq!(f.kind, FrameKind::Submit);
        assert_eq!(f.payload, b"hello");
        assert_eq!(f.wire_len, wire.len());
        assert_eq!(dec.next_frame().expect("decode"), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn torn_frames_wait_for_more_bytes() {
        let wire = encode_frame(FrameKind::Completed, &[7u8; 100]);
        let mut dec = FrameDecoder::new();
        // Byte-at-a-time delivery: no error, no frame, until the last
        // byte lands.
        for (i, b) in wire.iter().enumerate() {
            dec.feed(&[*b]);
            let got = dec.next_frame().expect("no structural error");
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame surfaced early at byte {i}");
            } else {
                assert_eq!(got.expect("complete").payload, vec![7u8; 100]);
            }
        }
    }

    #[test]
    fn two_frames_in_one_feed() {
        let mut wire = encode_frame(FrameKind::Submit, b"a");
        wire.extend_from_slice(&encode_frame(FrameKind::Cancel, b"b"));
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap().kind, FrameKind::Submit);
        assert_eq!(dec.next_frame().unwrap().unwrap().kind, FrameKind::Cancel);
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn bad_magic_is_structural() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"GET / HTTP/1.1\r\n");
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic(_))));
        // Poisoned: the error repeats rather than resynchronizing.
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn version_skew_is_structural() {
        let mut wire = encode_frame(FrameKind::Submit, b"x");
        if let Some(v) = wire.get_mut(2) {
            *v = PROTOCOL_VERSION + 1;
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::VersionSkew(PROTOCOL_VERSION + 1))
        );
    }

    #[test]
    fn oversized_length_rejected_before_body_arrives() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.push(PROTOCOL_VERSION);
        wire.push(FrameKind::Submit as u8);
        wire.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        // Only the 8-byte header arrived; the bogus length is refused
        // without waiting for (or allocating) the claimed body.
        assert_eq!(dec.next_frame(), Err(FrameError::Oversized(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn crc_mismatch_detected() {
        let mut wire = encode_frame(FrameKind::Submit, b"payload");
        if let Some(b) = wire.get_mut(HEADER_LEN + 2) {
            *b ^= 0x40;
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut wire = encode_frame(FrameKind::Submit, b"");
        if let Some(k) = wire.get_mut(3) {
            *k = 0x7F;
        }
        // Re-CRC so the kind byte is the only violation.
        let body_end = wire.len() - TRAILER_LEN;
        let crc = crc32(&wire[..body_end]).to_le_bytes();
        wire.truncate(body_end);
        wire.extend_from_slice(&crc);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::UnknownKind(0x7F)));
    }

    #[test]
    fn wire_reader_is_total() {
        let mut w = WireWriter::new();
        w.put_u8(3);
        w.put_u32(1234);
        w.put_u64(u64::MAX);
        w.put_f64(-1234.5678);
        w.put_str("tenant-a");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 3);
        assert_eq!(r.get_u32().unwrap(), 1234);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-1234.5678f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "tenant-a");
        r.finish().unwrap();

        // Truncation surfaces as an error, never a panic.
        let mut r = WireReader::new(bytes.get(..3).unwrap());
        assert_eq!(r.get_u32(), Err(WireError::Truncated));

        // Non-UTF-8 string payload.
        let mut w = WireWriter::new();
        w.put_u32(2);
        let mut bad = w.into_bytes();
        bad.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = WireReader::new(&bad);
        assert_eq!(r.get_str(), Err(WireError::BadUtf8));

        // Trailing garbage is flagged by finish().
        let r = WireReader::new(&[0u8; 4]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(4)));
    }
}

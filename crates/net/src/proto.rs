//! Typed request/response records carried in frame payloads.
//!
//! One [`Request`] or [`Response`] maps to exactly one frame; the
//! frame's kind byte is the variant discriminator, so payloads carry
//! only the variant's fields. Encoding is explicit field-by-field
//! little-endian (no serde on the wire — the format is the contract,
//! not an implementation detail), and decoding is total: malformed
//! payloads return [`WireError`], never panic.
//!
//! The admission-control story mirrors the in-process API exactly
//! (DESIGN.md §16): a [`Response::Reject`] carries the same
//! `retry_after` and `jobs_ahead` hints `SubmitError` exposes, plus a
//! [`RejectReason`] distinguishing hard capacity, adaptive shed,
//! per-tenant rate limiting, drain, and closure — so a remote client's
//! `RetryPolicy` behaves bit-for-bit like an in-process caller's.

use crate::wire::{encode_frame, Frame, FrameKind, WireError, WireReader, WireWriter};
use std::time::Duration;

/// Why a submission was refused; wire value is the listed discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// Admission queue at hard capacity (`SubmitError::QueueFull`).
    QueueFull = 0,
    /// Adaptive load shed (`SubmitError::Overloaded`).
    Overloaded = 1,
    /// The tenant's token bucket is empty and its pending window is
    /// full; retry after the bucket refills.
    RateLimited = 2,
    /// The server is draining; it will not admit new work.
    Draining = 3,
    /// The service is closed (`SubmitError::Closed`).
    Closed = 4,
}

impl RejectReason {
    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<RejectReason> {
        Some(match b {
            0 => RejectReason::QueueFull,
            1 => RejectReason::Overloaded,
            2 => RejectReason::RateLimited,
            3 => RejectReason::Draining,
            4 => RejectReason::Closed,
            _ => return None,
        })
    }

    /// Whether a client should retry the same submission later (the
    /// same contract as `SubmitError::is_retryable`).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            RejectReason::QueueFull | RejectReason::Overloaded | RejectReason::RateLimited
        )
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one evaluation job.
    Submit {
        /// Client-chosen correlation id, echoed on every response for
        /// this job; unique per connection.
        client_job: u64,
        /// Accounting principal; drives fair-share scheduling and the
        /// per-tenant metrics breakdown.
        tenant: String,
        /// `0` = normal lane, `1` = high-priority lane.
        priority: u8,
        /// Relative deadline in nanoseconds; `0` = none.
        deadline_ns: u64,
        /// Idempotency key for safe retries across rejects and server
        /// restarts; empty = none.
        idempotency_key: String,
        /// The tree to score, as Newick over the server dataset's taxa.
        newick: String,
    },
    /// Best-effort cancel of a previously submitted job.
    Cancel {
        /// The `client_job` of the submission to cancel.
        client_job: u64,
    },
}

impl Request {
    /// Encode into a complete wire frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit {
                client_job,
                tenant,
                priority,
                deadline_ns,
                idempotency_key,
                newick,
            } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                w.put_str(tenant);
                w.put_u8(*priority);
                w.put_u64(*deadline_ns);
                w.put_str(idempotency_key);
                w.put_str(newick);
                encode_frame(FrameKind::Submit, &w.into_bytes())
            }
            Request::Cancel { client_job } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                encode_frame(FrameKind::Cancel, &w.into_bytes())
            }
        }
    }

    /// Decode a request frame's payload.
    pub fn decode(frame: &Frame) -> Result<Request, WireError> {
        let mut r = WireReader::new(&frame.payload);
        let req = match frame.kind {
            FrameKind::Submit => Request::Submit {
                client_job: r.get_u64()?,
                tenant: r.get_str()?,
                priority: r.get_u8()?,
                deadline_ns: r.get_u64()?,
                idempotency_key: r.get_str()?,
                newick: r.get_str()?,
            },
            FrameKind::Cancel => Request::Cancel {
                client_job: r.get_u64()?,
            },
            other => return Err(WireError::BadTag(other as u8)),
        };
        r.finish()?;
        Ok(req)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Sent once immediately after accept: everything a remote client
    /// needs to submit work without a local copy of the alignment.
    ServerInfo {
        /// Admission queue capacity, for client-side pacing.
        queue_capacity: u64,
        /// Worker count in the service pool.
        workers: u64,
        /// Device batching unit, in patterns.
        unit_patterns: u64,
        /// Taxon names of the served dataset, in alignment order;
        /// submitted trees must use these leaf names.
        taxa: Vec<String>,
    },
    /// Job completed with a log-likelihood.
    Completed {
        /// Echo of the submission's `client_job`.
        client_job: u64,
        /// Bit-exact tree log-likelihood.
        ln_likelihood: f64,
        /// Queue + batch wait before evaluation, nanoseconds.
        wait_ns: u64,
        /// Evaluation time, nanoseconds.
        service_ns: u64,
        /// Backend that evaluated the job.
        backend: String,
    },
    /// Evaluation failed after retries and fallbacks.
    Failed {
        /// Echo of the submission's `client_job`.
        client_job: u64,
        /// Human-readable failure description.
        error: String,
    },
    /// Cancelled before evaluation.
    Cancelled {
        /// Echo of the submission's `client_job`.
        client_job: u64,
    },
    /// Deadline passed before evaluation started.
    DeadlineMissed {
        /// Echo of the submission's `client_job`.
        client_job: u64,
    },
    /// Admission refused with the in-process hints.
    Reject {
        /// Echo of the submission's `client_job`.
        client_job: u64,
        /// Refusal class.
        reason: RejectReason,
        /// Suggested backoff before resubmitting, nanoseconds — the
        /// queue's `retry_after` hint, verbatim.
        retry_after_ns: u64,
        /// Jobs ahead in the refused lane, verbatim from the queue.
        jobs_ahead: u64,
    },
    /// Request-level error (malformed payload, bad tree, journal
    /// failure). `client_job` is `0` when the request could not be
    /// parsed far enough to recover one.
    Error {
        /// Echo of the submission's `client_job`, or `0`.
        client_job: u64,
        /// What went wrong.
        message: String,
    },
    /// Graceful drain has begun: in-flight jobs still resolve, new
    /// submissions will be rejected with [`RejectReason::Draining`].
    Draining,
}

impl Response {
    /// Encode into a complete wire frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::ServerInfo {
                queue_capacity,
                workers,
                unit_patterns,
                taxa,
            } => {
                let mut w = WireWriter::new();
                w.put_u64(*queue_capacity);
                w.put_u64(*workers);
                w.put_u64(*unit_patterns);
                w.put_u32(taxa.len() as u32);
                for t in taxa {
                    w.put_str(t);
                }
                encode_frame(FrameKind::ServerInfo, &w.into_bytes())
            }
            Response::Completed {
                client_job,
                ln_likelihood,
                wait_ns,
                service_ns,
                backend,
            } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                w.put_f64(*ln_likelihood);
                w.put_u64(*wait_ns);
                w.put_u64(*service_ns);
                w.put_str(backend);
                encode_frame(FrameKind::Completed, &w.into_bytes())
            }
            Response::Failed { client_job, error } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                w.put_str(error);
                encode_frame(FrameKind::Failed, &w.into_bytes())
            }
            Response::Cancelled { client_job } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                encode_frame(FrameKind::Cancelled, &w.into_bytes())
            }
            Response::DeadlineMissed { client_job } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                encode_frame(FrameKind::DeadlineMissed, &w.into_bytes())
            }
            Response::Reject {
                client_job,
                reason,
                retry_after_ns,
                jobs_ahead,
            } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                w.put_u8(*reason as u8);
                w.put_u64(*retry_after_ns);
                w.put_u64(*jobs_ahead);
                encode_frame(FrameKind::Reject, &w.into_bytes())
            }
            Response::Error {
                client_job,
                message,
            } => {
                let mut w = WireWriter::new();
                w.put_u64(*client_job);
                w.put_str(message);
                encode_frame(FrameKind::Error, &w.into_bytes())
            }
            Response::Draining => encode_frame(FrameKind::Draining, &[]),
        }
    }

    /// Decode a response frame's payload.
    pub fn decode(frame: &Frame) -> Result<Response, WireError> {
        let mut r = WireReader::new(&frame.payload);
        let resp = match frame.kind {
            FrameKind::ServerInfo => {
                let queue_capacity = r.get_u64()?;
                let workers = r.get_u64()?;
                let unit_patterns = r.get_u64()?;
                let n = r.get_u32()? as usize;
                let mut taxa = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    taxa.push(r.get_str()?);
                }
                Response::ServerInfo {
                    queue_capacity,
                    workers,
                    unit_patterns,
                    taxa,
                }
            }
            FrameKind::Completed => Response::Completed {
                client_job: r.get_u64()?,
                ln_likelihood: r.get_f64()?,
                wait_ns: r.get_u64()?,
                service_ns: r.get_u64()?,
                backend: r.get_str()?,
            },
            FrameKind::Failed => Response::Failed {
                client_job: r.get_u64()?,
                error: r.get_str()?,
            },
            FrameKind::Cancelled => Response::Cancelled {
                client_job: r.get_u64()?,
            },
            FrameKind::DeadlineMissed => Response::DeadlineMissed {
                client_job: r.get_u64()?,
            },
            FrameKind::Reject => {
                let client_job = r.get_u64()?;
                let reason_byte = r.get_u8()?;
                let reason =
                    RejectReason::from_u8(reason_byte).ok_or(WireError::BadTag(reason_byte))?;
                Response::Reject {
                    client_job,
                    reason,
                    retry_after_ns: r.get_u64()?,
                    jobs_ahead: r.get_u64()?,
                }
            }
            FrameKind::Error => Response::Error {
                client_job: r.get_u64()?,
                message: r.get_str()?,
            },
            FrameKind::Draining => Response::Draining,
            other => return Err(WireError::BadTag(other as u8)),
        };
        r.finish()?;
        Ok(resp)
    }

    /// The `retry_after` hint as a [`Duration`], if this is a reject.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            Response::Reject { retry_after_ns, .. } => {
                Some(Duration::from_nanos(*retry_after_ns))
            }
            _ => None,
        }
    }

    /// The connection-local job id this response is about, if it is a
    /// per-job response (connection-scoped notices like `ServerInfo`
    /// and `Draining` carry none).
    pub fn client_job(&self) -> Option<u64> {
        match self {
            Response::Completed { client_job, .. }
            | Response::Failed { client_job, .. }
            | Response::Cancelled { client_job }
            | Response::DeadlineMissed { client_job }
            | Response::Reject { client_job, .. }
            | Response::Error { client_job, .. } => Some(*client_job),
            Response::ServerInfo { .. } | Response::Draining => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameDecoder;
    use proptest::prelude::*;

    fn roundtrip_request(req: &Request) -> Request {
        let wire = req.encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frame = dec.next_frame().expect("frame").expect("complete");
        Request::decode(&frame).expect("decode")
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let wire = resp.encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frame = dec.next_frame().expect("frame").expect("complete");
        Response::decode(&frame).expect("decode")
    }

    #[test]
    fn submit_roundtrips() {
        let req = Request::Submit {
            client_job: 42,
            tenant: "tenant-a".into(),
            priority: 1,
            deadline_ns: 5_000_000,
            idempotency_key: "lg-7-42".into(),
            newick: "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);".into(),
        };
        assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn reject_reasons_roundtrip() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::Overloaded,
            RejectReason::RateLimited,
            RejectReason::Draining,
            RejectReason::Closed,
        ] {
            let resp = Response::Reject {
                client_job: 9,
                reason,
                retry_after_ns: 1_500_000,
                jobs_ahead: 17,
            };
            assert_eq!(roundtrip_response(&resp), resp);
            assert_eq!(RejectReason::from_u8(reason as u8), Some(reason));
        }
        assert_eq!(RejectReason::from_u8(99), None);
        assert!(RejectReason::QueueFull.is_retryable());
        assert!(RejectReason::RateLimited.is_retryable());
        assert!(!RejectReason::Draining.is_retryable());
        assert!(!RejectReason::Closed.is_retryable());
    }

    #[test]
    fn truncated_submit_payload_errors() {
        let req = Request::Submit {
            client_job: 1,
            tenant: "t".into(),
            priority: 0,
            deadline_ns: 0,
            idempotency_key: String::new(),
            newick: "(a:1,b:1);".into(),
        };
        let wire = req.encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut frame = dec.next_frame().unwrap().unwrap();
        frame.payload.truncate(10);
        assert!(Request::decode(&frame).is_err());
    }

    #[test]
    fn decode_rejects_kind_mismatch() {
        let wire = Response::Draining.encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frame = dec.next_frame().unwrap().unwrap();
        assert!(Request::decode(&frame).is_err());
    }

    /// Seeded ASCII string strategy (the vendored proptest subset has
    /// no regex strategies): maps a `(seed, len)` pair onto `alphabet`.
    fn arb_string(alphabet: &'static [u8], max_len: usize) -> impl Strategy<Value = String> {
        (0u64..u64::MAX, 0usize..max_len + 1).prop_map(move |(seed, len)| {
            let mut s = String::with_capacity(len);
            let mut x = seed;
            for _ in 0..len {
                // splitmix64 step keeps draws independent of position.
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                s.push(alphabet[(z as usize) % alphabet.len()] as char);
            }
            s
        })
    }

    fn arb_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u64..u64::MAX, 0..max_len + 1)
            .prop_map(|words| words.into_iter().map(|w| (w & 0xFF) as u8).collect())
    }

    proptest! {
        #[test]
        fn prop_submit_roundtrip(
            client_job in 0u64..u64::MAX,
            tenant in arb_string(b"abcdefghijklmnopqrstuvwxyz0123456789-", 24),
            priority in 0u8..2,
            deadline_ns in 0u64..u64::MAX,
            key in arb_string(b"abcdefghijklmnopqrstuvwxyz0123456789-", 32),
            newick in arb_string(b"(),abcdefgh0123456789.:", 200),
        ) {
            let req = Request::Submit {
                client_job,
                tenant,
                priority,
                deadline_ns,
                idempotency_key: key,
                newick,
            };
            prop_assert_eq!(roundtrip_request(&req), req);
        }

        #[test]
        fn prop_completed_roundtrip(
            client_job in 0u64..u64::MAX,
            lnl_bits in 0u64..u64::MAX,
            wait_ns in 0u64..u64::MAX,
            service_ns in 0u64..u64::MAX,
            backend in arb_string(b"ABCdef0123456789 ()", 40),
        ) {
            let resp = Response::Completed {
                client_job,
                ln_likelihood: f64::from_bits(lnl_bits),
                wait_ns,
                service_ns,
                backend,
            };
            let back = roundtrip_response(&resp);
            // Compare by bits: NaN payloads must survive the wire too.
            match (&back, &resp) {
                (
                    Response::Completed { ln_likelihood: a, .. },
                    Response::Completed { ln_likelihood: b, .. },
                ) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                _ => prop_assert!(false, "variant changed"),
            }
        }

        #[test]
        fn prop_server_info_roundtrip(
            queue_capacity in 0u64..u64::MAX,
            workers in 0u64..u64::MAX,
            unit_patterns in 0u64..u64::MAX,
            taxa in prop::collection::vec(
                arb_string(b"abcdefghijklmnopqrstuvwxyz0123456789_", 12),
                0..20,
            ),
        ) {
            let resp = Response::ServerInfo { queue_capacity, workers, unit_patterns, taxa };
            prop_assert_eq!(roundtrip_response(&resp), resp);
        }

        #[test]
        fn prop_garbage_payload_never_panics(
            kind_idx in 0usize..7,
            payload in arb_bytes(256),
        ) {
            let kind = [
                FrameKind::Submit,
                FrameKind::Cancel,
                FrameKind::ServerInfo,
                FrameKind::Completed,
                FrameKind::Failed,
                FrameKind::Reject,
                FrameKind::Error,
            ][kind_idx];
            let frame = crate::wire::Frame {
                kind,
                payload,
                wire_len: 0,
            };
            // Totality: decode returns Ok or Err, never panics.
            let _ = Request::decode(&frame);
            let _ = Response::decode(&frame);
        }
    }
}

//! Per-tenant admission scheduling for the socket front end:
//! weighted fair queuing across tenants, priority lanes within a
//! tenant, and token-bucket rate limiting.
//!
//! The in-process `plfd` queue is already bounded and two-laned, but it
//! is FIFO across tenants — fine when every caller is the same process,
//! unfair when one remote tenant can open a thousand connections and
//! firehose submits. [`FairQueue`] sits between frame decode and
//! `PlfService::submit` and decides *whose* request is forwarded next:
//!
//! * **WFQ via virtual time** — each tenant carries a virtual finish
//!   time `vt`; serving a tenant advances its `vt` by `1/weight`, and
//!   the scheduler always serves the smallest `vt` (ties broken by
//!   tenant name for determinism). A tenant that goes idle re-enters at
//!   `max(its vt, global vt)`, so sleeping never banks credit.
//! * **Token buckets** — a rate-limited tenant whose bucket is empty is
//!   *skipped*, not queued ahead of others; its work waits while other
//!   tenants proceed, so a throttled tenant can never starve the rest.
//! * **Pending caps** — each tenant also has a bounded staging queue;
//!   pushing past it is an explicit [`PushReject`] that the server
//!   turns into a `Reject(RateLimited)` frame with a retry hint, the
//!   remote mirror of `SubmitError::QueueFull`.
//!
//! All time is an explicit `now_ns` parameter — nothing here reads the
//! clock, which keeps every fairness property unit-testable with a
//! synthetic timeline.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use plfd::Priority;

/// Scheduling policy for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Relative WFQ weight; a weight-10 tenant receives ~10× the
    /// service of a weight-1 tenant under saturation. Clamped to a
    /// small positive floor.
    pub weight: f64,
    /// Sustained submit rate in jobs/second; `0.0` means unlimited.
    pub rate_per_sec: f64,
    /// Bucket depth in jobs (burst allowance). Ignored when unlimited.
    pub burst: f64,
    /// Maximum jobs staged for this tenant awaiting forwarding.
    pub max_pending: usize,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            weight: 1.0,
            rate_per_sec: 0.0,
            burst: 1.0,
            max_pending: 1024,
        }
    }
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushReject {
    /// The tenant's staging queue is at `max_pending`.
    RateLimited {
        /// Suggested client backoff before resubmitting.
        retry_after: Duration,
    },
}

impl PushReject {
    /// The backoff hint carried by every reject variant.
    pub fn retry_after(&self) -> Duration {
        match self {
            PushReject::RateLimited { retry_after } => *retry_after,
        }
    }
}

/// Classic token bucket with an explicit clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    capacity: f64,
    tokens: f64,
    last_refill_ns: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec`, holding at most
    /// `capacity` tokens, starting full. `rate_per_sec <= 0` builds an
    /// unlimited bucket.
    pub fn new(rate_per_sec: f64, capacity: f64, now_ns: u64) -> TokenBucket {
        let capacity = capacity.max(1.0);
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: capacity,
            last_refill_ns: now_ns,
        }
    }

    /// Does this bucket limit at all?
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_sec <= 0.0
    }

    fn refill(&mut self, now_ns: u64) {
        if self.is_unlimited() {
            return;
        }
        let elapsed_ns = now_ns.saturating_sub(self.last_refill_ns);
        self.last_refill_ns = now_ns;
        let gained = self.rate_per_sec * (elapsed_ns as f64 / 1e9);
        self.tokens = (self.tokens + gained).min(self.capacity);
    }

    /// Is at least one token available at `now_ns` (without taking it)?
    pub fn ready(&mut self, now_ns: u64) -> bool {
        if self.is_unlimited() {
            return true;
        }
        self.refill(now_ns);
        self.tokens >= 1.0
    }

    /// Take one token if available.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        if self.is_unlimited() {
            return true;
        }
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long until one token will be available (zero if ready now).
    pub fn next_available(&mut self, now_ns: u64) -> Duration {
        if self.is_unlimited() {
            return Duration::ZERO;
        }
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            return Duration::ZERO;
        }
        let deficit = 1.0 - self.tokens;
        let secs = deficit / self.rate_per_sec;
        Duration::from_nanos((secs * 1e9).ceil() as u64)
    }
}

#[derive(Debug)]
struct TenantState<T> {
    policy: TenantPolicy,
    bucket: TokenBucket,
    /// Virtual finish time; the WFQ ordering key.
    vt: f64,
    high: VecDeque<T>,
    normal: VecDeque<T>,
}

impl<T> TenantState<T> {
    fn pending(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn pop_lane(&mut self) -> Option<T> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

/// Weighted fair queue over tenants, with per-tenant priority lanes
/// and token-bucket pacing. Generic over the staged item so tests can
/// exercise fairness with plain integers.
#[derive(Debug)]
pub struct FairQueue<T> {
    tenants: BTreeMap<String, TenantState<T>>,
    default_policy: TenantPolicy,
    /// Virtual time of the most recently served tenant; newly active
    /// tenants join at this point so idleness banks no credit.
    global_vt: f64,
    pending_total: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue; tenants not configured explicitly get
    /// `default_policy`.
    pub fn new(default_policy: TenantPolicy) -> FairQueue<T> {
        FairQueue {
            tenants: BTreeMap::new(),
            default_policy,
            global_vt: 0.0,
            pending_total: 0,
        }
    }

    /// Install (or replace) a tenant's policy. Existing staged items
    /// are kept; the bucket restarts full.
    pub fn configure_tenant(&mut self, tenant: &str, policy: TenantPolicy, now_ns: u64) {
        let global_vt = self.global_vt;
        let state = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                policy,
                bucket: TokenBucket::new(policy.rate_per_sec, policy.burst, now_ns),
                vt: global_vt,
                high: VecDeque::new(),
                normal: VecDeque::new(),
            });
        state.policy = policy;
        state.bucket = TokenBucket::new(policy.rate_per_sec, policy.burst, now_ns);
    }

    fn ensure_tenant(&mut self, tenant: &str, now_ns: u64) -> &mut TenantState<T> {
        let default_policy = self.default_policy;
        let global_vt = self.global_vt;
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                policy: default_policy,
                bucket: TokenBucket::new(
                    default_policy.rate_per_sec,
                    default_policy.burst,
                    now_ns,
                ),
                vt: global_vt,
                high: VecDeque::new(),
                normal: VecDeque::new(),
            })
    }

    /// Stage an item for `tenant`. Rejects when the tenant's pending
    /// cap is reached, with a retry hint derived from its bucket.
    pub fn push(
        &mut self,
        tenant: &str,
        priority: Priority,
        item: T,
        now_ns: u64,
    ) -> Result<(), PushReject> {
        let global_vt = self.global_vt;
        let state = self.ensure_tenant(tenant, now_ns);
        if state.pending() >= state.policy.max_pending {
            let hint = state
                .bucket
                .next_available(now_ns)
                .max(Duration::from_millis(1));
            return Err(PushReject::RateLimited { retry_after: hint });
        }
        if state.pending() == 0 {
            // Re-activation: join at the current service point, keeping
            // any debt from past service but forfeiting idle credit.
            state.vt = state.vt.max(global_vt);
        }
        match priority {
            Priority::High => state.high.push_back(item),
            Priority::Normal => state.normal.push_back(item),
        }
        self.pending_total += 1;
        Ok(())
    }

    fn pick_min_vt(&mut self, now_ns: u64, respect_rate: bool) -> Option<String> {
        let mut best: Option<(&String, f64)> = None;
        for (name, state) in self.tenants.iter_mut() {
            if state.pending() == 0 {
                continue;
            }
            if respect_rate && !state.bucket.ready(now_ns) {
                continue;
            }
            // BTreeMap iterates in name order, so strict `<` makes the
            // lexicographically first name win vt ties deterministically.
            match best {
                Some((_, best_vt)) if state.vt >= best_vt => {}
                _ => best = Some((name, state.vt)),
            }
        }
        best.map(|(name, _)| name.clone())
    }

    fn serve(&mut self, name: &str, now_ns: u64, take_token: bool) -> Option<(String, T)> {
        let state = self.tenants.get_mut(name)?;
        if take_token && !state.bucket.try_take(now_ns) {
            return None;
        }
        let item = state.pop_lane()?;
        self.pending_total -= 1;
        self.global_vt = state.vt;
        let weight = state.policy.weight.max(1e-6);
        state.vt += 1.0 / weight;
        Some((name.to_string(), item))
    }

    /// Serve the next item under full WFQ + rate-limit rules, or
    /// `None` when nothing is eligible right now (empty, or every
    /// tenant with work is token-starved).
    pub fn pop(&mut self, now_ns: u64) -> Option<(String, T)> {
        let name = self.pick_min_vt(now_ns, true)?;
        self.serve(&name, now_ns, true)
    }

    /// Serve the next item in WFQ order but ignoring token buckets.
    /// Used during drain, when pacing a doomed queue only delays
    /// shutdown.
    pub fn pop_unpaced(&mut self, now_ns: u64) -> Option<(String, T)> {
        let name = self.pick_min_vt(now_ns, false)?;
        self.serve(&name, now_ns, false)
    }

    /// When the earliest token-starved tenant becomes eligible, if
    /// everything pending is currently starved. `None` when `pop`
    /// could succeed now or the queue is empty — i.e. only returns a
    /// wait when waiting is the only option.
    pub fn next_ready_in(&mut self, now_ns: u64) -> Option<Duration> {
        if self.pending_total == 0 {
            return None;
        }
        let mut earliest: Option<Duration> = None;
        for state in self.tenants.values_mut() {
            if state.pending() == 0 {
                continue;
            }
            let wait = state.bucket.next_available(now_ns);
            if wait.is_zero() {
                return None;
            }
            earliest = Some(match earliest {
                Some(e) => e.min(wait),
                None => wait,
            });
        }
        earliest
    }

    /// Total staged items across all tenants.
    pub fn len(&self) -> usize {
        self.pending_total
    }

    /// No staged items anywhere?
    pub fn is_empty(&self) -> bool {
        self.pending_total == 0
    }

    /// Staged items for one tenant.
    pub fn pending(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map(|t| t.pending()).unwrap_or(0)
    }

    /// Whether any staged item, in any tenant's lanes, satisfies
    /// `pred`. Lets callers keep side tables (e.g. cancellation marks)
    /// scoped to items that are actually queued.
    pub fn any_staged<F>(&self, mut pred: F) -> bool
    where
        F: FnMut(&T) -> bool,
    {
        self.tenants
            .values()
            .any(|s| s.high.iter().chain(s.normal.iter()).any(&mut pred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn unlimited(weight: f64) -> TenantPolicy {
        TenantPolicy {
            weight,
            ..TenantPolicy::default()
        }
    }

    #[test]
    fn bucket_refills_at_rate_and_caps_at_burst() {
        let mut b = TokenBucket::new(10.0, 2.0, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 10 tokens/s → one token after 100 ms.
        assert!(!b.try_take(50 * MS));
        assert!(b.try_take(100 * MS));
        // A long sleep refills to burst, not beyond.
        assert!(b.try_take(10_000 * MS));
        assert!(b.try_take(10_000 * MS));
        assert!(!b.try_take(10_000 * MS));
    }

    #[test]
    fn bucket_next_available_matches_deficit() {
        let mut b = TokenBucket::new(2.0, 1.0, 0);
        assert!(b.try_take(0));
        let wait = b.next_available(0);
        // 2 tokens/s → 500 ms per token.
        assert_eq!(wait, Duration::from_millis(500));
        assert!(TokenBucket::new(0.0, 1.0, 0).next_available(0).is_zero());
    }

    #[test]
    fn any_staged_scans_every_lane_of_every_tenant() {
        let mut q: FairQueue<u32> = FairQueue::new(unlimited(1.0));
        assert!(!q.any_staged(|_| true));
        q.push("a", Priority::Normal, 1, 0).expect("push");
        q.push("b", Priority::High, 2, 0).expect("push");
        assert!(q.any_staged(|&x| x == 1));
        assert!(q.any_staged(|&x| x == 2));
        assert!(!q.any_staged(|&x| x == 3));
        q.pop_unpaced(0).expect("pop");
        q.pop_unpaced(0).expect("pop");
        assert!(!q.any_staged(|_| true));
    }

    #[test]
    fn wfq_honors_ten_to_one_weights_within_ten_percent() {
        let mut q: FairQueue<u32> = FairQueue::new(TenantPolicy::default());
        q.configure_tenant("heavy", unlimited(10.0), 0);
        q.configure_tenant("light", unlimited(1.0), 0);
        for i in 0..400 {
            q.push("heavy", Priority::Normal, i, 0).expect("push");
            q.push("light", Priority::Normal, i, 0).expect("push");
        }
        let mut heavy = 0u32;
        let mut light = 0u32;
        for _ in 0..220 {
            let (who, _) = q.pop(0).expect("saturated");
            match who.as_str() {
                "heavy" => heavy += 1,
                _ => light += 1,
            }
        }
        // Expect 200:20 service under saturation; allow ±10%.
        let share = heavy as f64 / 220.0;
        let expected = 10.0 / 11.0;
        assert!(
            (share - expected).abs() <= 0.10 * expected,
            "heavy share {share} vs expected {expected} (heavy={heavy} light={light})"
        );
        assert!(light > 0, "light tenant must not starve");
    }

    #[test]
    fn rate_limited_tenant_is_skipped_not_blocking() {
        let mut q: FairQueue<u32> = FairQueue::new(TenantPolicy::default());
        q.configure_tenant(
            "throttled",
            TenantPolicy {
                weight: 10.0,
                rate_per_sec: 1.0,
                burst: 1.0,
                ..TenantPolicy::default()
            },
            0,
        );
        q.configure_tenant("steady", unlimited(1.0), 0);
        for i in 0..10 {
            q.push("throttled", Priority::Normal, i, 0).expect("push");
            q.push("steady", Priority::Normal, i, 0).expect("push");
        }
        // First pop serves throttled (burst token, higher weight holds
        // its vt lower); afterwards its bucket is dry, so the steady
        // tenant gets everything else despite the weight gap.
        let mut steady = 0;
        for _ in 0..10 {
            if let Some((who, _)) = q.pop(0) {
                if who == "steady" {
                    steady += 1;
                }
            }
        }
        assert!(steady >= 9, "steady tenant starved: {steady}/10");
        // A second later the throttled tenant earned one token back.
        let (who, _) = q.pop(1_000 * MS).expect("token refilled");
        assert_eq!(who, "throttled");
    }

    #[test]
    fn pending_cap_rejects_with_retry_hint() {
        let mut q: FairQueue<u32> = FairQueue::new(TenantPolicy::default());
        q.configure_tenant(
            "t",
            TenantPolicy {
                max_pending: 2,
                rate_per_sec: 4.0,
                burst: 1.0,
                ..TenantPolicy::default()
            },
            0,
        );
        q.push("t", Priority::Normal, 1, 0).expect("push");
        q.push("t", Priority::Normal, 2, 0).expect("push");
        let err = q.push("t", Priority::Normal, 3, 0).expect_err("cap");
        assert!(err.retry_after() >= Duration::from_millis(1));
        assert_eq!(q.pending("t"), 2);
    }

    #[test]
    fn high_lane_served_before_normal_within_tenant() {
        let mut q: FairQueue<&'static str> = FairQueue::new(TenantPolicy::default());
        q.push("t", Priority::Normal, "n1", 0).expect("push");
        q.push("t", Priority::High, "h1", 0).expect("push");
        q.push("t", Priority::High, "h2", 0).expect("push");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop(0).map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["h1", "h2", "n1"]);
    }

    #[test]
    fn idle_tenant_rejoins_at_global_vt_without_credit() {
        let mut q: FairQueue<u32> = FairQueue::new(TenantPolicy::default());
        q.configure_tenant("busy", unlimited(1.0), 0);
        q.configure_tenant("idle", unlimited(1.0), 0);
        for i in 0..100 {
            q.push("busy", Priority::Normal, i, 0).expect("push");
        }
        for _ in 0..50 {
            q.pop(0);
        }
        // "idle" arrives late; if it banked credit it would now drain
        // 50 items in a row. It must instead roughly alternate.
        for i in 0..50 {
            q.push("idle", Priority::Normal, i, 0).expect("push");
        }
        let mut first_ten: Vec<String> = Vec::new();
        for _ in 0..10 {
            first_ten.push(q.pop(0).expect("pop").0);
        }
        let idle_count = first_ten.iter().filter(|t| t.as_str() == "idle").count();
        assert!(
            (4..=6).contains(&idle_count),
            "expected roughly alternating service, got {first_ten:?}"
        );
    }

    #[test]
    fn next_ready_reports_starvation_wait() {
        let mut q: FairQueue<u32> = FairQueue::new(TenantPolicy::default());
        q.configure_tenant(
            "t",
            TenantPolicy {
                rate_per_sec: 1.0,
                burst: 1.0,
                ..TenantPolicy::default()
            },
            0,
        );
        assert!(q.next_ready_in(0).is_none(), "empty queue has no wait");
        q.push("t", Priority::Normal, 1, 0).expect("push");
        q.push("t", Priority::Normal, 2, 0).expect("push");
        assert!(q.next_ready_in(0).is_none(), "token ready: pop would work");
        let (_, _) = q.pop(0).expect("pop");
        let wait = q.next_ready_in(0).expect("starved now");
        assert_eq!(wait, Duration::from_secs(1));
        assert!(q.pop(0).is_none(), "starved tenant must not be served");
        assert!(q.pop_unpaced(0).is_some(), "drain ignores pacing");
    }
}

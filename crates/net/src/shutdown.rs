//! One shutdown signal shared by every server front end.
//!
//! Satellite of the `--listen` work: `plfr serve` used to own a private
//! `static SHUTDOWN_REQUESTED` plus a stdin reader side-thread, and the
//! drain path polled the static directly. That worked for one stdio
//! loop but not for a process hosting a socket reactor *and* a stdio
//! loop — each needs to observe the same request. [`ShutdownFlag`] is
//! that shared observable: process-global when wired to SIGINT/SIGTERM,
//! or test-local so unit tests can trigger drains without raising
//! signals against their own test runner.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// plf-lint: ordering(SeqCst)
//
// Shutdown is a one-way latch raised from a signal handler and read
// from reactor loops; SeqCst keeps the handler/observer story trivial
// and the cost is one load per poll tick.

/// Latch raised by the signal handler installed in [`ShutdownFlag::global`].
static GLOBAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    GLOBAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

/// A one-way "please drain and exit" latch.
///
/// `Clone` hands out another observer of the same latch, for both
/// variants.
#[derive(Debug, Clone)]
pub enum ShutdownFlag {
    /// Backed by the process-wide latch that SIGINT/SIGTERM raise.
    Global,
    /// Backed by a private latch; raise it with [`ShutdownFlag::request`].
    Local(Arc<AtomicBool>),
}

impl ShutdownFlag {
    /// The process-global flag, installing the SIGINT/SIGTERM handler.
    ///
    /// Idempotent: re-installing the same handler is harmless, so every
    /// server entry point can call this without coordination.
    pub fn global() -> ShutdownFlag {
        // SAFETY: `signal` installs an async-signal handler that only
        // stores to an AtomicBool — an async-signal-safe operation —
        // and the handler function lives for the whole program.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        ShutdownFlag::Global
    }

    /// A fresh private flag, unobservable outside its clones.
    pub fn local() -> ShutdownFlag {
        ShutdownFlag::Local(Arc::new(AtomicBool::new(false)))
    }

    /// Has shutdown been requested?
    pub fn is_requested(&self) -> bool {
        match self {
            ShutdownFlag::Global => GLOBAL_SHUTDOWN.load(Ordering::SeqCst),
            ShutdownFlag::Local(flag) => flag.load(Ordering::SeqCst),
        }
    }

    /// Raise the latch by hand (tests, drain drills, stdio EOF).
    ///
    /// Works on both variants; on `Global` it behaves exactly like a
    /// delivered SIGTERM.
    pub fn request(&self) {
        match self {
            ShutdownFlag::Global => GLOBAL_SHUTDOWN.store(true, Ordering::SeqCst),
            ShutdownFlag::Local(flag) => flag.store(true, Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_flag_latches_and_clones_share() {
        let flag = ShutdownFlag::local();
        let observer = flag.clone();
        assert!(!flag.is_requested());
        assert!(!observer.is_requested());
        flag.request();
        assert!(flag.is_requested());
        assert!(observer.is_requested());
    }

    #[test]
    fn distinct_local_flags_are_independent() {
        let a = ShutdownFlag::local();
        let b = ShutdownFlag::local();
        a.request();
        assert!(a.is_requested());
        assert!(!b.is_requested());
    }
}

//! Thin epoll readiness facade — the event engine under [`crate::server`]
//! and [`crate::loadgen`].
//!
//! Built directly on the kernel's `epoll_*` syscalls through raw
//! `extern "C"` declarations (the workspace vendors no libc crate; the
//! precedent is the `signal` binding `plfr serve` has carried since
//! PR 7). One [`Poller`] multiplexes every listener and connection of
//! a server onto a single thread: sockets register with a caller-chosen
//! `u64` token, [`Poller::wait`] parks in the kernel until readiness or
//! timeout, and the returned [`Event`]s carry the token back.
//!
//! Level-triggered (the epoll default) on purpose: the reactor reads
//! and writes until `WouldBlock` anyway, and level semantics make a
//! missed wakeup impossible rather than unlikely.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0x8_0000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event` with the kernel's ABI layout. The kernel
/// declares it packed on x86-64 only (64-bit `data` at offset 4,
/// 12-byte stride); every other Linux architecture uses natural
/// alignment (`data` at offset 8, 16-byte stride). Getting this wrong
/// would make `epoll_wait` write at the kernel's stride into a buffer
/// with the other stride, corrupting every event after the first.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (a connection with queued output).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable now (includes pending EOF).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup: the connection is dead or half-closed and
    /// should be torn down after a final drain.
    pub hangup: bool,
}

/// An epoll instance owning its kernel fd.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

/// Capacity of one `epoll_wait` batch; more ready fds than this simply
/// surface on the next tick (level-triggered).
const WAIT_BATCH: usize = 1024;

impl Poller {
    /// Create a new epoll instance.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: `epoll_create1` is the Linux syscall wrapper with no
        // pointer arguments; CLOEXEC keeps the fd out of any child the
        // harness spawns. A negative return is translated to the
        // thread's errno below, never dereferenced.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![
                EpollEvent { events: 0, data: 0 };
                WAIT_BATCH
            ],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = ev;
        let ptr = ev
            .as_mut()
            .map(|e| e as *mut EpollEvent)
            .unwrap_or(std::ptr::null_mut());
        // SAFETY: `ptr` is either null (EPOLL_CTL_DEL ignores it on
        // post-2.6.9 kernels) or points at a live stack-local
        // `EpollEvent` that outlives the call; the kernel copies it
        // before returning and retains no reference.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Change an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Park until readiness or `timeout`, then append one [`Event`]
    /// per ready fd to `out` (cleared first). An empty result means
    /// the timeout elapsed.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `buf` is a live Vec of `WAIT_BATCH` initialized
        // `EpollEvent`s for the whole call; the kernel writes at most
        // `maxevents` entries into it and we read back only the first
        // `n` it reports. EINTR is surfaced as an empty tick, not an
        // error — the caller's loop re-polls.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                WAIT_BATCH as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in self.buf.iter().take(n as usize) {
            // Copy out of the packed struct before use (field reads
            // from packed layouts must not take references).
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` is the epoll fd this Poller created and owns;
        // it is closed exactly once, here.
        unsafe {
            close(self.epfd);
        }
    }
}

/// Switch an arbitrary fd (notably stdin, which `std` offers no
/// nonblocking API for) in or out of `O_NONBLOCK`.
pub fn set_nonblocking_fd(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: `fcntl` with F_GETFL/F_SETFL takes and returns plain
    // integer flags for a caller-supplied fd; no pointers cross the
    // boundary. A negative return is translated to errno.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        let next = if nonblocking {
            flags | O_NONBLOCK
        } else {
            flags & !O_NONBLOCK
        };
        if fcntl(fd, F_SETFL, next) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_sees_accept_and_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("epoll");
        poller
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .expect("register listener");

        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        poller
            .wait(Duration::from_millis(10), &mut events)
            .expect("wait");
        assert!(events.is_empty());

        let mut client = TcpStream::connect(addr).expect("connect");
        poller
            .wait(Duration::from_millis(1000), &mut events)
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (mut server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .register(server_side.as_raw_fd(), 2, Interest::READ)
            .expect("register conn");

        client.write_all(b"ping").expect("write");
        poller
            .wait(Duration::from_millis(1000), &mut events)
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        let n = server_side.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        // Write interest on an idle socket reports writable.
        poller
            .modify(server_side.as_raw_fd(), 2, Interest::READ_WRITE)
            .expect("modify");
        poller
            .wait(Duration::from_millis(1000), &mut events)
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        poller.deregister(server_side.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let mut poller = Poller::new().expect("epoll");
        poller
            .register(server_side.as_raw_fd(), 7, Interest::READ)
            .expect("register");
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(Duration::from_millis(1000), &mut events)
            .expect("wait");
        // Peer close surfaces as readable (EOF) and/or RDHUP.
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn stdin_flag_helper_roundtrips_on_a_pipe_like_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let fd = listener.as_raw_fd();
        set_nonblocking_fd(fd, true).expect("set");
        set_nonblocking_fd(fd, false).expect("clear");
    }
}

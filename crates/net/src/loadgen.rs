//! Multi-connection network load generator: the remote, 10k-connection
//! counterpart of `plfd::loadgen`.
//!
//! One epoll reactor drives every client connection from a single
//! thread — the same event-loop discipline as the server, which is
//! what makes four-digit connection counts practical under one
//! process's memory budget. Each connection performs the greeting
//! handshake, then runs an open loop: keep up to `pipeline` jobs
//! outstanding, draw the next job index from a shared counter, retry
//! retryable rejects with the server's own `retry_after` hint (without
//! ever blocking the reactor — retries are scheduled on the timeline,
//! not slept), and optionally *churn*: after `churn_every` jobs a
//! connection disconnects and reconnects under the next tenant, so a
//! long soak continuously exercises accept/close paths while tenants
//! migrate between connections.
//!
//! Determinism: all randomness (branch lengths, tenant assignment)
//! derives from `seed` via splitmix64. Latency percentiles
//! (p50/p99/p999) are client-observed submit→terminal times and feed
//! the `net_service` section of BENCH schema v6.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use plfd::RetryPolicy;
use serde::Serialize;

use crate::poll::{Event, Interest, Poller};
use crate::proto::{Request, Response};
use crate::wire::FrameDecoder;

/// Compact a connection's output buffer once this many consumed bytes
/// sit at its front (mirrors the server's rule; see `server.rs`).
const OUT_COMPACT: usize = 64 * 1024;

/// splitmix64: the repo-wide cheap deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration for [`run`].
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Total jobs to complete across all connections.
    pub jobs: u64,
    /// Distinct tenant names (`t0`..`t{n-1}`) cycled across
    /// connections.
    pub tenants: usize,
    /// Outstanding jobs per connection (open-loop depth).
    pub pipeline: usize,
    /// After this many jobs a connection reconnects under the next
    /// tenant; `0` disables churn.
    pub churn_every: u64,
    /// Every `high_every`-th job goes on the high-priority lane;
    /// `0` disables.
    pub high_every: u64,
    /// Retry policy for retryable rejects (hints honored verbatim).
    pub retry: RetryPolicy,
    /// Master seed for branch lengths and tenant layout.
    pub seed: u64,
    /// Abort the run (counting unresolved jobs as lost) after this
    /// long.
    pub deadline: Duration,
}

impl Default for NetLoadConfig {
    fn default() -> NetLoadConfig {
        NetLoadConfig {
            connections: 64,
            jobs: 512,
            tenants: 4,
            pipeline: 1,
            churn_every: 0,
            high_every: 4,
            retry: RetryPolicy::default(),
            seed: 2009,
            deadline: Duration::from_secs(120),
        }
    }
}

/// Latency summary in milliseconds.
#[derive(Debug, Clone, Default, Serialize, PartialEq)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Worst observed.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns.get(idx).copied().unwrap_or(0) as f64 / 1e6
}

/// What a load run observed; the `net_service` section of BENCH
/// schema v6.
#[derive(Debug, Clone, Default, Serialize)]
pub struct NetLoadReport {
    /// Concurrent connections requested.
    pub connections: usize,
    /// Distinct tenants cycled across connections.
    pub tenants: usize,
    /// Jobs that reached a `Completed` frame.
    pub completed: u64,
    /// Jobs that ended `Failed`.
    pub failed: u64,
    /// Jobs that ended `Cancelled`.
    pub cancelled: u64,
    /// Jobs that ended `DeadlineMissed`.
    pub deadline_missed: u64,
    /// Jobs whose final state was a non-retryable (or retry-exhausted)
    /// reject.
    pub rejected_final: u64,
    /// Jobs answered with an `Error` frame.
    pub errors: u64,
    /// Individual reject frames observed (pre-retry).
    pub rejects_seen: u64,
    /// Resubmissions performed after retryable rejects.
    pub retries: u64,
    /// Jobs submitted (acknowledged by the submit write) that never
    /// reached a terminal frame before the run deadline. The
    /// zero-loss acceptance gate.
    pub lost_acks: u64,
    /// Connections opened over the run (initial + churn reconnects).
    pub connections_opened: u64,
    /// Churn-driven reconnects.
    pub reconnects: u64,
    /// Connections that dropped unexpectedly (reset / refused).
    pub connection_failures: u64,
    /// Wall-clock for the whole run, ms.
    pub wall_ms: f64,
    /// Completed jobs per second of wall-clock.
    pub throughput_jobs_per_s: f64,
    /// Client-observed submit→terminal latency.
    pub latency_ms: LatencyMs,
}

struct PendingJob {
    /// Global job index, so the job can be re-assigned to another
    /// connection if this one dies before a terminal frame.
    idx: u64,
    first_submit_ns: u64,
    attempt: u32,
    high: bool,
    newick: String,
    key: String,
}

enum ConnState {
    /// Waiting for the `ServerInfo` greeting.
    Greeting,
    /// Handshake done; submitting.
    Active,
}

struct LoadConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    want_write: bool,
    state: ConnState,
    tenant_idx: usize,
    outstanding: HashMap<u64, PendingJob>,
    /// Jobs finished on this connection since (re)connect, for churn.
    finished_here: u64,
    next_client_job: u64,
    draining: bool,
    dead: bool,
}

impl LoadConn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Build a ladder (caterpillar) Newick over `taxa` with seeded branch
/// lengths — every taxon appears exactly once, as the service
/// requires.
pub fn ladder_newick(taxa: &[String], seed: u64) -> String {
    let mut bl_state = seed;
    let mut bl = move || {
        bl_state = splitmix64(bl_state);
        0.05 + (bl_state % 1000) as f64 / 4000.0
    };
    let mut iter = taxa.iter();
    let Some(first) = iter.next() else {
        return String::from(";");
    };
    let mut s = format!("{first}:{:.4}", bl());
    let mut wrapped = false;
    for t in iter {
        s = format!("({s},{t}:{:.4})", bl());
        wrapped = true;
        // Interior branch length except on the final (root) wrap —
        // added below only when another wrap follows.
        s.push_str(&format!(":{:.4}", bl()));
    }
    if wrapped {
        // Strip the root's trailing branch length: ");" terminated.
        if let Some(pos) = s.rfind(')') {
            s.truncate(pos + 1);
        }
        format!("{s};")
    } else {
        format!("({s});")
    }
}

/// The per-run engine state shared across connections.
struct Engine {
    cfg: NetLoadConfig,
    addr: SocketAddr,
    epoch: Instant,
    conns: HashMap<u64, LoadConn>,
    next_token: u64,
    /// Next global job index to hand out.
    next_job: u64,
    /// Jobs orphaned by a dead connection, awaiting re-assignment:
    /// (job idx, original first-submit timestamp). Served before fresh
    /// indices so a mid-run connection failure costs latency, not
    /// completions.
    requeue: Vec<(u64, u64)>,
    /// Terminal outcomes counted so far.
    done: u64,
    /// Retry timeline: (due_ns, token, client_job).
    retry_queue: Vec<(u64, u64, u64)>,
    latencies_ns: Vec<u64>,
    taxa: Option<Vec<String>>,
    report: NetLoadReport,
}

impl Engine {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn open_conn(&mut self, poller: &Poller, tenant_idx: usize) -> io::Result<()> {
        let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let token = self.next_token;
        self.next_token += 1;
        {
            use std::os::fd::AsRawFd;
            poller.register(stream.as_raw_fd(), token, Interest::READ)?;
        }
        self.conns.insert(
            token,
            LoadConn {
                stream,
                decoder: FrameDecoder::new(),
                out: Vec::new(),
                out_pos: 0,
                want_write: false,
                state: ConnState::Greeting,
                tenant_idx,
                outstanding: HashMap::new(),
                finished_here: 0,
                next_client_job: 1,
                draining: false,
                dead: false,
            },
        );
        self.report.connections_opened += 1;
        Ok(())
    }

    /// Submit the next globally-assigned job on `token`, if any remain.
    /// Orphans from dead connections are served before fresh indices.
    fn submit_next(&mut self, token: u64) {
        let Some(taxa) = self.taxa.clone() else {
            return;
        };
        let (idx, first_submit_ns) = match self.requeue.pop() {
            Some(redo) => redo,
            None => {
                if self.next_job >= self.cfg.jobs {
                    return;
                }
                let idx = self.next_job;
                self.next_job += 1;
                (idx, self.now_ns())
            }
        };
        let high = self.cfg.high_every > 0 && idx.is_multiple_of(self.cfg.high_every);
        let newick = ladder_newick(&taxa, splitmix64(self.cfg.seed ^ idx));
        let key = format!("nlg-{}-{idx}", self.cfg.seed);
        let Some(conn) = self.conns.get_mut(&token) else {
            // Connection vanished between selection and submit: put
            // the job back.
            self.requeue.push((idx, first_submit_ns));
            return;
        };
        let client_job = conn.next_client_job;
        conn.next_client_job += 1;
        let tenant = format!("t{}", conn.tenant_idx % self.cfg.tenants.max(1));
        let frame = Request::Submit {
            client_job,
            tenant,
            priority: if high { 1 } else { 0 },
            deadline_ns: 0,
            idempotency_key: key.clone(),
            newick: newick.clone(),
        }
        .encode();
        conn.out.extend_from_slice(&frame);
        conn.outstanding.insert(
            client_job,
            PendingJob {
                idx,
                first_submit_ns,
                attempt: 0,
                high,
                newick,
                key,
            },
        );
    }

    /// Re-send a job already pending on `token` (same idempotency key,
    /// same client id — the server dedups if the original was
    /// admitted).
    fn resubmit(&mut self, token: u64, client_job: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let tenant = format!("t{}", conn.tenant_idx % self.cfg.tenants.max(1));
        let Some(job) = conn.outstanding.get(&client_job) else {
            return;
        };
        let frame = Request::Submit {
            client_job,
            tenant,
            priority: if job.high { 1 } else { 0 },
            deadline_ns: 0,
            idempotency_key: job.key.clone(),
            newick: job.newick.clone(),
        }
        .encode();
        conn.out.extend_from_slice(&frame);
        self.report.retries += 1;
    }

    /// Process one decoded response on `token`. Returns `true` if the
    /// engine's global accounting changed (a job reached a terminal
    /// state).
    fn handle_response(&mut self, token: u64, response: Response) {
        let now = self.now_ns();
        match response {
            Response::ServerInfo { taxa, .. } => {
                if self.taxa.is_none() {
                    self.taxa = Some(taxa);
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Active;
                }
            }
            Response::Draining => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.draining = true;
                }
            }
            Response::Completed { client_job, .. } => {
                if let Some(job) = self.take_job(token, client_job) {
                    self.latencies_ns
                        .push(now.saturating_sub(job.first_submit_ns));
                    self.report.completed += 1;
                    self.done += 1;
                }
            }
            Response::Failed { client_job, .. } => {
                if self.take_job(token, client_job).is_some() {
                    self.report.failed += 1;
                    self.done += 1;
                }
            }
            Response::Cancelled { client_job } => {
                if self.take_job(token, client_job).is_some() {
                    self.report.cancelled += 1;
                    self.done += 1;
                }
            }
            Response::DeadlineMissed { client_job } => {
                if self.take_job(token, client_job).is_some() {
                    self.report.deadline_missed += 1;
                    self.done += 1;
                }
            }
            Response::Error { client_job, .. } => {
                if self.take_job(token, client_job).is_some() {
                    self.report.errors += 1;
                    self.done += 1;
                }
            }
            Response::Reject {
                client_job,
                reason,
                retry_after_ns,
                ..
            } => {
                self.report.rejects_seen += 1;
                let attempt = self
                    .conns
                    .get(&token)
                    .and_then(|c| c.outstanding.get(&client_job))
                    .map(|j| j.attempt)
                    .unwrap_or(u32::MAX);
                if attempt != u32::MAX
                    && reason.is_retryable()
                    && self.cfg.retry.allows(attempt)
                {
                    let hint = if retry_after_ns > 0 {
                        Some(Duration::from_nanos(retry_after_ns))
                    } else {
                        None
                    };
                    let delay = self.cfg.retry.backoff(attempt, hint);
                    if let Some(job) = self
                        .conns
                        .get_mut(&token)
                        .and_then(|c| c.outstanding.get_mut(&client_job))
                    {
                        job.attempt += 1;
                    }
                    self.retry_queue
                        .push((now + delay.as_nanos() as u64, token, client_job));
                } else if self.take_job(token, client_job).is_some() {
                    self.report.rejected_final += 1;
                    self.done += 1;
                }
            }
        }
    }

    fn take_job(&mut self, token: u64, client_job: u64) -> Option<PendingJob> {
        let conn = self.conns.get_mut(&token)?;
        let job = conn.outstanding.remove(&client_job)?;
        conn.finished_here += 1;
        Some(job)
    }
}

/// Run the load profile against a server at `addr`. The function
/// returns when every assigned job reached a terminal state, or the
/// configured deadline lapsed (unresolved jobs count as `lost_acks`).
pub fn run(addr: impl ToSocketAddrs, cfg: &NetLoadConfig) -> io::Result<NetLoadReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut poller = Poller::new()?;
    let mut engine = Engine {
        cfg: cfg.clone(),
        addr,
        epoch: Instant::now(),
        conns: HashMap::new(),
        next_token: 1,
        next_job: 0,
        requeue: Vec::new(),
        done: 0,
        retry_queue: Vec::new(),
        latencies_ns: Vec::new(),
        taxa: None,
        report: NetLoadReport {
            connections: cfg.connections,
            tenants: cfg.tenants,
            ..NetLoadReport::default()
        },
    };

    // Ramp: open the initial fleet. Tenants cycle across connections.
    for i in 0..cfg.connections {
        if engine.open_conn(&poller, i).is_err() {
            engine.report.connection_failures += 1;
        }
    }

    let started = Instant::now();
    let mut events: Vec<Event> = Vec::new();
    let tick = Duration::from_millis(5);

    // Run until every job resolved AND no connection is still waiting
    // for its greeting — a tail churn reconnect must finish its
    // handshake (i.e. be accepted by the server) before the run ends,
    // so server-side connection counters agree with the report.
    while engine.done < cfg.jobs
        || engine
            .conns
            .values()
            .any(|c| matches!(c.state, ConnState::Greeting) && !c.dead)
    {
        if started.elapsed() >= cfg.deadline {
            break;
        }
        // Jobs can stall if every connection died (e.g. server gone).
        if engine.conns.is_empty() {
            break;
        }
        poller.wait(tick, &mut events)?;

        // 1. Socket readiness: read frames, note writables.
        let mut writable: Vec<u64> = Vec::new();
        for i in 0..events.len() {
            let ev = events.get(i).copied().unwrap_or(Event {
                token: 0,
                readable: false,
                writable: false,
                hangup: false,
            });
            if ev.writable {
                writable.push(ev.token);
            }
            if !(ev.readable || ev.hangup) {
                continue;
            }
            let mut frames = Vec::new();
            let mut dead = false;
            if let Some(conn) = engine.conns.get_mut(&ev.token) {
                let mut chunk = [0u8; 16 * 1024]; // plf-lint: allow(L3) — socket read chunk, not DMA
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => conn.decoder.feed(chunk.get(..n).unwrap_or(&[])),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.decoder.next_frame() {
                        Ok(Some(frame)) => frames.push(frame),
                        Ok(None) => break,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    conn.dead = true;
                }
            }
            for frame in frames {
                if let Ok(response) = Response::decode(&frame) {
                    engine.handle_response(ev.token, response);
                }
            }
        }

        // 2. Due retries rejoin their connection's output queue.
        let now = engine.now_ns();
        let due: Vec<(u64, u64, u64)> = {
            let (due, later): (Vec<_>, Vec<_>) =
                engine.retry_queue.drain(..).partition(|(t, _, _)| *t <= now);
            engine.retry_queue = later;
            due
        };
        for (_, token, client_job) in due {
            engine.resubmit(token, client_job);
        }

        // 3. Keep pipelines full on active, non-draining connections.
        // Churn-due connections are left to drain so the reap step can
        // actually reconnect them mid-run (otherwise the refill always
        // beats the churn check and churn degenerates to the tail).
        let churn_every = engine.cfg.churn_every;
        let fillable: Vec<u64> = engine
            .conns
            .iter()
            .filter(|(_, c)| {
                matches!(c.state, ConnState::Active)
                    && !c.draining
                    && !c.dead
                    && c.outstanding.len() < engine.cfg.pipeline
                    && !(churn_every > 0 && c.finished_here >= churn_every)
            })
            .map(|(t, _)| *t)
            .collect();
        for token in fillable {
            while engine
                .conns
                .get(&token)
                .map(|c| c.outstanding.len() < engine.cfg.pipeline)
                .unwrap_or(false)
                && (engine.next_job < engine.cfg.jobs || !engine.requeue.is_empty())
            {
                engine.submit_next(token);
            }
        }

        // 4. Flush pending output everywhere it's needed.
        let flush: Vec<u64> = engine
            .conns
            .iter()
            .filter(|(t, c)| c.pending_out() > 0 || writable.contains(t))
            .map(|(t, _)| *t)
            .collect();
        for token in flush {
            let Some(conn) = engine.conns.get_mut(&token) else {
                continue;
            };
            while conn.pending_out() > 0 {
                let chunk = conn.out.get(conn.out_pos..).unwrap_or(&[]);
                match conn.stream.write(chunk) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.pending_out() == 0 {
                conn.out.clear();
                conn.out_pos = 0;
            } else if conn.out_pos >= OUT_COMPACT {
                // Same compaction rule as the server: a never-fully-
                // drained buffer must not keep its consumed prefix.
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
            let want_write = conn.pending_out() > 0;
            if want_write != conn.want_write {
                conn.want_write = want_write;
                use std::os::fd::AsRawFd;
                let interest = if want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                let _ = poller.modify(conn.stream.as_raw_fd(), token, interest);
            }
        }

        // 5. Reap: dead connections lose their outstanding jobs (they
        // count as lost unless re-assigned); churned connections
        // reconnect under the next tenant. Churn stops once the job
        // pool is exhausted: a tail reconnect would carry no work and
        // could still be sitting un-accepted in the listener backlog
        // when the run ends.
        let churn = engine.cfg.churn_every;
        let more_work = engine.next_job < engine.cfg.jobs || !engine.requeue.is_empty();
        let reap: Vec<(u64, bool)> = engine
            .conns
            .iter()
            .filter_map(|(t, c)| {
                if c.dead {
                    Some((*t, false))
                } else if churn > 0
                    && more_work
                    && c.finished_here >= churn
                    && c.outstanding.is_empty()
                {
                    Some((*t, true))
                } else if c.draining && c.outstanding.is_empty() {
                    Some((*t, false))
                } else {
                    None
                }
            })
            .collect();
        for (token, is_churn) in reap {
            let Some(conn) = engine.conns.remove(&token) else {
                continue;
            };
            {
                use std::os::fd::AsRawFd;
                let _ = poller.deregister(conn.stream.as_raw_fd());
            }
            // Unfinished jobs on a dead conn go back to the shared
            // pool for re-submission on whichever connection next has
            // pipeline room. The idempotency key IS reused (it derives
            // from the job index): if the original submit was admitted
            // before the connection died, the redo dedups onto the
            // journaled outcome instead of executing twice; if it
            // never arrived, the key is unseen and the job runs fresh.
            if !conn.outstanding.is_empty() {
                engine.report.connection_failures += 1;
                for job in conn.outstanding.values() {
                    engine.requeue.push((job.idx, job.first_submit_ns));
                }
            }
            let tenant_idx = conn.tenant_idx + 1;
            drop(conn);
            if is_churn {
                engine.report.reconnects += 1;
                if engine.open_conn(&poller, tenant_idx).is_err() {
                    engine.report.connection_failures += 1;
                }
            }
        }
    }

    // Anything still outstanding — or orphaned and never re-assigned —
    // at the deadline is a lost ack.
    for conn in engine.conns.values() {
        engine.report.lost_acks += conn.outstanding.len() as u64;
    }
    engine.report.lost_acks += engine.requeue.len() as u64;

    let wall = started.elapsed();
    engine.latencies_ns.sort_unstable();
    let lat = &engine.latencies_ns;
    let mean_ms = if lat.is_empty() {
        0.0
    } else {
        lat.iter().map(|&n| n as f64).sum::<f64>() / lat.len() as f64 / 1e6
    };
    engine.report.latency_ms = LatencyMs {
        p50: percentile_ms(lat, 0.50),
        p99: percentile_ms(lat, 0.99),
        p999: percentile_ms(lat, 0.999),
        max: lat.last().copied().unwrap_or(0) as f64 / 1e6,
        mean: mean_ms,
    };
    engine.report.wall_ms = wall.as_secs_f64() * 1e3;
    engine.report.throughput_jobs_per_s = if wall.as_secs_f64() > 0.0 {
        engine.report.completed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    Ok(engine.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_newick_covers_all_taxa_once() {
        let taxa: Vec<String> = (0..8).map(|i| format!("tax{i}")).collect();
        let nwk = ladder_newick(&taxa, 42);
        assert!(nwk.ends_with(';'));
        for t in &taxa {
            assert_eq!(
                nwk.matches(t.as_str()).count(),
                1,
                "taxon {t} must appear exactly once in {nwk}"
            );
        }
        // Deterministic in the seed.
        assert_eq!(nwk, ladder_newick(&taxa, 42));
        assert_ne!(nwk, ladder_newick(&taxa, 43));
    }

    #[test]
    fn ladder_newick_parses_as_a_tree() {
        let taxa: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
        let nwk = ladder_newick(&taxa, 7);
        let tree = plf_phylo::tree::Tree::from_newick(&nwk).expect("valid newick");
        assert_eq!(tree.n_leaves(), 6);
        // Two-taxon edge case.
        let two: Vec<String> = vec!["a".into(), "b".into()];
        let nwk2 = ladder_newick(&two, 1);
        plf_phylo::tree::Tree::from_newick(&nwk2).expect("two-leaf tree");
    }

    #[test]
    fn percentiles_pick_expected_ranks() {
        let ns: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect();
        assert!((percentile_ms(&ns, 0.50) - 500.0).abs() <= 1.0);
        assert!((percentile_ms(&ns, 0.99) - 990.0).abs() <= 1.0);
        assert!((percentile_ms(&ns, 0.999) - 999.0).abs() <= 1.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }
}

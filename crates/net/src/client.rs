//! Blocking client for the plf-net protocol.
//!
//! [`NetClient`] is the remote counterpart of calling
//! [`PlfService::submit`](plfd::PlfService::submit) in-process: it
//! speaks the framed protocol over one TCP connection, and its
//! [`NetClient::submit_and_wait`] drives the *same*
//! [`RetryPolicy`](plfd::RetryPolicy) contract — a `Reject` frame's
//! `retry_after`/`jobs_ahead` hints come verbatim from
//! [`SubmitError`](plfd::SubmitError), so a remote caller backs off
//! exactly like a local one. Used by the network mode of
//! `plfr loadgen` and by the integration tests; the high-throughput
//! 10k-connection path lives in [`crate::loadgen`] instead (this type
//! is deliberately simple and blocking).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use plfd::RetryPolicy;

use crate::proto::{Request, Response};
use crate::wire::FrameDecoder;

/// The `ServerInfo` greeting every connection receives on accept.
#[derive(Debug, Clone)]
pub struct ServerGreeting {
    /// Service admission queue capacity.
    pub queue_capacity: u64,
    /// Worker pool size.
    pub workers: u64,
    /// Device-sized batching unit in patterns.
    pub unit_patterns: u64,
    /// Taxa names of the served dataset; trees submitted over this
    /// connection must use exactly these leaf names.
    pub taxa: Vec<String>,
}

/// One job submission's parameters (the tree goes as Newick text).
#[derive(Debug, Clone)]
pub struct SubmitParams {
    /// Accounting principal / fair-share bucket.
    pub tenant: String,
    /// `true` → high-priority lane.
    pub high_priority: bool,
    /// Relative deadline, if any.
    pub deadline: Option<Duration>,
    /// Idempotency key; [`NetClient::submit_and_wait`] generates a
    /// stable one when absent so its retries never double-execute.
    pub idempotency_key: Option<String>,
    /// The tree to score, as Newick over the server's taxa.
    pub newick: String,
}

fn bad_data(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// A nonce that distinguishes this connection's auto-generated
/// idempotency keys from every other connection's — including past
/// processes, since the server dedups keys globally and across
/// restarts via the journal. Mixes wall-clock nanos, the pid, the
/// ephemeral local port, and a process-wide counter so two clients
/// connecting in the same instant still diverge.
fn connection_nonce(stream: &TcpStream) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let port = stream.local_addr().map(|a| a.port() as u64).unwrap_or(0);
    let mut x = nanos
        ^ (u64::from(std::process::id()) << 32)
        ^ (port << 16)
        ^ SEQ.fetch_add(1, Ordering::Relaxed);
    // splitmix64 finalizer: spread the structured inputs over all bits.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A blocking connection to a [`NetServer`](crate::server::NetServer).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    greeting: ServerGreeting,
    /// Responses read while waiting for a different job.
    stashed: VecDeque<Response>,
    next_job: u64,
    /// Per-connection salt for auto-generated idempotency keys (the
    /// server dedups keys globally, so `client_job` alone would
    /// collide across connections).
    nonce: u64,
}

impl NetClient {
    /// Connect and read the `ServerInfo` greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let nonce = connection_nonce(&stream);
        let mut client = NetClient {
            stream,
            decoder: FrameDecoder::new(),
            greeting: ServerGreeting {
                queue_capacity: 0,
                workers: 0,
                unit_patterns: 0,
                taxa: Vec::new(),
            },
            stashed: VecDeque::new(),
            next_job: 1,
            nonce,
        };
        match client.recv()? {
            Response::ServerInfo {
                queue_capacity,
                workers,
                unit_patterns,
                taxa,
            } => {
                client.greeting = ServerGreeting {
                    queue_capacity,
                    workers,
                    unit_patterns,
                    taxa,
                };
                Ok(client)
            }
            other => Err(bad_data(format!(
                "expected ServerInfo greeting, got {other:?}"
            ))),
        }
    }

    /// The greeting this connection received.
    pub fn greeting(&self) -> &ServerGreeting {
        &self.greeting
    }

    /// Bound how long [`NetClient::recv`] blocks (None = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send a Submit frame; returns the connection-local job id to
    /// correlate the eventual response.
    pub fn submit(&mut self, params: &SubmitParams) -> io::Result<u64> {
        let client_job = self.next_job;
        self.next_job += 1;
        self.submit_as(client_job, params)?;
        Ok(client_job)
    }

    /// Send a Submit frame under a caller-chosen job id (retries reuse
    /// the id so responses stay correlated).
    pub fn submit_as(&mut self, client_job: u64, params: &SubmitParams) -> io::Result<()> {
        let request = Request::Submit {
            client_job,
            tenant: params.tenant.clone(),
            priority: if params.high_priority { 1 } else { 0 },
            deadline_ns: params
                .deadline
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
            idempotency_key: params.idempotency_key.clone().unwrap_or_default(),
            newick: params.newick.clone(),
        };
        self.stream.write_all(&request.encode())
    }

    /// Send a Cancel frame for a previously submitted job.
    pub fn cancel(&mut self, client_job: u64) -> io::Result<()> {
        self.stream.write_all(&Request::Cancel { client_job }.encode())
    }

    /// Block until the next response frame arrives.
    pub fn recv(&mut self) -> io::Result<Response> {
        if let Some(stashed) = self.stashed.pop_front() {
            return Ok(stashed);
        }
        let mut chunk = [0u8; 8 * 1024];
        loop {
            match self.decoder.next_frame().map_err(bad_data)? {
                Some(frame) => return Response::decode(&frame).map_err(bad_data),
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ));
                    }
                    self.decoder.feed(chunk.get(..n).unwrap_or(&[]));
                }
            }
        }
    }

    /// Block until the response for `client_job` arrives, stashing
    /// unrelated responses (other jobs on this connection) for later
    /// `recv` calls. `Draining` notices are skipped.
    pub fn wait_for(&mut self, client_job: u64) -> io::Result<Response> {
        // Check the stash first, then the wire.
        if let Some(i) = self
            .stashed
            .iter()
            .position(|r| r.client_job() == Some(client_job))
        {
            return Ok(self.stashed.remove(i).unwrap_or(Response::Draining));
        }
        loop {
            let response = {
                // Bypass the stash: recv() would replay what we just
                // stashed and spin.
                let mut chunk = [0u8; 8 * 1024];
                loop {
                    match self.decoder.next_frame().map_err(bad_data)? {
                        Some(frame) => break Response::decode(&frame).map_err(bad_data)?,
                        None => {
                            let n = self.stream.read(&mut chunk)?;
                            if n == 0 {
                                return Err(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "server closed the connection",
                                ));
                            }
                            self.decoder.feed(chunk.get(..n).unwrap_or(&[]));
                        }
                    }
                }
            };
            match response.client_job() {
                Some(id) if id == client_job => return Ok(response),
                Some(_) => self.stashed.push_back(response),
                None => {} // Draining / ServerInfo notices: skip.
            }
        }
    }

    /// Submit and wait for a terminal response, retrying retryable
    /// `Reject`s under `retry` with the server's own `retry_after`
    /// hint — the remote mirror of the in-process
    /// [`RetryPolicy`] loop in `plfd::loadgen`.
    pub fn submit_and_wait(
        &mut self,
        params: &SubmitParams,
        retry: &RetryPolicy,
    ) -> io::Result<Response> {
        let client_job = self.next_job;
        self.next_job += 1;
        // Retries must dedup server-side: pin an idempotency key now.
        // The connection nonce keeps it from colliding with other
        // connections' auto-keys in the server's global dedup map.
        let mut params = params.clone();
        if params.idempotency_key.is_none() {
            params.idempotency_key = Some(format!("net-{:016x}-{client_job}", self.nonce));
        }
        let mut attempt: u32 = 0;
        loop {
            self.submit_as(client_job, &params)?;
            let response = self.wait_for(client_job)?;
            match &response {
                Response::Reject {
                    reason,
                    retry_after_ns,
                    ..
                } if reason.is_retryable() && retry.allows(attempt) => {
                    let hint = if *retry_after_ns > 0 {
                        Some(Duration::from_nanos(*retry_after_ns))
                    } else {
                        None
                    };
                    std::thread::sleep(retry.backoff(attempt, hint));
                    attempt += 1;
                }
                _ => return Ok(response),
            }
        }
    }
}

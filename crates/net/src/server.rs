//! The event-driven socket server: one epoll reactor multiplexing
//! every client connection onto a [`PlfService`].
//!
//! Data path (DESIGN.md §16):
//!
//! ```text
//!  accept ─▶ FrameDecoder ─▶ Request::decode ─▶ FairQueue (WFQ+tokens)
//!                                                   │ pop
//!                                                   ▼
//!  client ◀─ write flush ◀─ Response::encode ◀─ PlfService::submit
//!                                  ▲                 │ ticket
//!                                  └── try_wait ◀────┘
//! ```
//!
//! Everything runs on the reactor thread: reads, frame decode, fair
//! scheduling, admission, outcome polling, and writes. The plfd worker
//! pool behind [`PlfService`] supplies the parallelism; the reactor
//! only ever *admits* (nonblocking) and *polls tickets* (nonblocking),
//! so a slow evaluation never stalls the event loop.
//!
//! Backpressure composes across three layers, each visible to the
//! remote client as a distinct [`RejectReason`]:
//!
//! 1. per-tenant staging caps / token buckets → `RateLimited`,
//! 2. the plfd bounded queue → `QueueFull` (verbatim `retry_after` +
//!    `jobs_ahead` from [`SubmitError`]),
//! 3. adaptive shedding → `Overloaded`.
//!
//! Drain: when the [`ShutdownFlag`] raises, the listener closes, every
//! connection receives a `Draining` frame, new submits are rejected as
//! `Draining`, already-staged work is forwarded unpaced, and in-flight
//! tickets are given `drain_timeout` to resolve before the reactor
//! returns the service to its caller (who owns journal-backed
//! [`PlfService::drain`]).

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plf_phylo::metrics::NetCounters;
use plf_phylo::model::SiteModel;
use plf_phylo::tree::Tree;
use plfd::{DatasetId, JobOutcome, JobSpec, JobTicket, PlfService, Priority, SubmitError};
use serde::Serialize;

use crate::poll::{Event, Interest, Poller};
use crate::proto::{RejectReason, Request, Response};
use crate::shutdown::ShutdownFlag;
use crate::tenant::{FairQueue, TenantPolicy};
use crate::wire::Frame;

/// Reactor token of the listening socket; connections count up from 1.
const LISTENER_TOKEN: u64 = 0;

/// Read chunk size per `read()` call.
const READ_CHUNK: usize = 16 * 1024; // plf-lint: allow(L3) — socket read chunk, not DMA

/// A connection whose un-flushed output exceeds this is a slow
/// consumer; it is disconnected rather than allowed to balloon server
/// memory.
const MAX_OUTBUF: usize = 8 * 1024 * 1024;

/// Once this many already-written bytes sit at the front of an output
/// buffer, compact it. Waiting for a fully-drained buffer is not
/// enough: a steady slow-but-never-stalled consumer would otherwise
/// grow `out` by its whole response throughput for the connection's
/// lifetime, with `MAX_OUTBUF` bounding only the unwritten tail.
const OUT_COMPACT: usize = 64 * 1024;

/// Tuning for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Policy for tenants without an explicit entry.
    pub default_policy: TenantPolicy,
    /// Per-tenant overrides, applied at bind time.
    pub tenant_policies: Vec<(String, TenantPolicy)>,
    /// Hard cap on concurrently open connections; excess accepts are
    /// closed immediately.
    pub max_connections: usize,
    /// Reactor tick: upper bound on how long `epoll_wait` parks when
    /// nothing is ready (ticket polling runs at least this often).
    pub tick: Duration,
    /// Budget for in-flight jobs to resolve during drain before the
    /// reactor gives up and reports them unresolved.
    pub drain_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            default_policy: TenantPolicy::default(),
            tenant_policies: Vec::new(),
            max_connections: 16 * 1024, // plf-lint: allow(L3) — connection cap, not DMA
            tick: Duration::from_millis(10),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// What the reactor did over its lifetime; emitted alongside the
/// [`NetCounters`] snapshot when `plfr serve --listen` exits.
#[derive(Debug, Clone, Default, Serialize)]
pub struct NetServerReport {
    /// Connections accepted (excludes over-cap immediate closes).
    pub accepted: u64,
    /// Jobs forwarded to the service and completed over the wire.
    pub completed: u64,
    /// Reject frames sent (all reasons).
    pub rejected: u64,
    /// Structurally bad frames / undecodable requests.
    pub protocol_errors: u64,
    /// In-flight jobs resolved during the drain window.
    pub drained_in_flight: u64,
    /// In-flight jobs still unresolved when the drain budget lapsed
    /// (each received an `Error` frame; the journal still owns them).
    pub unresolved: u64,
}

struct Conn {
    stream: TcpStream,
    decoder: crate::wire::FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    want_write: bool,
    /// Flush remaining output, then close.
    closing: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// A decoded Submit waiting in the fair queue for its turn at the
/// service.
struct StagedSubmit {
    token: u64,
    client_job: u64,
    tenant: String,
    priority: Priority,
    deadline_ns: u64,
    idempotency_key: String,
    tree: Tree,
}

struct Inflight {
    token: u64,
    client_job: u64,
    tenant: String,
    ticket: JobTicket,
}

/// The epoll-driven socket front end. Owns the listener, every
/// connection, the per-tenant fair queue, and the [`PlfService`] it
/// feeds; [`NetServer::run`] gives the service back when the reactor
/// exits so the caller can finish the journal-backed drain.
pub struct NetServer {
    listener: Option<TcpListener>,
    local_addr: SocketAddr,
    poller: Poller,
    service: PlfService,
    dataset: DatasetId,
    model: SiteModel,
    server_info_frame: Vec<u8>,
    config: NetServerConfig,
    shutdown: ShutdownFlag,
    counters: Arc<NetCounters>,
    epoch: Instant,

    conns: HashMap<u64, Conn>,
    next_token: u64,
    fair: FairQueue<StagedSubmit>,
    /// Staged jobs cancelled before they reached the service.
    cancelled_staged: HashSet<(u64, u64)>,
    inflight: Vec<Inflight>,
    draining: bool,
    drain_started: Option<Instant>,
    report: NetServerReport,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and prepare the reactor.
    ///
    /// `dataset` must already be registered on `service`; its taxa
    /// names are advertised to every client in the `ServerInfo`
    /// greeting, so remote load generators need no local copy of the
    /// alignment.
    pub fn bind(
        addr: &str,
        service: PlfService,
        dataset: DatasetId,
        model: SiteModel,
        config: NetServerConfig,
        shutdown: ShutdownFlag,
        counters: Arc<NetCounters>,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        {
            use std::os::fd::AsRawFd;
            poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        }
        let taxa = service
            .dataset(dataset)
            .map(|d| d.taxa().to_vec())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "dataset not registered")
            })?;
        let server_info_frame = Response::ServerInfo {
            queue_capacity: service.queue_capacity() as u64,
            workers: service.n_workers() as u64,
            unit_patterns: service.unit_patterns() as u64,
            taxa,
        }
        .encode();
        let mut fair = FairQueue::new(config.default_policy);
        for (tenant, policy) in &config.tenant_policies {
            fair.configure_tenant(tenant, *policy, 0);
        }
        Ok(NetServer {
            listener: Some(listener),
            local_addr,
            poller,
            service,
            dataset,
            model,
            server_info_frame,
            config,
            shutdown,
            counters,
            epoch: Instant::now(),
            conns: HashMap::new(),
            next_token: 1,
            fair,
            cancelled_staged: HashSet::new(),
            inflight: Vec::new(),
            draining: false,
            drain_started: None,
            report: NetServerReport::default(),
        })
    }

    /// The bound address (port resolved when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Run the reactor until shutdown is requested and the drain
    /// completes. Returns the service (for the journal-backed drain /
    /// snapshot the caller owns) and the lifetime report.
    pub fn run(mut self) -> io::Result<(PlfService, NetServerReport)> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shutdown.is_requested() && !self.draining {
                self.begin_drain();
            }

            let timeout = self.poll_timeout();
            self.poller.wait(timeout, &mut events)?;

            // `events` is a local scratch vector, so iterating it does
            // not alias the `&mut self` the handlers need.
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    if ev.readable || ev.hangup {
                        self.read_ready(ev.token, ev.hangup);
                    }
                    if ev.writable {
                        self.flush_conn(ev.token);
                    }
                }
            }

            self.pump_fair_queue();
            self.poll_inflight();
            self.flush_all();
            self.reap_closed();

            if self.draining && self.drain_complete() {
                break;
            }
        }
        self.finish_drain();
        self.report.protocol_errors = self.counters.snapshot().protocol_errors;
        Ok((self.service, self.report))
    }

    fn poll_timeout(&mut self) -> Duration {
        let tick = self.config.tick;
        // When every staged job is token-starved, the earliest refill
        // bounds how soon waking is useful; never park past the tick
        // either, because in-flight tickets resolve asynchronously.
        let now = self.now_ns();
        match self.fair.next_ready_in(now) {
            Some(wait) if !wait.is_zero() => tick.min(wait),
            _ => tick,
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_started = Some(Instant::now());
        // Stop accepting: deregister and drop the listener so the
        // port closes immediately.
        if let Some(listener) = self.listener.take() {
            use std::os::fd::AsRawFd;
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        let draining = Response::Draining.encode();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.queue_bytes(token, &draining);
        }
    }

    fn drain_complete(&self) -> bool {
        if self.fair.is_empty() && self.inflight.is_empty() {
            return true;
        }
        match self.drain_started {
            Some(t) => t.elapsed() >= self.config.drain_timeout,
            None => false,
        }
    }

    fn finish_drain(&mut self) {
        // Final read sweep: requests a client managed to write before
        // the drain won the race are answered (a buffered Submit gets
        // a Draining reject) instead of vanishing into a closed
        // socket. Draining rejects cannot grow the queue or the
        // in-flight set, so this terminates.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.read_ready(token, false);
        }
        // Anything still unresolved gets an explicit Error frame; the
        // journal owns the job from here (recovery replays it).
        let unresolved: Vec<(u64, u64)> = self
            .inflight
            .iter()
            .map(|f| (f.token, f.client_job))
            .collect();
        self.report.unresolved = unresolved.len() as u64;
        for (token, client_job) in unresolved {
            self.send_response(
                token,
                &Response::Error {
                    client_job,
                    message: "drain budget exhausted; job journaled for recovery".to_string(),
                },
            );
        }
        // Flush the response backlog with a short bounded budget (a
        // single best-effort pass can drop final frames behind a full
        // socket buffer), then close everything.
        let flush_deadline = Instant::now() + Duration::from_millis(250);
        loop {
            self.flush_all();
            let pending = self
                .conns
                .values()
                .any(|c| !c.closing && c.pending_out() > 0);
            if !pending || Instant::now() >= flush_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
            self.counters.record_drained_connection();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        // Over cap: close immediately (client sees EOF
                        // before ServerInfo and knows to back off).
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    {
                        use std::os::fd::AsRawFd;
                        if self
                            .poller
                            .register(stream.as_raw_fd(), token, Interest::READ)
                            .is_err()
                        {
                            continue;
                        }
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: crate::wire::FrameDecoder::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            want_write: false,
                            closing: false,
                        },
                    );
                    self.counters.record_conn_open();
                    self.report.accepted += 1;
                    let greeting = self.server_info_frame.clone();
                    self.queue_bytes(token, &greeting);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn read_ready(&mut self, token: u64, hangup: bool) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = hangup;
        let mut frames: Vec<Frame> = Vec::new();
        let mut poisoned = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.feed(chunk.get(..n).unwrap_or(&[]));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            loop {
                match conn.decoder.next_frame() {
                    Ok(Some(frame)) => frames.push(frame),
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
        }
        for frame in frames {
            self.counters.record_frame_in(frame.wire_len as u64);
            self.handle_frame(token, &frame);
        }
        if poisoned {
            self.protocol_error(token, 0, "malformed frame");
        }
        if eof {
            if let Some(conn) = self.conns.get_mut(&token) {
                // Peer is gone: no point flushing a response backlog.
                conn.out.clear();
                conn.out_pos = 0;
                conn.closing = true;
            }
        }
    }

    fn protocol_error(&mut self, token: u64, client_job: u64, message: &str) {
        self.counters.record_protocol_error();
        self.send_response(
            token,
            &Response::Error {
                client_job,
                message: message.to_string(),
            },
        );
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.closing = true;
        }
    }

    fn handle_frame(&mut self, token: u64, frame: &Frame) {
        let request = match Request::decode(frame) {
            Ok(request) => request,
            Err(e) => {
                self.protocol_error(token, 0, &format!("bad request: {e}"));
                return;
            }
        };
        match request {
            Request::Submit {
                client_job,
                tenant,
                priority,
                deadline_ns,
                idempotency_key,
                newick,
            } => self.handle_submit(
                token,
                client_job,
                tenant,
                priority,
                deadline_ns,
                idempotency_key,
                newick,
            ),
            Request::Cancel { client_job } => self.handle_cancel(token, client_job),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_submit(
        &mut self,
        token: u64,
        client_job: u64,
        tenant: String,
        priority: u8,
        deadline_ns: u64,
        idempotency_key: String,
        newick: String,
    ) {
        if self.draining {
            self.send_reject(token, client_job, &tenant, RejectReason::Draining, None, 0);
            return;
        }
        let tree = match Tree::from_newick(&newick) {
            Ok(tree) => tree,
            Err(e) => {
                self.counters.record_protocol_error();
                self.send_response(
                    token,
                    &Response::Error {
                        client_job,
                        message: format!("bad newick: {e}"),
                    },
                );
                return;
            }
        };
        let priority = if priority == 1 {
            Priority::High
        } else {
            Priority::Normal
        };
        let staged = StagedSubmit {
            token,
            client_job,
            tenant: tenant.clone(),
            priority,
            deadline_ns,
            idempotency_key,
            tree,
        };
        let now = self.now_ns();
        match self.fair.push(&tenant, priority, staged, now) {
            Ok(()) => {
                self.counters.record_net_submitted(&tenant);
            }
            Err(reject) => {
                self.counters.record_net_rate_limited(&tenant);
                let jobs_ahead = self.fair.pending(&tenant) as u64;
                self.send_reject(
                    token,
                    client_job,
                    &tenant,
                    RejectReason::RateLimited,
                    Some(reject.retry_after()),
                    jobs_ahead,
                );
            }
        }
    }

    fn handle_cancel(&mut self, token: u64, client_job: u64) {
        if let Some(inflight) = self
            .inflight
            .iter()
            .find(|f| f.token == token && f.client_job == client_job)
        {
            // Outcome resolution will surface Cancelled (or a
            // completed result if evaluation already started).
            inflight.ticket.cancel();
            return;
        }
        // Not in flight: mark for skip only if actually staged.
        // Marking unknown ids would let a client grow the set without
        // bound and would silently swallow a later submit that reuses
        // the id; cancel stays idempotent either way because the
        // response below is unconditional.
        if self
            .fair
            .any_staged(|s| s.token == token && s.client_job == client_job)
        {
            self.cancelled_staged.insert((token, client_job));
        }
        self.send_response(token, &Response::Cancelled { client_job });
    }

    /// Forward staged jobs to the service in fair order. Stops early
    /// on service backpressure so remaining staged work keeps its
    /// position instead of converting into a reject storm.
    fn pump_fair_queue(&mut self) {
        loop {
            let now = self.now_ns();
            let popped = if self.draining {
                self.fair.pop_unpaced(now)
            } else {
                self.fair.pop(now)
            };
            let Some((_tenant, staged)) = popped else {
                return;
            };
            if self
                .cancelled_staged
                .remove(&(staged.token, staged.client_job))
            {
                // Cancelled while staged; the Cancelled response was
                // already sent by handle_cancel.
                continue;
            }
            if !self.conns.contains_key(&staged.token) {
                // Client disconnected while staged: drop silently.
                continue;
            }
            let mut spec = JobSpec::new(
                staged.tenant.clone(),
                self.dataset,
                staged.tree,
                self.model.clone(),
            )
            .with_priority(staged.priority);
            if staged.deadline_ns > 0 {
                spec = spec.with_deadline(Duration::from_nanos(staged.deadline_ns));
            }
            if !staged.idempotency_key.is_empty() {
                spec = spec.with_idempotency_key(staged.idempotency_key.clone());
            }
            match self.service.submit(spec) {
                Ok(ticket) => {
                    self.inflight.push(Inflight {
                        token: staged.token,
                        client_job: staged.client_job,
                        tenant: staged.tenant,
                        ticket,
                    });
                }
                Err(err) => {
                    let stop = self.reject_from_submit_error(
                        staged.token,
                        staged.client_job,
                        &staged.tenant,
                        &err,
                    );
                    if stop {
                        return;
                    }
                }
            }
        }
    }

    /// Map a [`SubmitError`] onto the wire and decide whether to stop
    /// pumping this tick (true = backpressure, let the queue breathe).
    fn reject_from_submit_error(
        &mut self,
        token: u64,
        client_job: u64,
        tenant: &str,
        err: &SubmitError,
    ) -> bool {
        match err {
            SubmitError::QueueFull { .. } => {
                self.counters.record_net_reject_queue_full(tenant);
                self.send_reject(
                    token,
                    client_job,
                    tenant,
                    RejectReason::QueueFull,
                    err.retry_after(),
                    err.jobs_ahead().unwrap_or(0) as u64,
                );
                true
            }
            SubmitError::Overloaded { .. } => {
                self.counters.record_net_reject_overloaded(tenant);
                self.send_reject(
                    token,
                    client_job,
                    tenant,
                    RejectReason::Overloaded,
                    err.retry_after(),
                    err.jobs_ahead().unwrap_or(0) as u64,
                );
                true
            }
            SubmitError::Closed => {
                self.send_reject(token, client_job, tenant, RejectReason::Closed, None, 0);
                false
            }
            SubmitError::UnknownDataset(_) | SubmitError::Journal { .. } => {
                self.send_response(
                    token,
                    &Response::Error {
                        client_job,
                        message: format!("submit failed: {err}"),
                    },
                );
                false
            }
        }
    }

    fn send_reject(
        &mut self,
        token: u64,
        client_job: u64,
        _tenant: &str,
        reason: RejectReason,
        retry_after: Option<Duration>,
        jobs_ahead: u64,
    ) {
        self.report.rejected += 1;
        let retry_after_ns = retry_after.map(|d| d.as_nanos() as u64).unwrap_or(0);
        self.send_response(
            token,
            &Response::Reject {
                client_job,
                reason,
                retry_after_ns,
                jobs_ahead,
            },
        );
    }

    /// Nonblocking sweep over in-flight tickets; resolved outcomes
    /// become response frames.
    fn poll_inflight(&mut self) {
        let mut resolved: Vec<(u64, u64, String, JobOutcome)> = Vec::new();
        self.inflight.retain(|f| match f.ticket.try_wait() {
            Some(outcome) => {
                resolved.push((f.token, f.client_job, f.tenant.clone(), outcome));
                false
            }
            None => true,
        });
        let draining = self.draining;
        for (token, client_job, tenant, outcome) in resolved {
            if draining {
                self.report.drained_in_flight += 1;
            }
            let response = match outcome {
                JobOutcome::Completed {
                    ln_likelihood,
                    wait,
                    service,
                    backend,
                } => {
                    self.counters.record_net_completed(&tenant);
                    self.report.completed += 1;
                    Response::Completed {
                        client_job,
                        ln_likelihood,
                        wait_ns: wait.as_nanos() as u64,
                        service_ns: service.as_nanos() as u64,
                        backend,
                    }
                }
                JobOutcome::Cancelled => Response::Cancelled { client_job },
                JobOutcome::DeadlineMissed => Response::DeadlineMissed { client_job },
                JobOutcome::Failed { error } => Response::Failed { client_job, error },
            };
            self.send_response(token, &response);
        }
    }

    fn send_response(&mut self, token: u64, response: &Response) {
        let bytes = response.encode();
        self.queue_bytes(token, &bytes);
    }

    fn queue_bytes(&mut self, token: u64, bytes: &[u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.closing {
            return;
        }
        conn.out.extend_from_slice(bytes);
        self.counters.record_frame_out(bytes.len() as u64);
        if conn.pending_out() > MAX_OUTBUF {
            // Slow consumer: cut it loose rather than buffer without
            // bound. The journal still owns any in-flight work.
            conn.out.clear();
            conn.out_pos = 0;
            conn.closing = true;
        }
    }

    /// Write as much pending output as the socket accepts; keeps epoll
    /// write-interest in sync with whether a backlog remains.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.pending_out() > 0 {
            let chunk = conn.out.get(conn.out_pos..).unwrap_or(&[]);
            match conn.stream.write(chunk) {
                Ok(0) => {
                    conn.closing = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.out.clear();
                    conn.out_pos = 0;
                    conn.closing = true;
                    break;
                }
            }
        }
        if conn.pending_out() == 0 {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos >= OUT_COMPACT {
            // Backlog remains: shift it down so consumed bytes don't
            // accumulate at the front forever.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        let want_write = conn.pending_out() > 0;
        if want_write != conn.want_write {
            conn.want_write = want_write;
            let interest = if want_write {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            use std::os::fd::AsRawFd;
            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, interest);
        }
    }

    fn flush_all(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.pending_out() > 0)
            .map(|(t, _)| *t)
            .collect();
        for token in tokens {
            self.flush_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            use std::os::fd::AsRawFd;
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.counters.record_conn_close();
        }
        // Any jobs this connection still has in flight keep running
        // (results are journaled); their responses just have nowhere
        // to go. Drop the bookkeeping, including cancellation marks
        // whose staged job will now be dropped on pop anyway.
        self.inflight.retain(|f| f.token != token);
        self.cancelled_staged.retain(|(t, _)| *t != token);
    }

    fn reap_closed(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.closing && c.pending_out() == 0)
            .map(|(t, _)| *t)
            .collect();
        for token in tokens {
            self.close_conn(token);
        }
    }
}

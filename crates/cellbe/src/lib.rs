//! # plf-cellbe — execution-driven Cell/BE simulator
//!
//! Reproduces §3.3 of the paper: the PLF mapped onto PPE + SPEs with
//! two-level data partitioning, 256 KB Local Store budgets, ≤16 KB DMA
//! transfers with double buffering (Figure 7), an FSM-per-SPE control
//! protocol, and both SIMD schedules (row-wise vs the 2× faster
//! column-wise). The kernels really execute (bitwise-identical to the
//! scalar reference); timing comes from the calibrated model in
//! [`timing`].
//!
//! Real Cell/BE hardware is extinct; see DESIGN.md for why this
//! substitution preserves the paper's measured behaviour.

#![warn(missing_docs)]

pub mod backend;
pub mod dma;
pub mod fsm;
pub mod ls;
pub mod model;
pub mod schedule;
pub mod timing;

pub use backend::{CellBackend, CellRunStats};
pub use model::CellModel;
pub use schedule::{double_buffered_schedule, render_gantt, EventKind, ScheduleEvent};
pub use timing::{CellCalibration, KernelKind};

//! The per-SPE finite state machine.
//!
//! §3.3: "The PLFs execution on the SPUs is coordinated by a simple
//! local Finite State Machine (FSM) through messages issued by the PPE,
//! namely: to trigger the execution of the PLF functions, the
//! calculation of the chunk sizes, and to finalize the computation."
//! The simulator drives exactly that protocol and rejects illegal
//! transitions, so the control flow of the Cell port is testable.

/// Messages the PPE sends an SPE (via direct problem-state access, the
/// paper's chosen low-latency mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpeMessage {
    /// Compute chunk sizes for a (possibly new) sequence length.
    Configure {
        /// Patterns assigned to this SPE.
        patterns: usize,
        /// Second-level chunk size in patterns.
        chunk_patterns: usize,
    },
    /// Run CondLikeDown over the configured range.
    RunDown,
    /// Run CondLikeRoot over the configured range.
    RunRoot,
    /// Run CondLikeScaler over the configured range.
    RunScale,
    /// Shut the SPE thread down.
    Finalize,
}

/// SPE lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeState {
    /// Thread started, no chunk configuration yet.
    Idle,
    /// Chunk sizes known; ready to run kernels.
    Ready,
    /// Finalized; accepts no further messages.
    Done,
}

/// Protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmError {
    /// The state the SPE was in.
    pub state: SpeState,
    /// The offending message.
    pub message: &'static str,
}

impl std::fmt::Display for FsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal SPE message {} in state {:?}", self.message, self.state)
    }
}

impl std::error::Error for FsmError {}

/// One SPE's control-state machine.
#[derive(Debug, Clone)]
pub struct SpeFsm {
    state: SpeState,
    patterns: usize,
    chunk_patterns: usize,
    kernels_run: u64,
}

impl Default for SpeFsm {
    fn default() -> Self {
        SpeFsm::new()
    }
}

impl SpeFsm {
    /// A freshly spawned SPE thread.
    pub fn new() -> SpeFsm {
        SpeFsm {
            state: SpeState::Idle,
            patterns: 0,
            chunk_patterns: 0,
            kernels_run: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SpeState {
        self.state
    }

    /// Patterns currently assigned.
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Configured chunk size.
    pub fn chunk_patterns(&self) -> usize {
        self.chunk_patterns
    }

    /// Kernels executed so far (for trace assertions).
    pub fn kernels_run(&self) -> u64 {
        self.kernels_run
    }

    /// Number of second-level chunks the current configuration implies.
    pub fn n_chunks(&self) -> usize {
        if self.patterns == 0 {
            0
        } else {
            self.patterns.div_ceil(self.chunk_patterns)
        }
    }

    /// Deliver a PPE message.
    pub fn handle(&mut self, msg: PpeMessage) -> Result<(), FsmError> {
        match (self.state, msg) {
            (SpeState::Done, _) => Err(FsmError {
                state: self.state,
                message: "any (SPE already finalized)",
            }),
            (_, PpeMessage::Configure { patterns, chunk_patterns }) => {
                if chunk_patterns == 0 {
                    return Err(FsmError {
                        state: self.state,
                        message: "Configure with zero chunk size",
                    });
                }
                self.patterns = patterns;
                self.chunk_patterns = chunk_patterns;
                self.state = SpeState::Ready;
                Ok(())
            }
            (SpeState::Idle, PpeMessage::RunDown | PpeMessage::RunRoot | PpeMessage::RunScale) => {
                Err(FsmError {
                    state: self.state,
                    message: "Run before Configure",
                })
            }
            (SpeState::Ready, PpeMessage::RunDown | PpeMessage::RunRoot | PpeMessage::RunScale) => {
                self.kernels_run += 1;
                Ok(())
            }
            (_, PpeMessage::Finalize) => {
                self.state = SpeState::Done;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path() {
        let mut fsm = SpeFsm::new();
        assert_eq!(fsm.state(), SpeState::Idle);
        fsm.handle(PpeMessage::Configure { patterns: 100, chunk_patterns: 32 }).unwrap();
        assert_eq!(fsm.state(), SpeState::Ready);
        assert_eq!(fsm.n_chunks(), 4);
        fsm.handle(PpeMessage::RunDown).unwrap();
        fsm.handle(PpeMessage::RunScale).unwrap();
        assert_eq!(fsm.kernels_run(), 2);
        fsm.handle(PpeMessage::Finalize).unwrap();
        assert_eq!(fsm.state(), SpeState::Done);
    }

    #[test]
    fn run_before_configure_rejected() {
        let mut fsm = SpeFsm::new();
        assert!(fsm.handle(PpeMessage::RunDown).is_err());
        assert!(fsm.handle(PpeMessage::RunRoot).is_err());
    }

    #[test]
    fn messages_after_finalize_rejected() {
        let mut fsm = SpeFsm::new();
        fsm.handle(PpeMessage::Finalize).unwrap();
        assert!(fsm
            .handle(PpeMessage::Configure { patterns: 1, chunk_patterns: 1 })
            .is_err());
        assert!(fsm.handle(PpeMessage::RunDown).is_err());
    }

    #[test]
    fn reconfiguration_for_different_lengths() {
        // §3.3: "sequences of data with different sizes can be used at
        // the same time" — the PPE reconfigures chunk sizes on the fly.
        let mut fsm = SpeFsm::new();
        fsm.handle(PpeMessage::Configure { patterns: 1000, chunk_patterns: 100 }).unwrap();
        assert_eq!(fsm.n_chunks(), 10);
        fsm.handle(PpeMessage::Configure { patterns: 64, chunk_patterns: 100 }).unwrap();
        assert_eq!(fsm.n_chunks(), 1);
    }

    #[test]
    fn zero_chunk_configure_rejected() {
        let mut fsm = SpeFsm::new();
        assert!(fsm
            .handle(PpeMessage::Configure { patterns: 10, chunk_patterns: 0 })
            .is_err());
    }
}

//! Explicit double-buffering schedules — Figure 7 regenerated.
//!
//! [`double_buffered_schedule`] lays the per-chunk DMA and compute
//! phases on a timeline under the same semantics as
//! [`crate::dma::double_buffered_time`]: chunk *i* computes while the
//! DMA engine writes back chunk *i−1* and prefetches chunk *i+1*. The
//! event list drives the `fig07` rendering binary and lets tests verify
//! the overlap invariants (compute never waits for its own operands;
//! the DMA engine serves one transfer at a time).

use crate::dma::ChunkCost;

/// What a schedule event does (the paper's T/C/R labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// `T` — operand transfer into the Local Store.
    TransferIn,
    /// `C` — SPU computation.
    Compute,
    /// `R` — result transfer back to main memory.
    TransferOut,
}

/// One scheduled phase of one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleEvent {
    /// Phase kind.
    pub kind: EventKind,
    /// Chunk index.
    pub chunk: usize,
    /// Start time (seconds from the call start).
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Build the double-buffered timeline for a chunk pipeline.
pub fn double_buffered_schedule(chunks: &[ChunkCost]) -> Vec<ScheduleEvent> {
    let n = chunks.len();
    let mut events = Vec::with_capacity(3 * n);
    if n == 0 {
        return events;
    }
    // Fill: first chunk's operands.
    events.push(ScheduleEvent {
        kind: EventKind::TransferIn,
        chunk: 0,
        start: 0.0,
        end: chunks[0].dma_in,
    });
    let mut t = chunks[0].dma_in;
    for i in 0..n {
        let compute_end = t + chunks[i].compute;
        events.push(ScheduleEvent {
            kind: EventKind::Compute,
            chunk: i,
            start: t,
            end: compute_end,
        });
        // The DMA engine works through the window serially: results of
        // the previous chunk out, then the next chunk's operands in.
        let mut dma_t = t;
        if i > 0 {
            events.push(ScheduleEvent {
                kind: EventKind::TransferOut,
                chunk: i - 1,
                start: dma_t,
                end: dma_t + chunks[i - 1].dma_out,
            });
            dma_t += chunks[i - 1].dma_out;
        }
        if i + 1 < n {
            events.push(ScheduleEvent {
                kind: EventKind::TransferIn,
                chunk: i + 1,
                start: dma_t,
                end: dma_t + chunks[i + 1].dma_in,
            });
            dma_t += chunks[i + 1].dma_in;
        }
        t = compute_end.max(dma_t);
    }
    // Drain: last chunk's results.
    events.push(ScheduleEvent {
        kind: EventKind::TransferOut,
        chunk: n - 1,
        start: t,
        end: t + chunks[n - 1].dma_out,
    });
    events
}

/// Render a schedule as an ASCII Gantt chart (three lanes: T, C, R),
/// `width` characters wide.
pub fn render_gantt(events: &[ScheduleEvent], width: usize) -> String {
    let total = events.iter().fold(0.0f64, |m, e| m.max(e.end));
    if total <= 0.0 || events.is_empty() {
        return String::from("(empty schedule)\n");
    }
    let scale = width as f64 / total;
    let mut lanes = [
        (EventKind::TransferIn, vec![b' '; width], "T in  "),
        (EventKind::Compute, vec![b' '; width], "C run "),
        (EventKind::TransferOut, vec![b' '; width], "R out "),
    ];
    for e in events {
        let lane = lanes
            .iter_mut()
            .find(|(k, _, _)| *k == e.kind)
            .expect("three lanes cover all kinds");
        let s = (e.start * scale).floor() as usize;
        let fe = ((e.end * scale).ceil() as usize).clamp(s + 1, width);
        let digit = b'0' + (e.chunk % 10) as u8;
        for c in lane.1[s..fe].iter_mut() {
            *c = digit;
        }
    }
    let mut out = String::new();
    for (_, lane, label) in &lanes {
        out.push_str(label);
        out.push('|');
        out.push_str(std::str::from_utf8(lane).expect("ascii"));
        out.push_str("|\n");
    }
    out.push_str(&format!("total: {:.1} µs\n", total * 1e6));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::double_buffered_time;

    fn chunks() -> Vec<ChunkCost> {
        vec![
            ChunkCost { dma_in: 2.0, compute: 5.0, dma_out: 1.0 },
            ChunkCost { dma_in: 2.0, compute: 5.0, dma_out: 1.0 },
            ChunkCost { dma_in: 2.0, compute: 5.0, dma_out: 1.0 },
        ]
    }

    #[test]
    fn schedule_end_matches_pipeline_time() {
        let cs = chunks();
        let events = double_buffered_schedule(&cs);
        let end = events.iter().fold(0.0f64, |m, e| m.max(e.end));
        assert!((end - double_buffered_time(&cs)).abs() < 1e-12);
    }

    #[test]
    fn compute_never_precedes_its_transfer_in() {
        let events = double_buffered_schedule(&chunks());
        for e in &events {
            if e.kind == EventKind::Compute {
                let t_in = events
                    .iter()
                    .find(|x| x.kind == EventKind::TransferIn && x.chunk == e.chunk)
                    .expect("every chunk transfers in");
                assert!(e.start >= t_in.end - 1e-12, "chunk {} computed early", e.chunk);
            }
        }
    }

    #[test]
    fn transfer_out_follows_compute() {
        let events = double_buffered_schedule(&chunks());
        for e in &events {
            if e.kind == EventKind::TransferOut {
                let c = events
                    .iter()
                    .find(|x| x.kind == EventKind::Compute && x.chunk == e.chunk)
                    .unwrap();
                assert!(e.start >= c.end - 1e-12, "chunk {} wrote back early", e.chunk);
            }
        }
    }

    #[test]
    fn dma_engine_serves_serially() {
        // DMA events (in + out lanes) must not overlap each other.
        let mut dma: Vec<&ScheduleEvent> = Vec::new();
        let events = double_buffered_schedule(&chunks());
        for e in &events {
            if e.kind != EventKind::Compute {
                dma.push(e);
            }
        }
        dma.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for pair in dma.windows(2) {
            assert!(
                pair[1].start >= pair[0].end - 1e-12,
                "DMA overlap: {:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn gantt_renders() {
        let g = render_gantt(&double_buffered_schedule(&chunks()), 60);
        assert!(g.contains("C run"));
        assert!(g.lines().count() == 4);
        assert_eq!(render_gantt(&[], 60), "(empty schedule)\n");
    }

    #[test]
    fn empty_pipeline_empty_schedule() {
        assert!(double_buffered_schedule(&[]).is_empty());
    }
}

//! Local Store budget accounting.
//!
//! Each SPE owns 256 KB of Local Store holding *everything*: code, stack,
//! control structures, and the double-buffered data the DMA engine
//! streams through. The paper reports the PLF code occupies 90 KB
//! (§3.3); the rest is available for likelihood-vector chunks. This
//! module enforces that budget — the simulator refuses to schedule a
//! chunk that would not fit, exactly like real SPE code would crash.

/// Total Local Store per SPE: 256 KB (shared geometry constant).
pub const LOCAL_STORE_BYTES: usize = plf_phylo::constants::LS_BYTES;

/// Code footprint of the PLF kernels on the SPE (paper §3.3: "only 90KB").
pub const CODE_BYTES: usize = 90 * 1024;

/// Stack + FSM control structures + mailbox buffers.
pub const CONTROL_BYTES: usize = 8 * 1024;

/// DMA alignment requirement (§3.3: arrays aligned to a 128-byte
/// boundary — the same boundary CLVs are allocated on).
pub const DMA_ALIGN: usize = plf_phylo::constants::CLV_ALIGN;

/// A Local Store allocation plan for one kernel's working buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct LsPlan {
    /// Bytes reserved per buffer (one chunk of one operand).
    pub buffer_bytes: usize,
    /// Number of live buffers (operands + outputs, × 2 for double
    /// buffering).
    pub n_buffers: usize,
    /// Bytes of transition matrices and other per-call constants.
    pub constants_bytes: usize,
}

impl LsPlan {
    /// Total data bytes the plan occupies.
    pub fn data_bytes(&self) -> usize {
        self.buffer_bytes * self.n_buffers + self.constants_bytes
    }

    /// Does the plan fit beside code and control state?
    pub fn fits(&self) -> bool {
        CODE_BYTES + CONTROL_BYTES + self.data_bytes() <= LOCAL_STORE_BYTES
    }
}

/// Usable bytes for kernel data buffers.
pub fn usable_data_bytes() -> usize {
    LOCAL_STORE_BYTES - CODE_BYTES - CONTROL_BYTES
}

/// Largest even pattern count per chunk such that `streams` double-
/// buffered operand/result streams of `bytes_per_pattern` each, plus
/// `constants_bytes`, fit in the Local Store.
///
/// The result is forced even so chunk boundaries stay on 128-byte
/// DMA alignment (64 bytes per pattern under Γ(4)).
pub fn max_chunk_patterns(
    streams: usize,
    bytes_per_pattern: usize,
    constants_bytes: usize,
) -> usize {
    let usable = usable_data_bytes().saturating_sub(constants_bytes);
    // Double buffering doubles every stream.
    let per_pattern = 2 * streams * bytes_per_pattern;
    let raw = usable / per_pattern;
    (raw & !1).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_arithmetic() {
        assert_eq!(usable_data_bytes(), (256 - 90 - 8) * 1024);
    }

    #[test]
    fn plan_fits_iff_within_budget() {
        let ok = LsPlan {
            buffer_bytes: 16 * 1024,
            n_buffers: 6,
            constants_bytes: 1024,
        };
        assert!(ok.fits());
        let too_big = LsPlan {
            buffer_bytes: 40 * 1024,
            n_buffers: 6,
            constants_bytes: 0,
        };
        assert!(!too_big.fits());
    }

    #[test]
    fn chunk_sizing_down_kernel() {
        // Down: 3 streams (left, right, out) of 64 B/pattern, doubled.
        let chunk = max_chunk_patterns(3, 64, 2048);
        assert!(chunk >= 2);
        assert_eq!(chunk % 2, 0);
        let plan = LsPlan {
            buffer_bytes: chunk * 64,
            n_buffers: 6,
            constants_bytes: 2048,
        };
        assert!(plan.fits(), "chunk {chunk} must fit");
        // One more pattern pair must NOT fit (maximality).
        let bigger = LsPlan {
            buffer_bytes: (chunk + 2) * 64,
            n_buffers: 6,
            constants_bytes: 2048,
        };
        assert!(!bigger.fits(), "chunk {chunk} not maximal");
    }

    #[test]
    fn chunk_alignment_is_even() {
        for streams in 1..=4 {
            for bpp in [16usize, 64, 128] {
                let c = max_chunk_patterns(streams, bpp, 0);
                assert_eq!(c % 2, 0);
                assert!((c * bpp).is_multiple_of(DMA_ALIGN) || bpp % DMA_ALIGN != 0);
            }
        }
    }

    #[test]
    fn tiny_ls_still_yields_minimum_chunk() {
        // Even absurd constants leave the minimum chunk of 2.
        assert_eq!(max_chunk_patterns(3, 64, usable_data_bytes()), 2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_chunks_always_fit_the_local_store(
            streams in 1usize..5,
            bytes_per_pattern in 4usize..256,
            constants in 0usize..32_768,
        ) {
            let chunk = max_chunk_patterns(streams, bytes_per_pattern, constants);
            prop_assert!(chunk >= 2);
            prop_assert_eq!(chunk % 2, 0);
            // The plan with this chunk fits beside code + control; note
            // the minimum chunk of 2 may exceed a pathologically small
            // remainder, so only check when the budget is sane.
            let data = 2 * streams * chunk * bytes_per_pattern + constants;
            if chunk > 2 {
                prop_assert!(
                    CODE_BYTES + CONTROL_BYTES + data <= LOCAL_STORE_BYTES,
                    "chunk {chunk} overflows: {data} data bytes"
                );
                // Maximality: one more pattern pair must not fit.
                let bigger = 2 * streams * (chunk + 2) * bytes_per_pattern + constants;
                prop_assert!(CODE_BYTES + CONTROL_BYTES + bigger > LOCAL_STORE_BYTES);
            }
        }
    }
}

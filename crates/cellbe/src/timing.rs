//! Calibrated SPE timing model.
//!
//! Constants are calibrated against the paper's reported observations:
//!
//! * column-wise SIMD is ~2× faster than row-wise on the PLF (§3.3), so
//!   `rowwise_factor = 2`;
//! * 16-SPE runs on the QS20 peak near 12× vs 1 SPE (§4.1.2) — with the
//!   aggregate XDR bandwidth of 25.6 GB/s shared by all streaming SPEs
//!   this emerges from the DMA model once compute costs ≈ 72
//!   cycles/(pattern, rate) for the column-wise Down kernel;
//! * 6-SPE runs (PS3) are compute-bound near 92% efficiency (§4.1.2),
//!   which the mild `eff_exp` straggler exponent reproduces;
//! * PPE↔SPE control uses direct problem-state stores (~sub-µs);
//!   §3.3 chose them precisely because they are the cheapest mechanism.

use crate::dma::{double_buffered_time, ChunkCost, DmaEngine};
use crate::ls::max_chunk_patterns;
use plf_phylo::kernels::SimdSchedule;
use plf_simcore::workload::ENTRY_BYTES;

/// Which PLF kernel a call runs (costs differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// CondLikeDown: two operand streams + one result stream.
    Down,
    /// CondLikeRoot with three children: three operands + one result.
    Root3,
    /// CondLikeRoot with two children (rooted anchor).
    Root2,
    /// CondLikeScaler: one stream read-modify-write.
    Scale,
}

impl KernelKind {
    /// Operand + result streams held in the Local Store.
    pub fn streams(self) -> usize {
        match self {
            KernelKind::Down | KernelKind::Root2 => 3,
            KernelKind::Root3 => 4,
            KernelKind::Scale => 1,
        }
    }

    /// Bytes DMA'd in per pattern (operands). The scaler is issued right
    /// after the kernel that produced its CLV, so its chunk is still
    /// Local-Store resident: it only writes back (in = 0).
    pub fn bytes_in_per_pattern(self, r: usize) -> usize {
        let clv = r * ENTRY_BYTES;
        match self {
            KernelKind::Down | KernelKind::Root2 => 2 * clv,
            KernelKind::Root3 => 3 * clv,
            KernelKind::Scale => 0,
        }
    }

    /// Bytes DMA'd out per pattern (results; the scaler also writes the
    /// 4-byte log-scaler slot).
    pub fn bytes_out_per_pattern(self, r: usize) -> usize {
        let clv = r * ENTRY_BYTES;
        match self {
            KernelKind::Scale => clv + 4,
            _ => clv,
        }
    }
}

/// Calibration constants for one Cell system.
#[derive(Debug, Clone)]
pub struct CellCalibration {
    /// SPU cycles per (pattern, rate) entry, column-wise Down kernel.
    pub cycles_down: f64,
    /// Cycles per entry, Root kernel (per additional child ×1.5).
    pub cycles_root: f64,
    /// Cycles per entry, Scaler kernel.
    pub cycles_scale: f64,
    /// Row-wise slowdown vs column-wise (§3.3: ≈2× on the PLF).
    pub rowwise_factor: f64,
    /// PPE→SPE message cost: base + per-SPE component (seconds).
    pub msg_base: f64,
    /// Per-SPE increment of the message fan-out.
    pub msg_per_spe: f64,
    /// End-of-call barrier: base + per-SPE (seconds).
    pub barrier_base: f64,
    /// Per-SPE increment of the barrier.
    pub barrier_per_spe: f64,
    /// Extra synchronization cost when the team spans two chips.
    pub cross_chip: f64,
    /// Per-evaluation PPE overhead (chunk-size calculation message).
    pub per_eval_overhead: f64,
    /// Straggler exponent (effective SPEs = n^eff).
    pub eff_exp: f64,
    /// SPU clock in Hz.
    pub freq_hz: f64,
    /// Bytes of transition-matrix constants resident in the LS.
    pub constants_bytes: usize,
    /// Aggregate memory bandwidth available to all streaming SPEs
    /// (one XDR interface; the QS20's inter-chip BIF does not add usable
    /// bandwidth for a shared data set).
    pub aggregate_bw: f64,
    /// Overlap DMA with compute via double buffering (§3.3 / Figure 7).
    /// Disabling it serializes every chunk's transfer and compute — the
    /// ablation showing why the technique matters.
    pub double_buffered: bool,
}

impl Default for CellCalibration {
    fn default() -> CellCalibration {
        CellCalibration {
            cycles_down: 72.0,
            cycles_root: 108.0,
            cycles_scale: 24.0,
            rowwise_factor: 2.0,
            msg_base: 0.3e-6,
            msg_per_spe: 0.05e-6,
            barrier_base: 0.3e-6,
            barrier_per_spe: 0.05e-6,
            cross_chip: 0.3e-6,
            per_eval_overhead: 30.0e-6,
            eff_exp: 0.95,
            freq_hz: 3.2e9,
            constants_bytes: 2048,
            aggregate_bw: 25.6e9,
            double_buffered: true,
        }
    }
}

impl CellCalibration {
    /// Cycles per (pattern, rate) for a kernel under a schedule.
    pub fn cycles(&self, kind: KernelKind, schedule: SimdSchedule) -> f64 {
        let base = match kind {
            KernelKind::Down | KernelKind::Root2 => self.cycles_down,
            KernelKind::Root3 => self.cycles_root,
            KernelKind::Scale => self.cycles_scale,
        };
        match schedule {
            SimdSchedule::ColWise => base,
            // The scaler's max-reduction gains nothing from the
            // column-wise trick; only the matrix-vector kernels differ.
            SimdSchedule::RowWise if kind == KernelKind::Scale => base,
            SimdSchedule::RowWise => base * self.rowwise_factor,
        }
    }

    /// Control (message + barrier) cost of one kernel call on `n` SPEs
    /// across `chips` chips.
    pub fn control_cost(&self, n: usize, chips: usize) -> f64 {
        let cross = if chips > 1 && n > 8 { self.cross_chip } else { 0.0 };
        self.msg_base
            + self.msg_per_spe * n as f64
            + self.barrier_base
            + self.barrier_per_spe * n as f64
            + cross
    }

    /// Chunk size (patterns) a kernel can double-buffer in the LS.
    pub fn chunk_patterns(&self, kind: KernelKind, r: usize) -> usize {
        max_chunk_patterns(kind.streams(), r * ENTRY_BYTES, self.constants_bytes)
    }

    /// Per-SPE chunk pipeline for `patterns` patterns.
    pub fn chunk_costs(
        &self,
        kind: KernelKind,
        schedule: SimdSchedule,
        patterns: usize,
        r: usize,
        engine: &DmaEngine,
        n_spes: usize,
    ) -> Vec<ChunkCost> {
        if patterns == 0 {
            return Vec::new();
        }
        let chunk = self.chunk_patterns(kind, r);
        let cyc = self.cycles(kind, schedule);
        // Straggler/imbalance inflation grows slowly with the team size.
        let imbalance = (n_spes as f64).powf(1.0 - self.eff_exp);
        let mut out = Vec::with_capacity(patterns.div_ceil(chunk));
        let mut left = patterns;
        let mut first = true;
        while left > 0 {
            let p = left.min(chunk);
            let mut bytes_in = (p * kind.bytes_in_per_pattern(r)) as u64;
            if first {
                bytes_in += self.constants_bytes as u64;
                first = false;
            }
            out.push(ChunkCost {
                dma_in: engine.time(bytes_in),
                compute: p as f64 * r as f64 * cyc * imbalance / self.freq_hz,
                dma_out: engine.time((p * kind.bytes_out_per_pattern(r)) as u64),
            });
            left -= p;
        }
        out
    }

    /// Full modeled time of one kernel call over `m` patterns on
    /// `n_spes` SPEs (`chips` chips): control + the larger of (a) the
    /// slowest SPE's double-buffered pipeline with an uncontended DMA
    /// link and (b) the aggregate-memory-bandwidth floor — DMA traffic
    /// overlaps compute per SPE, but the XDR interface bounds the sum of
    /// all SPEs' streams.
    pub fn call_time(
        &self,
        kind: KernelKind,
        schedule: SimdSchedule,
        m: usize,
        r: usize,
        n_spes: usize,
        chips: usize,
    ) -> f64 {
        let engine = DmaEngine::new(1, chips); // per-SPE link, uncontended
        // First-level split is even, so the slowest SPE holds ceil(m/n).
        let patterns = m.div_ceil(n_spes);
        let chunks = self.chunk_costs(kind, schedule, patterns, r, &engine, n_spes);
        let pipeline = if self.double_buffered {
            double_buffered_time(&chunks)
        } else {
            chunks
                .iter()
                .map(|c| c.dma_in + c.compute + c.dma_out)
                .sum()
        };
        let total_bytes =
            (m * (kind.bytes_in_per_pattern(r) + kind.bytes_out_per_pattern(r))) as f64;
        let bw_floor = total_bytes / self.aggregate_bw;
        self.control_cost(n_spes, chips) + pipeline.max(bw_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colwise_beats_rowwise_2x_on_matvec_kernels() {
        let c = CellCalibration::default();
        let col = c.call_time(KernelKind::Down, SimdSchedule::ColWise, 8543, 4, 6, 1);
        let row = c.call_time(KernelKind::Down, SimdSchedule::RowWise, 8543, 4, 6, 1);
        let ratio = row / col;
        assert!((1.6..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scaler_schedule_neutral() {
        let c = CellCalibration::default();
        let col = c.call_time(KernelKind::Scale, SimdSchedule::ColWise, 5000, 4, 6, 1);
        let row = c.call_time(KernelKind::Scale, SimdSchedule::RowWise, 5000, 4, 6, 1);
        assert_eq!(col, row);
    }

    #[test]
    fn six_spes_near_ideal_on_large_sets() {
        // PS3 compute-bound regime: efficiency ≥ 85% at 50K patterns.
        let c = CellCalibration::default();
        let t1 = c.call_time(KernelKind::Down, SimdSchedule::ColWise, 50_000, 4, 1, 1);
        let t6 = c.call_time(KernelKind::Down, SimdSchedule::ColWise, 50_000, 4, 6, 1);
        let speedup = t1 / t6;
        assert!((5.0..6.0).contains(&speedup), "6-SPE speedup {speedup}");
    }

    #[test]
    fn sixteen_spes_bandwidth_capped_near_12x() {
        // §4.1.2: "the speedup value ... is close to 12x" at 16 SPEs.
        let c = CellCalibration::default();
        let t1 = c.call_time(KernelKind::Down, SimdSchedule::ColWise, 50_000, 4, 1, 2);
        let t16 = c.call_time(KernelKind::Down, SimdSchedule::ColWise, 50_000, 4, 16, 2);
        let speedup = t1 / t16;
        assert!((10.0..14.0).contains(&speedup), "16-SPE speedup {speedup}");
    }

    #[test]
    fn small_sets_less_efficient() {
        let c = CellCalibration::default();
        let eff = |m: usize| {
            c.call_time(KernelKind::Down, SimdSchedule::ColWise, m, 4, 1, 1)
                / (6.0 * c.call_time(KernelKind::Down, SimdSchedule::ColWise, m, 4, 6, 1))
        };
        assert!(eff(1000) < eff(50_000));
    }

    #[test]
    fn control_cost_grows_with_team_and_chips() {
        let c = CellCalibration::default();
        assert!(c.control_cost(16, 2) > c.control_cost(6, 1));
        assert!(c.control_cost(16, 2) > c.control_cost(16, 1));
        // Sub-microsecond per §3.3's "most efficient mechanisms".
        assert!(c.control_cost(16, 2) < 5e-6);
    }

    #[test]
    fn chunks_fit_ls_and_cover_all_patterns() {
        let c = CellCalibration::default();
        let engine = DmaEngine::new(6, 1);
        for kind in [KernelKind::Down, KernelKind::Root3, KernelKind::Scale] {
            let chunks = c.chunk_costs(kind, SimdSchedule::ColWise, 8543, 4, &engine, 6);
            assert!(!chunks.is_empty());
            let chunk_pats = c.chunk_patterns(kind, 4);
            assert!(chunks.len() == 8543usize.div_ceil(chunk_pats));
        }
    }

    #[test]
    fn root3_costs_more_than_down() {
        let c = CellCalibration::default();
        let d = c.call_time(KernelKind::Down, SimdSchedule::ColWise, 20_000, 4, 6, 1);
        let r = c.call_time(KernelKind::Root3, SimdSchedule::ColWise, 20_000, 4, 6, 1);
        assert!(r > d);
    }
}

//! DMA cost accounting and the double-buffering pipeline of Figure 7.
//!
//! Each SPE overlaps DMA with computation: while chunk *i* is being
//! computed, the results of chunk *i−1* stream out and the operands of
//! chunk *i+1* stream in. A step of the pipeline therefore advances by
//! `max(compute_i, dma_out_{i−1} + dma_in_{i+1})`, plus the initial fill
//! and the final drain — exactly the T/C/R schedule the paper draws.

use plf_phylo::resilience::{FaultInjector, FaultSite, PlfError};
use plf_simcore::xfer::TransferModel;
// (The 16 KB DMA bound itself lives in plf_phylo::constants; see the
// `transfer_model_mirrors_shared_constants` test below.)
use std::sync::Arc;

/// Per-chunk costs in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkCost {
    /// Time to DMA the chunk's operands into the Local Store.
    pub dma_in: f64,
    /// SPU compute time for the chunk.
    pub compute: f64,
    /// Time to DMA the chunk's results back to main memory.
    pub dma_out: f64,
}

/// DMA engine wrapper: the EIB transfer model plus bandwidth sharing.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    model: TransferModel,
    /// Fraction of aggregate memory bandwidth this SPE can claim
    /// (1/active_spes under full contention).
    bandwidth_share: f64,
    /// Optional fault source; each [`DmaEngine::transfer`] rolls it.
    injector: Option<Arc<FaultInjector>>,
}

impl DmaEngine {
    /// Engine for one of `active_spes` concurrently streaming SPEs over
    /// `chips` memory interfaces (the QS20's second chip is reached over
    /// the inter-Cell BIF, which does not add usable memory bandwidth
    /// for a shared data set — hence aggregate bandwidth stays one
    /// XDR interface's worth).
    pub fn new(active_spes: usize, _chips: usize) -> DmaEngine {
        assert!(active_spes >= 1);
        DmaEngine {
            model: TransferModel::cell_dma(),
            bandwidth_share: 1.0 / active_spes as f64,
            injector: None,
        }
    }

    /// Attach a fault injector; subsequent [`DmaEngine::transfer`] calls
    /// roll the [`FaultSite::DmaTransfer`] site.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> DmaEngine {
        self.injector = Some(injector);
        self
    }

    /// Perform a simulated transfer of `bytes`: one injector roll, then
    /// the modeled time on success.
    pub fn transfer(&self, bytes: u64) -> Result<f64, PlfError> {
        if let Some(inj) = &self.injector {
            if inj.fire(FaultSite::DmaTransfer) {
                return Err(PlfError::Transfer {
                    backend: "cellbe-dma".into(),
                    channel: "dma",
                    detail: format!("injected fault on {bytes}-byte DMA transfer"),
                });
            }
        }
        Ok(self.time(bytes))
    }

    /// Seconds to move `bytes` for this SPE, honouring the 16 KB command
    /// split and the contended bandwidth share.
    pub fn time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let n = self.model.n_transfers(bytes);
        n as f64 * self.model.latency_s
            + bytes as f64 / (self.model.bandwidth_bps * self.bandwidth_share)
    }

    /// Number of DMA commands `bytes` requires (each ≤ 16 KB).
    pub fn n_commands(&self, bytes: u64) -> u64 {
        self.model.n_transfers(bytes)
    }
}

/// Total time of a double-buffered chunk pipeline.
pub fn double_buffered_time(chunks: &[ChunkCost]) -> f64 {
    if chunks.is_empty() {
        return 0.0;
    }
    let n = chunks.len();
    // Fill: first chunk's operands must land before compute starts.
    let mut t = chunks[0].dma_in;
    for i in 0..n {
        let dma_during = (if i + 1 < n { chunks[i + 1].dma_in } else { 0.0 })
            + (if i > 0 { chunks[i - 1].dma_out } else { 0.0 });
        t += chunks[i].compute.max(dma_during);
    }
    // Drain: the last chunk's results.
    t + chunks[n - 1].dma_out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pipeline_is_free() {
        assert_eq!(double_buffered_time(&[]), 0.0);
    }

    #[test]
    fn single_chunk_is_fully_serial() {
        let c = ChunkCost { dma_in: 2.0, compute: 5.0, dma_out: 1.0 };
        assert_eq!(double_buffered_time(&[c]), 8.0);
    }

    #[test]
    fn compute_bound_pipeline_hides_dma() {
        // compute >> dma: total ≈ fill + Σ compute + drain.
        let c = ChunkCost { dma_in: 0.1, compute: 10.0, dma_out: 0.1 };
        let chunks = vec![c; 10];
        let t = double_buffered_time(&chunks);
        assert!((t - (0.1 + 100.0 + 0.1)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn dma_bound_pipeline_limited_by_transfers() {
        // dma >> compute: advance is gated by the DMA engine.
        let c = ChunkCost { dma_in: 5.0, compute: 0.5, dma_out: 3.0 };
        let chunks = vec![c; 4];
        let t = double_buffered_time(&chunks);
        // fill 5 + steps: max(.5, in+out pairs) ... strictly more than
        // compute-only and at least total dma-in time.
        assert!(t >= 4.0 * 5.0, "t = {t}");
        assert!(t > 4.0 * 0.5 + 5.0 + 3.0);
    }

    #[test]
    fn bandwidth_share_splits_evenly() {
        let solo = DmaEngine::new(1, 1);
        let crowd = DmaEngine::new(16, 2);
        let b = 64 * 1024;
        assert!(crowd.time(b) > 10.0 * solo.time(b));
    }

    #[test]
    fn transfer_model_mirrors_shared_constants() {
        // plf-simcore sits below plf-phylo in the dependency graph, so
        // it cannot import phylo::constants; its independently written
        // hardware model carries `plf-lint: allow(L3)` suppressions
        // instead. This test is the other half of that bargain: the
        // two definitions of the 16 KB DMA command bound must agree.
        assert_eq!(
            TransferModel::cell_dma().max_transfer,
            Some(plf_phylo::constants::DMA_MAX_BYTES)
        );
    }

    #[test]
    fn command_split_at_16k() {
        let e = DmaEngine::new(1, 1);
        assert_eq!(e.n_commands(16 * 1024), 1);
        assert_eq!(e.n_commands(16 * 1024 + 1), 2);
    }

    #[test]
    fn transfer_without_injector_never_fails() {
        let e = DmaEngine::new(4, 1);
        for bytes in [0u64, 1, 16 * 1024, 1 << 20] {
            let t = e.transfer(bytes).unwrap();
            assert_eq!(t, e.time(bytes));
        }
    }

    #[test]
    fn scheduled_dma_fault_fails_once_then_recovers() {
        let inj = Arc::new(FaultInjector::new(5).schedule(FaultSite::DmaTransfer, 1));
        let e = DmaEngine::new(4, 1).with_fault_injector(inj);
        assert!(e.transfer(1024).is_ok());
        assert!(matches!(
            e.transfer(1024),
            Err(PlfError::Transfer { channel: "dma", .. })
        ));
        assert!(e.transfer(1024).is_ok(), "one-shot fault must be consumed");
    }

    #[test]
    fn monotone_in_chunk_count() {
        let c = ChunkCost { dma_in: 1.0, compute: 2.0, dma_out: 1.0 };
        let t3 = double_buffered_time(&[c; 3]);
        let t6 = double_buffered_time(&[c; 6]);
        assert!(t6 > t3);
    }
}

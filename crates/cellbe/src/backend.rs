//! The functional Cell/BE backend.
//!
//! Executes the PLF exactly the way the paper's Cell port does (§3.3):
//! the PPE (the calling thread) splits the `m` likelihood-vector
//! elements evenly across SPEs (first-level partitioning), each SPE
//! walks its block in Local-Store-sized chunks (second-level
//! partitioning) running the 4-wide SIMD kernels, and control flows
//! through the per-SPE FSM. SPE execution really happens — on scoped
//! host threads, one per SPE, producing bitwise-identical results to
//! the reference kernels — while the calibrated timing model accounts
//! for DMA, double buffering, messages, and barriers.

use crate::dma::DmaEngine;
use crate::fsm::{PpeMessage, SpeFsm};
use crate::timing::{CellCalibration, KernelKind};
use parking_lot::Mutex;
use plf_phylo::clv::{Clv, TransitionMatrices};
use plf_phylo::constants::DMA_MAX_BYTES;
use plf_phylo::dna::N_STATES;
use plf_phylo::kernels::{simd4, FusedDown, FusedRoot, FusedScale, PlfBackend, SimdSchedule};
use plf_phylo::metrics::{Kernel, KernelTimer, PlfCounters};
use plf_phylo::resilience::{panic_message, FaultInjector, PlfError};
use std::sync::Arc;

/// Per-run statistics of the simulated Cell execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellRunStats {
    /// Modeled wall-clock seconds on the Cell system.
    pub modeled_seconds: f64,
    /// Kernel calls executed.
    pub kernel_calls: u64,
    /// DMA commands issued (each ≤ 16 KB).
    pub dma_commands: u64,
    /// Local-Store chunks processed.
    pub chunks: u64,
}

/// A simulated Cell/BE system executing the PLF.
pub struct CellBackend {
    n_spes: usize,
    chips: usize,
    schedule: SimdSchedule,
    cal: CellCalibration,
    fsms: Vec<SpeFsm>,
    configured_patterns: Option<usize>,
    stats: CellRunStats,
    /// Shared event counters updated from SPE threads.
    spe_counters: Mutex<(u64, u64)>, // (dma_commands, chunks)
    /// Optional fault source (DMA failures, output corruption).
    injector: Option<Arc<FaultInjector>>,
    /// Optional shared observability counters.
    metrics: Option<Arc<PlfCounters>>,
}

impl CellBackend {
    /// Generic constructor.
    pub fn new(n_spes: usize, chips: usize, schedule: SimdSchedule) -> CellBackend {
        assert!(n_spes >= 1);
        CellBackend {
            n_spes,
            chips,
            schedule,
            cal: CellCalibration::default(),
            fsms: vec![SpeFsm::new(); n_spes],
            configured_patterns: None,
            stats: CellRunStats::default(),
            spe_counters: Mutex::new((0, 0)),
            injector: None,
            metrics: None,
        }
    }

    /// Attach a fault injector; SPE chunk transfers roll the DMA site
    /// and kernel outputs roll the corruption site.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> CellBackend {
        self.injector = Some(injector);
        self
    }

    /// Attach shared observability counters: kernel timings, rescale
    /// events, and per-chunk DMA accounting (bytes, ≤16 KB commands,
    /// modeled bus seconds, double-buffer overlap savings).
    pub fn with_metrics(mut self, counters: Arc<PlfCounters>) -> CellBackend {
        self.metrics = Some(counters);
        self
    }

    /// Sony PS3: one Cell, 6 SPEs available, column-wise SIMD.
    pub fn ps3() -> CellBackend {
        CellBackend::new(6, 1, SimdSchedule::ColWise)
    }

    /// IBM QS20 blade: two Cells, 16 SPEs, column-wise SIMD.
    pub fn qs20() -> CellBackend {
        CellBackend::new(16, 2, SimdSchedule::ColWise)
    }

    /// Restrict to `n` SPEs (for scalability sweeps).
    pub fn with_spes(mut self, n: usize) -> CellBackend {
        assert!(n >= 1);
        self.n_spes = n;
        self.fsms = vec![SpeFsm::new(); n];
        self.configured_patterns = None;
        self
    }

    /// Number of active SPEs.
    pub fn n_spes(&self) -> usize {
        self.n_spes
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CellRunStats {
        let (dma, chunks) = *self.spe_counters.lock();
        CellRunStats {
            dma_commands: dma,
            chunks,
            ..self.stats
        }
    }

    /// Reset statistics (e.g. between measured phases).
    pub fn reset_stats(&mut self) {
        self.stats = CellRunStats::default();
        *self.spe_counters.lock() = (0, 0);
    }

    /// Send Finalize to every SPE (ends the FSM lifecycle).
    pub fn finalize(&mut self) {
        for fsm in &mut self.fsms {
            let _ = fsm.handle(PpeMessage::Finalize);
        }
    }

    /// First-level even split of `m` patterns over the SPEs; ranges are
    /// even-sized (128-byte DMA alignment at 64 B/pattern).
    fn first_level(&self, m: usize) -> Vec<std::ops::Range<usize>> {
        let mut per = m.div_ceil(self.n_spes);
        if per % 2 == 1 {
            per += 1;
        }
        let mut out = Vec::with_capacity(self.n_spes);
        let mut start = 0;
        while start < m {
            let end = (start + per).min(m);
            out.push(start..end);
            start = end;
        }
        out
    }

    fn ensure_configured(&mut self, m: usize, kind: KernelKind, r: usize) -> Result<(), PlfError> {
        if self.configured_patterns != Some(m) {
            let chunk = self.cal.chunk_patterns(kind, r);
            let ranges = self.first_level(m);
            for (i, fsm) in self.fsms.iter_mut().enumerate() {
                let patterns = ranges.get(i).map_or(0, |r| r.len());
                fsm.handle(PpeMessage::Configure {
                    patterns,
                    chunk_patterns: chunk,
                })
                .map_err(|e| PlfError::Config(format!("SPE {i} configure: {e}")))?;
            }
            self.configured_patterns = Some(m);
        }
        Ok(())
    }

    /// Dispatch a run message to every SPE FSM.
    fn dispatch(&mut self, msg: PpeMessage) -> Result<(), PlfError> {
        for (i, fsm) in self.fsms.iter_mut().enumerate() {
            fsm.handle(msg)
                .map_err(|e| PlfError::Config(format!("SPE {i} dispatch: {e}")))?;
        }
        Ok(())
    }

    /// The DMA engine SPE threads roll per chunk transfer.
    fn dma_engine(&self) -> DmaEngine {
        let engine = DmaEngine::new(self.n_spes, self.chips);
        match &self.injector {
            Some(inj) => engine.with_fault_injector(Arc::clone(inj)),
            None => engine,
        }
    }

    /// Roll and apply kernel-output corruption after a parallel section.
    fn maybe_corrupt(&self, out: &mut [f32]) {
        if let Some(inj) = &self.injector {
            if let Some(kind) = inj.fire_corruption() {
                inj.corrupt(out, kind);
            }
        }
    }

    fn account_call(&mut self, kind: KernelKind, m: usize, r: usize) {
        self.stats.kernel_calls += 1;
        let t = self
            .cal
            .call_time(kind, self.schedule, m, r, self.n_spes, self.chips);
        self.stats.modeled_seconds += t;
        if let Some(counters) = &self.metrics {
            if self.cal.double_buffered {
                // What the same call would cost with DMA and compute
                // serialized — the difference is what double buffering
                // hides (the paper's overlap argument, §3.3).
                let mut serial = self.cal.clone();
                serial.double_buffered = false;
                let t_serial =
                    serial.call_time(kind, self.schedule, m, r, self.n_spes, self.chips);
                counters.record_overlap_saved((t_serial - t).max(0.0));
            }
        }
    }

    /// Run `work` over each SPE's chunk sub-ranges on scoped threads.
    ///
    /// `out` is the output CLV slice for the *whole* call; each SPE gets
    /// its disjoint sub-slice. `work(spe_range_start, chunk_range, out_chunk)`
    /// executes one Local-Store chunk. Every chunk's in/out movement goes
    /// through the (possibly fault-injected) DMA engine; the first DMA
    /// failure aborts that SPE's block and surfaces as the call's error.
    fn run_on_spes<F>(
        &self,
        m: usize,
        stride: usize,
        kind: KernelKind,
        r: usize,
        out: &mut [f32],
        work: F,
    ) -> Result<(), PlfError>
    where
        F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
    {
        let ranges = self.first_level(m);
        let chunk_patterns = self.cal.chunk_patterns(kind, r);
        let counters = &self.spe_counters;
        let metrics = self.metrics.as_deref();
        let dma = self.dma_engine();
        let dma = &dma;
        let error: Mutex<Option<PlfError>> = Mutex::new(None);
        let error_ref = &error;
        let work = &work;
        crossbeam::thread::scope(|scope| {
            let mut rest = out;
            for range in &ranges {
                let len = range.len() * stride;
                let (head, tail) = rest.split_at_mut(len);
                rest = tail;
                let range = range.clone();
                scope.spawn(move |_| {
                    let mut local_dma = 0u64;
                    let mut local_chunks = 0u64;
                    let mut local_bytes_in = 0u64;
                    let mut local_bytes_out = 0u64;
                    let mut local_bus_seconds = 0.0f64;
                    let mut start = range.start;
                    while start < range.end {
                        let end = (start + chunk_patterns).min(range.end);
                        // operands in + result out, each ≤16 KB per command
                        let bytes_in = (end - start) * kind.bytes_in_per_pattern(r);
                        let bytes_out = (end - start) * kind.bytes_out_per_pattern(r);
                        let moved = dma.transfer(bytes_in as u64).and_then(|t_in| {
                            dma.transfer(bytes_out as u64).map(|t_out| t_in + t_out)
                        });
                        match moved {
                            Ok(t) => local_bus_seconds += t,
                            Err(e) => {
                                error_ref.lock().get_or_insert(e);
                                break;
                            }
                        }
                        let off = (start - range.start) * stride;
                        let out_chunk = &mut head[off..off + (end - start) * stride];
                        work(start..end, out_chunk);
                        local_chunks += 1;
                        local_bytes_in += bytes_in as u64;
                        local_bytes_out += bytes_out as u64;
                        local_dma += bytes_in.div_ceil(DMA_MAX_BYTES) as u64
                            + bytes_out.div_ceil(DMA_MAX_BYTES) as u64;
                        start = end;
                    }
                    if let Some(c) = metrics {
                        c.record_transfer(
                            local_bytes_in,
                            local_bytes_out,
                            local_dma,
                            local_bus_seconds,
                        );
                    }
                    let mut c = counters.lock();
                    c.0 += local_dma;
                    c.1 += local_chunks;
                });
            }
        })
        .map_err(|payload| PlfError::WorkerPanic {
            backend: self.name(),
            detail: panic_message(payload.as_ref()),
        })?;
        match error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl PlfBackend for CellBackend {
    fn name(&self) -> String {
        let sys = if self.chips == 1 { "ps3" } else { "qs20" };
        format!("cellbe-{sys}-{}spe", self.n_spes)
    }

    fn begin_evaluation(&mut self) {
        // The PPE's chunk-size-calculation message round (§3.3).
        self.stats.modeled_seconds += self.cal.per_eval_overhead;
        if let Some(m) = &self.metrics {
            m.record_evaluation();
        }
    }

    fn preferred_batch_patterns(&self, n_rates: usize) -> usize {
        // One Local-Store-sized chunk per SPE: the largest fused unit
        // that fills every SPE's 256 KB LS exactly once per kernel call.
        // The per-chunk pattern count shrinks as the rate count grows
        // (more bytes per pattern in the same LS budget).
        self.cal
            .chunk_patterns(KernelKind::Down, n_rates.max(1))
            .max(1)
            * self.n_spes
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, out.n_patterns());
        let (m, r) = (out.n_patterns(), out.n_rates());
        self.ensure_configured(m, KernelKind::Down, r)?;
        self.dispatch(PpeMessage::RunDown)?;
        self.down_pass(left, p_left, right, p_right, out)?;
        self.maybe_corrupt(out.as_mut_slice());
        self.account_call(KernelKind::Down, m, r);
        Ok(())
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, out.n_patterns());
        let (m, r) = (out.n_patterns(), out.n_rates());
        let kind = if c.is_some() { KernelKind::Root3 } else { KernelKind::Root2 };
        self.ensure_configured(m, kind, r)?;
        self.dispatch(PpeMessage::RunRoot)?;
        self.root_pass(a, p_a, b, p_b, c, out)?;
        self.maybe_corrupt(out.as_mut_slice());
        self.account_call(kind, m, r);
        Ok(())
    }

    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, clv.n_patterns());
        let (m, r) = (clv.n_patterns(), clv.n_rates());
        self.ensure_configured(m, KernelKind::Scale, r)?;
        self.dispatch(PpeMessage::RunScale)?;
        self.scaler_pass(clv, ln_scalers)?;
        self.maybe_corrupt(clv.as_mut_slice());
        self.account_call(KernelKind::Scale, m, r);
        Ok(())
    }

    // Fused overrides: one PPE message round and one modeled launch
    // (`account_call` over the concatenated pattern space) per tree
    // level for the whole batch — the paper's per-invocation overhead
    // paid once instead of once per job. Each op still runs through the
    // same SPE partitioning and chunk walk, so results are bitwise
    // identical to the per-op path.

    fn cond_like_down_fused(&mut self, ops: &mut [FusedDown<'_>]) -> Result<(), PlfError> {
        let Some(first) = ops.first() else { return Ok(()) };
        let (total_m, r) = (
            ops.iter().map(|op| op.out.n_patterns()).sum::<usize>(),
            first.out.n_rates(),
        );
        let first_m = first.out.n_patterns();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, total_m);
        self.ensure_configured(first_m, KernelKind::Down, r)?;
        self.dispatch(PpeMessage::RunDown)?;
        for op in ops.iter_mut() {
            self.down_pass(op.left, op.p_left, op.right, op.p_right, op.out)?;
            self.maybe_corrupt(op.out.as_mut_slice());
        }
        self.account_call(KernelKind::Down, total_m, r);
        Ok(())
    }

    fn cond_like_root_fused(&mut self, ops: &mut [FusedRoot<'_>]) -> Result<(), PlfError> {
        let Some(first) = ops.first() else { return Ok(()) };
        let kind = if first.c.is_some() { KernelKind::Root3 } else { KernelKind::Root2 };
        let (total_m, r) = (
            ops.iter().map(|op| op.out.n_patterns()).sum::<usize>(),
            first.out.n_rates(),
        );
        let first_m = first.out.n_patterns();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, total_m);
        self.ensure_configured(first_m, kind, r)?;
        self.dispatch(PpeMessage::RunRoot)?;
        for op in ops.iter_mut() {
            self.root_pass(op.a, op.p_a, op.b, op.p_b, op.c, op.out)?;
            self.maybe_corrupt(op.out.as_mut_slice());
        }
        self.account_call(kind, total_m, r);
        Ok(())
    }

    fn cond_like_scaler_fused(&mut self, ops: &mut [FusedScale<'_>]) -> Result<(), PlfError> {
        let Some(first) = ops.first() else { return Ok(()) };
        let (total_m, r) = (
            ops.iter().map(|op| op.clv.n_patterns()).sum::<usize>(),
            first.clv.n_rates(),
        );
        let first_m = first.clv.n_patterns();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, total_m);
        self.ensure_configured(first_m, KernelKind::Scale, r)?;
        self.dispatch(PpeMessage::RunScale)?;
        for op in ops.iter_mut() {
            self.scaler_pass(op.clv, op.ln_scalers)?;
            if let Some(inj) = &self.injector {
                if let Some(kind) = inj.fire_corruption() {
                    inj.corrupt(op.clv.as_mut_slice(), kind);
                }
            }
        }
        self.account_call(KernelKind::Scale, total_m, r);
        Ok(())
    }
}

impl CellBackend {
    /// One `CondLikeDown` over the SPEs, without dispatch/accounting
    /// (shared by the single-op and fused entry points).
    fn down_pass(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let (m, r) = (out.n_patterns(), out.n_rates());
        let stride = r * N_STATES;
        self.ensure_configured(m, KernelKind::Down, r)?;
        let schedule = self.schedule;
        let (l, rt) = (left.as_slice(), right.as_slice());
        self.run_on_spes(m, stride, KernelKind::Down, r, out.as_mut_slice(), |pats, o| {
            let s = pats.start * stride;
            let e = pats.end * stride;
            simd4::cond_like_down_range(schedule, &l[s..e], p_left, &rt[s..e], p_right, o, r);
        })
    }

    /// One `CondLikeRoot` over the SPEs, without dispatch/accounting.
    fn root_pass(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let (m, r) = (out.n_patterns(), out.n_rates());
        let stride = r * N_STATES;
        let kind = if c.is_some() { KernelKind::Root3 } else { KernelKind::Root2 };
        self.ensure_configured(m, kind, r)?;
        let schedule = self.schedule;
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let sc = c.map(|(clv, p)| (clv.as_slice(), p));
        self.run_on_spes(m, stride, kind, r, out.as_mut_slice(), |pats, o| {
            let s = pats.start * stride;
            let e = pats.end * stride;
            let cc = sc.map(|(slice, p)| (&slice[s..e], p));
            simd4::cond_like_root_range(schedule, &sa[s..e], p_a, &sb[s..e], p_b, cc, o, r);
        })
    }

    /// One `CondLikeScaler` over the SPEs, without dispatch/accounting.
    fn scaler_pass(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
        let (m, r) = (clv.n_patterns(), clv.n_rates());
        let stride = r * N_STATES;
        self.ensure_configured(m, KernelKind::Scale, r)?;
        // The scaler mutates the CLV in place and writes the scaler
        // vector; split both across SPEs.
        let ranges = self.first_level(m);
        let chunk_patterns = self.cal.chunk_patterns(KernelKind::Scale, r);
        let counters = &self.spe_counters;
        let metrics = self.metrics.as_deref();
        let dma_engine = self.dma_engine();
        let dma_engine = &dma_engine;
        let error: Mutex<Option<PlfError>> = Mutex::new(None);
        let error_ref = &error;
        crossbeam::thread::scope(|scope| {
            let mut clv_rest = clv.as_mut_slice();
            let mut sc_rest = &mut *ln_scalers;
            for range in &ranges {
                let len = range.len() * stride;
                let (clv_head, clv_tail) = clv_rest.split_at_mut(len);
                clv_rest = clv_tail;
                let (sc_head, sc_tail) = sc_rest.split_at_mut(range.len());
                sc_rest = sc_tail;
                scope.spawn(move |_| {
                    let mut chunks = 0u64;
                    let mut dma = 0u64;
                    let mut bytes_moved = 0u64;
                    let mut bus_seconds = 0.0f64;
                    let mut rescaled = 0u64;
                    let mut start = 0usize;
                    while start < clv_head.len() / stride {
                        let end = (start + chunk_patterns).min(clv_head.len() / stride);
                        let bytes = (end - start) * stride * 4;
                        let moved = dma_engine.transfer(bytes as u64).and_then(|t_in| {
                            dma_engine.transfer(bytes as u64).map(|t_out| t_in + t_out)
                        });
                        match moved {
                            Ok(t) => bus_seconds += t,
                            Err(e) => {
                                error_ref.lock().get_or_insert(e);
                                break;
                            }
                        }
                        rescaled += simd4::cond_like_scaler_range(
                            &mut clv_head[start * stride..end * stride],
                            &mut sc_head[start..end],
                            r,
                        );
                        chunks += 1;
                        bytes_moved += bytes as u64;
                        dma += 2 * bytes.div_ceil(DMA_MAX_BYTES) as u64;
                        start = end;
                    }
                    if let Some(c) = metrics {
                        // In + out symmetric: the chunk is read, rescaled
                        // in place, and written back.
                        c.record_transfer(bytes_moved, bytes_moved, dma, bus_seconds);
                        c.record_rescaled(rescaled);
                    }
                    let mut c = counters.lock();
                    c.0 += dma;
                    c.1 += chunks;
                });
            }
        })
        .map_err(|payload| PlfError::WorkerPanic {
            backend: self.name(),
            detail: panic_message(payload.as_ref()),
        })?;
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::SpeState;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::kernels::ScalarBackend;
    use plf_phylo::likelihood::TreeLikelihood;
    use plf_phylo::model::{GtrParams, SiteModel};
    use plf_phylo::tree::Tree;

    fn toy() -> (Tree, plf_phylo::alignment::PatternAlignment, SiteModel) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,(e:0.1,f:0.3):0.1,g:0.2);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCAACGTACCTAAGGCCATAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCAACGTACGTAAGGCCTTAGTA"),
            ("d", "ACTTACGTAAGGCGTTAGCAACGTACGAAAGGCCTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGCATCGTACGTAAGGCCTTAGCA"),
            ("f", "ACGTTCGTAAGGCCTTAGCAACGTACGTAAGCCCTTAGCA"),
            ("g", "AGGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCG"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        (tree, aln, model)
    }

    #[test]
    fn matches_scalar_bitwise() {
        let (tree, aln, model) = toy();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        for mut backend in [CellBackend::ps3(), CellBackend::qs20(), CellBackend::ps3().with_spes(1)] {
            let mut eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
            let got = eval.log_likelihood(&tree, &mut backend).unwrap();
            assert_eq!(got, expect, "{}", backend.name());
        }
    }

    #[test]
    fn modeled_time_accumulates() {
        let (tree, aln, model) = toy();
        let mut backend = CellBackend::ps3();
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        eval.log_likelihood(&tree, &mut backend).unwrap();
        let s1 = backend.stats();
        assert!(s1.modeled_seconds > 0.0);
        assert!(s1.kernel_calls > 0);
        assert!(s1.dma_commands > 0);
        assert!(s1.chunks >= s1.kernel_calls);
        eval.log_likelihood(&tree, &mut backend).unwrap();
        let s2 = backend.stats();
        assert!((s2.modeled_seconds - 2.0 * s1.modeled_seconds).abs() < 1e-12);
    }

    #[test]
    fn fsm_lifecycle_enforced() {
        let (tree, aln, model) = toy();
        let mut backend = CellBackend::ps3();
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        eval.log_likelihood(&tree, &mut backend).unwrap();
        for fsm in &backend.fsms {
            assert_eq!(fsm.state(), SpeState::Ready);
            assert!(fsm.kernels_run() > 0);
        }
        backend.finalize();
        for fsm in &backend.fsms {
            assert_eq!(fsm.state(), SpeState::Done);
        }
    }

    #[test]
    fn rowwise_schedule_is_modeled_slower_but_close_numerically() {
        let (tree, aln, model) = toy();
        let mut col = CellBackend::new(6, 1, SimdSchedule::ColWise);
        let mut row = CellBackend::new(6, 1, SimdSchedule::RowWise);
        let mut e1 = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let mut e2 = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let l1 = e1.log_likelihood(&tree, &mut col).unwrap();
        let l2 = e2.log_likelihood(&tree, &mut row).unwrap();
        assert!((l1 - l2).abs() < 1e-3);
        assert!(row.stats().modeled_seconds > col.stats().modeled_seconds);
    }

    #[test]
    fn first_level_split_covers_all_patterns_evenly() {
        let backend = CellBackend::qs20();
        for m in [7usize, 16, 100, 8543] {
            let ranges = backend.first_level(m);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), m);
            assert!(ranges.len() <= backend.n_spes());
            for r in &ranges[..ranges.len().saturating_sub(1)] {
                assert_eq!(r.len() % 2, 0, "m={m} range {r:?} not 128B-aligned");
            }
        }
    }

    #[test]
    fn more_spes_lower_modeled_time() {
        let (tree, aln, model) = toy();
        let mut t_prev = f64::INFINITY;
        for n in [1usize, 2, 6] {
            let mut backend = CellBackend::ps3().with_spes(n);
            let mut eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
            eval.log_likelihood(&tree, &mut backend).unwrap();
            let t = backend.stats().modeled_seconds;
            assert!(t < t_prev, "{n} SPEs: {t} !< {t_prev}");
            t_prev = t;
        }
    }
}

//! Analytic Cell/BE machine model (Figure 10 / Figure 12 inputs).

use crate::timing::{CellCalibration, KernelKind};
use plf_phylo::kernels::SimdSchedule;
use plf_simcore::machine::{MachineConfig, PS3, QS20};
use plf_simcore::model::MachineModel;
use plf_simcore::workload::PlfWorkload;

/// Timing model of a Cell/BE system (PS3 or QS20).
#[derive(Debug, Clone)]
pub struct CellModel {
    cfg: MachineConfig,
    cal: CellCalibration,
    schedule: SimdSchedule,
    chips: usize,
}

impl CellModel {
    /// PS3 (6 SPEs, one chip).
    pub fn ps3() -> CellModel {
        CellModel {
            cfg: PS3,
            cal: CellCalibration::default(),
            schedule: SimdSchedule::ColWise,
            chips: 1,
        }
    }

    /// QS20 blade (16 SPEs, two chips).
    pub fn qs20() -> CellModel {
        CellModel {
            cfg: QS20,
            cal: CellCalibration::default(),
            schedule: SimdSchedule::ColWise,
            chips: 2,
        }
    }

    /// Switch the SIMD schedule (for the §3.3 ablation).
    pub fn with_schedule(mut self, schedule: SimdSchedule) -> CellModel {
        self.schedule = schedule;
        self
    }

    /// Disable double buffering (for the Figure 7 ablation).
    pub fn without_double_buffering(mut self) -> CellModel {
        self.cal.double_buffered = false;
        self
    }

    /// Relative speedup of `units` SPEs vs 1 SPE — Figure 10's y-axis
    /// ("the n-core speedup is the ratio between the execution on 1 SPE
    /// and the execution on n SPE processors").
    pub fn speedup(&self, w: &PlfWorkload, units: usize) -> f64 {
        self.plf_time(w, 1) / self.plf_time(w, units)
    }
}

impl MachineModel for CellModel {
    fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn max_units(&self) -> usize {
        self.cfg.cores
    }

    fn plf_time(&self, w: &PlfWorkload, units: usize) -> f64 {
        assert!(units >= 1 && units <= self.cfg.cores);
        let (m, r) = (w.n_patterns, w.n_rates);
        let down = self
            .cal
            .call_time(KernelKind::Down, self.schedule, m, r, units, self.chips);
        let root = self
            .cal
            .call_time(KernelKind::Root3, self.schedule, m, r, units, self.chips);
        let scale = self
            .cal
            .call_time(KernelKind::Scale, self.schedule, m, r, units, self.chips);
        w.n_down as f64 * down
            + w.n_root as f64 * (root + self.cal.per_eval_overhead)
            + w.n_scale as f64 * scale
    }

    fn serial_cycle_factor(&self) -> f64 {
        // §4.2: the in-order PPE with its small 512 KB L2 runs the serial
        // remainder several times slower than the baseline core even
        // after frequency scaling.
        5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(leaves: usize, patterns: usize) -> PlfWorkload {
        PlfWorkload::for_run(leaves, patterns, 4, 100, 1)
    }

    #[test]
    fn speedup_close_to_ideal_for_large_sets_on_ps3() {
        let m = CellModel::ps3();
        for &pats in &[5000usize, 20000, 50000] {
            let s = m.speedup(&w(20, pats), 6);
            assert!(s > 5.0 && s < 6.0, "{pats}: {s}");
        }
    }

    #[test]
    fn qs20_caps_near_12() {
        let m = CellModel::qs20();
        let s = m.speedup(&w(20, 50000), 16);
        assert!((10.0..14.0).contains(&s), "{s}");
    }

    #[test]
    fn smallest_set_scales_worst() {
        // §4.1.2: "other than for the smallest data set (1K columns),
        // the speedup values are close to the ideal".
        let m = CellModel::qs20();
        let s1k = m.speedup(&w(20, 1000), 16);
        let s20k = m.speedup(&w(20, 20000), 16);
        assert!(s1k < s20k, "{s1k} !< {s20k}");
    }

    #[test]
    fn stable_across_computation_intensity() {
        // §4.1.2: performance is stable across the different computation
        // intensities, with a slight *increase* for more computation.
        let m = CellModel::ps3();
        let s10 = m.speedup(&w(10, 20000), 6);
        let s100 = m.speedup(&w(100, 20000), 6);
        let rel = (s100 - s10) / s10;
        assert!(rel >= 0.0, "speedup dropped with leaves: {s10} -> {s100}");
        assert!(rel < 0.10, "increase should be slight: {rel}");
    }

    #[test]
    fn efficiency_beats_multicore_average() {
        // Paper: 92% Cell PLF efficiency vs 71% multi-core average.
        let m = CellModel::ps3();
        let s = m.speedup(&w(20, 50000), 6);
        assert!(s / 6.0 > 0.85, "efficiency {}", s / 6.0);
    }

    #[test]
    fn double_buffering_ablation_slows_plf() {
        let on = CellModel::ps3();
        let off = CellModel::ps3().without_double_buffering();
        let wl = w(20, 8543);
        let t_on = on.plf_time(&wl, 6);
        let t_off = off.plf_time(&wl, 6);
        assert!(t_off > t_on, "{t_off} !> {t_on}");
        // DMA is a minority of chunk time on the PS3, so the penalty is
        // real but bounded.
        assert!(t_off / t_on < 2.0, "ratio {}", t_off / t_on);
    }

    #[test]
    fn breakdown_has_heavy_serial_component() {
        let m = CellModel::ps3();
        let b = m.breakdown(&w(20, 8543), 5.0);
        assert!(b.remaining_s > 4.0 * 5.0);
        assert_eq!(b.transfer_s, 0.0);
    }
}

//! Analytic GPU timing model (Figures 11 & 12, §3.4 design space).
//!
//! The PLF is strongly memory-bound on both devices (≈1.25 flops/byte
//! against >5 flops/byte of machine balance), so kernel time is the
//! maximum of a compute term and a device-memory term. Effective
//! bandwidth is degraded by poor coalescing (the reduction-parallel
//! distribution) and by insufficient latency-hiding occupancy (small
//! grids / small data sets — the reason Figure 11 grows with data-set
//! size). PCIe transfers happen around every PLF invocation and are the
//! dominant cost in Figure 12, exactly as §4.2 reports.

use crate::device::{DeviceConfig, LaunchConfig, WARP_SIZE};
use crate::kernels::WorkDistribution;
use plf_simcore::machine::MachineConfig;
use plf_simcore::model::MachineModel;
use plf_simcore::workload::{PlfWorkload, ENTRY_BYTES};

/// Kernel kinds (bytes/flops differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuKernelKind {
    /// CondLikeDown.
    Down,
    /// CondLikeRoot, three children.
    Root3,
    /// CondLikeRoot, two children.
    Root2,
    /// CondLikeScaler.
    Scale,
}

impl GpuKernelKind {
    /// Device-memory bytes touched per pattern.
    pub fn bytes_per_pattern(self, r: usize) -> usize {
        let clv = r * ENTRY_BYTES;
        match self {
            GpuKernelKind::Down | GpuKernelKind::Root2 => 3 * clv,
            GpuKernelKind::Root3 => 4 * clv,
            GpuKernelKind::Scale => 2 * clv,
        }
    }

    /// Host→device bytes per pattern of one invocation (operands).
    pub fn h2d_bytes_per_pattern(self, r: usize) -> usize {
        let clv = r * ENTRY_BYTES;
        match self {
            GpuKernelKind::Down | GpuKernelKind::Root2 => 2 * clv,
            GpuKernelKind::Root3 => 3 * clv,
            GpuKernelKind::Scale => clv,
        }
    }

    /// Device→host bytes per pattern (results).
    pub fn d2h_bytes_per_pattern(self, r: usize) -> usize {
        let clv = r * ENTRY_BYTES;
        match self {
            GpuKernelKind::Scale => clv + 4,
            _ => clv,
        }
    }

    /// Core cycles per (pattern, rate) entry, entry-parallel schedule.
    pub fn cycles_per_entry(self) -> f64 {
        match self {
            GpuKernelKind::Down | GpuKernelKind::Root2 => 40.0,
            GpuKernelKind::Root3 => 60.0,
            GpuKernelKind::Scale => 16.0,
        }
    }
}

/// Shared memory the kernel needs per thread (staging one discrete-rate
/// array plus partials), plus a per-block constant pool for the
/// transition matrices. These are what cap the block size at 256 threads
/// in the paper's exploration.
pub const SHARED_PER_THREAD: usize = 52;
/// Per-block shared constant pool (transition matrices).
pub const SHARED_CONSTANTS: usize = 2048;

/// Calibrated timing model of one GPU.
#[derive(Debug, Clone)]
pub struct GpuModel {
    dev: DeviceConfig,
    dist: WorkDistribution,
    cfg: LaunchConfig,
    coalesced: bool,
}

impl GpuModel {
    /// 8800 GT with the paper's best configuration.
    pub fn gt8800() -> GpuModel {
        GpuModel {
            dev: DeviceConfig::gt8800(),
            dist: WorkDistribution::EntryParallel,
            cfg: LaunchConfig::paper_8800gt(),
            coalesced: true,
        }
    }

    /// GTX 285 with the paper's best configuration.
    pub fn gtx285() -> GpuModel {
        GpuModel {
            dev: DeviceConfig::gtx285(),
            dist: WorkDistribution::EntryParallel,
            cfg: LaunchConfig::paper_gtx285(),
            coalesced: true,
        }
    }

    /// Override the work distribution (§3.4 ablation).
    pub fn with_distribution(mut self, dist: WorkDistribution) -> GpuModel {
        self.dist = dist;
        self
    }

    /// Override the launch configuration (design-space exploration).
    pub fn with_config(mut self, cfg: LaunchConfig) -> GpuModel {
        self.cfg = cfg;
        self
    }

    /// Drop the coalescing trick of §3.4 (groups of 4 threads on
    /// adjacent discrete-rate arrays): accesses become strided and the
    /// memory system serves them at a fraction of peak.
    pub fn without_coalescing(mut self) -> GpuModel {
        self.coalesced = false;
        self
    }

    /// Device description.
    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// Current launch configuration.
    pub fn launch_config(&self) -> LaunchConfig {
        self.cfg
    }

    /// Does the configuration satisfy the shared-memory budget on top of
    /// the generic validity rules?
    pub fn is_launchable(&self, cfg: LaunchConfig) -> bool {
        cfg.is_valid(&self.dev)
            && cfg.threads * SHARED_PER_THREAD + SHARED_CONSTANTS <= self.dev.shared_mem_per_sm()
    }

    /// Modeled time of one kernel invocation over `m` patterns.
    pub fn kernel_time(&self, kind: GpuKernelKind, m: usize, r: usize) -> f64 {
        assert!(self.is_launchable(self.cfg), "invalid launch config {:?}", self.cfg);
        let entries = m * r;
        let total_threads = self.cfg.total_threads();

        // Compute term: grid-stride passes round work up to grid size;
        // partially filled waves leave SMs idle at the tail.
        let (cycle_factor, mut coalesce): (f64, f64) = match self.dist {
            WorkDistribution::EntryParallel => (1.0, 1.0),
            // §3.4: "a large number of synchronization points and
            // conditional statements" — measured 2.5× slower PLF.
            WorkDistribution::ReductionParallel => (2.5, 0.45),
        };
        if !self.coalesced {
            coalesce = coalesce.min(0.45);
        }
        let effective_entries = entries.div_ceil(total_threads) * total_threads;
        let resident = self.cfg.resident_blocks_per_sm(&self.dev).max(1);
        let wave_capacity = self.dev.sms() * resident;
        let waves = self.cfg.blocks.div_ceil(wave_capacity);
        let wave_imbalance = (waves * wave_capacity) as f64 / self.cfg.blocks as f64;
        let compute = effective_entries as f64 * kind.cycles_per_entry() * cycle_factor
            / (self.dev.cores() as f64 * self.dev.freq_hz())
            * wave_imbalance;
        // Per-block scheduling cost (block setup + end-of-block drain),
        // spread over the SMs and serial with the streaming phase: the
        // term that makes many tiny blocks lose to the paper's
        // 256-thread blocks.
        let block_launches = (self.cfg.blocks * entries.div_ceil(total_threads)) as f64;
        let block_cost = block_launches * 300.0 / (self.dev.sms() as f64 * self.dev.freq_hz());

        // Memory term: effective bandwidth needs enough resident threads
        // to hide latency.
        let active_threads = entries.min(total_threads).min(
            self.dev.sms() * self.dev.max_threads_per_sm(),
        );
        let hide_needed = self.dev.sms() * self.dev.latency_hide_threads;
        let hiding = (active_threads as f64 / hide_needed as f64).min(1.0);
        let bw = self.dev.mem_bw * coalesce * hiding;
        let mem = (m * kind.bytes_per_pattern(r)) as f64 / bw;

        self.dev.launch_overhead + block_cost + compute.max(mem)
    }

    /// PCIe time around one invocation (operands in, results out; §3.4:
    /// transfers are not overlapped with computation).
    pub fn pcie_time(&self, kind: GpuKernelKind, m: usize, r: usize) -> f64 {
        let h2d = (m * kind.h2d_bytes_per_pattern(r) + SHARED_CONSTANTS) as u64;
        let d2h = (m * kind.d2h_bytes_per_pattern(r)) as u64;
        self.dev.pcie.time(h2d) + self.dev.pcie.time(d2h)
    }

    /// Figure 11's metric: PLF throughput (flops/s of the kernel
    /// section) — callers normalize to the 8800 GT on the 10_1K set.
    pub fn relative_performance(&self, w: &PlfWorkload) -> f64 {
        w.total_flops() / self.plf_time(w, 1)
    }

    /// Exhaustive design-space exploration (§3.4): try every warp-
    /// multiple thread count and block count up to 6 waves, return the
    /// configuration minimizing PLF time on `w`.
    pub fn sweep(&self, w: &PlfWorkload) -> (LaunchConfig, f64) {
        let mut best = (self.cfg, f64::INFINITY);
        let mut threads = WARP_SIZE;
        while threads <= self.dev.max_threads_per_block {
            for blocks in (self.dev.sms()..=6 * self.dev.sms()).step_by(1) {
                let cfg = LaunchConfig { threads, blocks };
                let candidate = GpuModel {
                    dev: self.dev.clone(),
                    dist: self.dist,
                    cfg,
                    coalesced: self.coalesced,
                };
                if !candidate.is_launchable(cfg) {
                    continue;
                }
                let t = candidate.plf_time(w, 1);
                if t < best.1 {
                    best = (cfg, t);
                }
            }
            threads += WARP_SIZE;
        }
        best
    }
}

impl MachineModel for GpuModel {
    fn config(&self) -> &MachineConfig {
        &self.dev.machine
    }

    fn max_units(&self) -> usize {
        1 // the device is the unit; per-core scaling is not applicable (§4.1.3)
    }

    fn plf_time(&self, w: &PlfWorkload, _units: usize) -> f64 {
        let (m, r) = (w.n_patterns, w.n_rates);
        w.n_down as f64 * self.kernel_time(GpuKernelKind::Down, m, r)
            + w.n_root as f64
                * (self.kernel_time(GpuKernelKind::Root3, m, r) + self.dev.invocation_overhead)
            + w.n_scale as f64 * self.kernel_time(GpuKernelKind::Scale, m, r)
    }

    fn transfer_time(&self, w: &PlfWorkload) -> f64 {
        let (m, r) = (w.n_patterns, w.n_rates);
        w.n_down as f64 * self.pcie_time(GpuKernelKind::Down, m, r)
            + w.n_root as f64 * self.pcie_time(GpuKernelKind::Root3, m, r)
            + w.n_scale as f64 * self.pcie_time(GpuKernelKind::Scale, m, r)
    }

    fn serial_cycle_factor(&self) -> f64 {
        // §4.2: "the host system of the graphics card being slightly
        // slower than the baseline".
        1.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(leaves: usize, patterns: usize) -> PlfWorkload {
        PlfWorkload::for_run(leaves, patterns, 4, 100, 1)
    }

    #[test]
    fn gtx285_roughly_2x_faster_kernels_at_scale() {
        // §4.1.3: 2.2–2.4× at 20K/50K columns.
        for &m in &[20_000usize, 50_000] {
            let t8 = GpuModel::gt8800().kernel_time(GpuKernelKind::Down, m, 4);
            let t2 = GpuModel::gtx285().kernel_time(GpuKernelKind::Down, m, 4);
            let ratio = t8 / t2;
            assert!((1.9..=2.9).contains(&ratio), "m={m}: {ratio}");
        }
    }

    #[test]
    fn throughput_grows_with_data_size() {
        // Figure 11: speedup rises with column count up to 20K–50K.
        let g = GpuModel::gt8800();
        let p1 = g.relative_performance(&w(10, 1000));
        let p5 = g.relative_performance(&w(10, 5000));
        let p20 = g.relative_performance(&w(10, 20000));
        let p50 = g.relative_performance(&w(10, 50000));
        assert!(p1 < p5 && p5 < p20, "{p1} {p5} {p20}");
        // Plateau: 50K is no longer a big jump.
        assert!(p50 / p20 < 1.5, "{p50} vs {p20}");
    }

    #[test]
    fn throughput_grows_with_computation_intensity() {
        // Figure 11: unlike the multi-cores, more computation (leaves)
        // raises GPU relative speedup.
        let g = GpuModel::gtx285();
        let p10 = g.relative_performance(&w(10, 20000));
        let p100 = g.relative_performance(&w(100, 20000));
        assert!(p100 > p10, "{p100} !> {p10}");
    }

    #[test]
    fn pcie_dwarfs_kernel_time() {
        // §4.2: data transfer is the GPUs' dominant cost.
        let g = GpuModel::gt8800();
        let kernel = g.kernel_time(GpuKernelKind::Down, 8543, 4);
        let pcie = g.pcie_time(GpuKernelKind::Down, 8543, 4);
        assert!(pcie > 10.0 * kernel, "pcie {pcie} vs kernel {kernel}");
    }

    #[test]
    fn reduction_parallel_2_5x_slower() {
        let entry = GpuModel::gt8800();
        let red = GpuModel::gt8800().with_distribution(WorkDistribution::ReductionParallel);
        let wl = w(20, 8543);
        let ratio = red.plf_time(&wl, 1) / entry.plf_time(&wl, 1);
        assert!((1.8..=3.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn sweep_finds_paper_like_configuration() {
        let wl = w(20, 8543);
        let (best8, t8) = GpuModel::gt8800().sweep(&wl);
        assert!(t8.is_finite());
        // §3.4 found 256 threads × 40 blocks on the 8800 GT; the model's
        // optimum lands in the same neighbourhood (full occupancy bands).
        assert!(
            (192..=288).contains(&best8.threads),
            "8800GT best threads {}",
            best8.threads
        );
        assert!((14..=70).contains(&best8.blocks), "8800GT best blocks {}", best8.blocks);
        let (best2, _) = GpuModel::gtx285().sweep(&wl);
        assert!((192..=288).contains(&best2.threads), "GTX best threads {}", best2.threads);
        assert!(
            best2.blocks >= 30,
            "GTX285 should want at least one block per SM, got {}",
            best2.blocks
        );
    }

    #[test]
    fn coalescing_ablation_slows_memory_bound_kernels() {
        let on = GpuModel::gt8800();
        let off = GpuModel::gt8800().without_coalescing();
        let t_on = on.kernel_time(GpuKernelKind::Down, 20_000, 4);
        let t_off = off.kernel_time(GpuKernelKind::Down, 20_000, 4);
        let ratio = t_off / t_on;
        // Memory-bound kernel: the strided penalty shows nearly in full.
        assert!((1.8..=2.4).contains(&ratio), "ratio {ratio}");
        // Reduction-parallel is already uncoalesced; no further penalty.
        let red = GpuModel::gt8800().with_distribution(WorkDistribution::ReductionParallel);
        let red_off = red.clone().without_coalescing();
        let wl = w(20, 8543);
        assert_eq!(red.plf_time(&wl, 1), red_off.plf_time(&wl, 1));
    }

    #[test]
    fn shared_memory_caps_block_size() {
        let g = GpuModel::gt8800();
        assert!(g.is_launchable(LaunchConfig { threads: 256, blocks: 40 }));
        assert!(!g.is_launchable(LaunchConfig { threads: 288, blocks: 40 }));
    }

    #[test]
    fn breakdown_shape_matches_figure12() {
        use plf_simcore::model::MachineModel as _;
        let g = GpuModel::gt8800();
        let b = g.breakdown(&w(20, 8543), 5.0);
        assert!(b.transfer_s > b.plf_s, "PCIe must dominate the kernel time");
        assert!(b.remaining_s > 5.0, "host slightly slower than baseline");
    }
}

//! A minimal SPMD grid executor.
//!
//! Functionally emulates a CUDA launch: a grid of `blocks × threads`
//! virtual threads runs the same kernel closure, with grid-stride
//! iteration over work items (the paper's "global partitions" level —
//! data larger than the grid is swept in passes). Execution is
//! sequential on the host; the timing model, not the host schedule,
//! decides the modeled cost.

use crate::device::LaunchConfig;

/// Identity of one virtual CUDA thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Block index within the grid.
    pub block: usize,
    /// Thread index within the block.
    pub thread: usize,
    /// Flattened global thread id.
    pub global: usize,
}

/// Statistics gathered from a single launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Work items processed.
    pub items: usize,
    /// Grid-stride passes over the grid (≥1 when items > grid threads).
    pub passes: usize,
    /// Virtual threads that had no work in the final pass (divergence /
    /// idle lanes).
    pub idle_threads: usize,
}

/// Launch `kernel` over `n_items` work items with a grid-stride loop:
/// item `i` is handled by global thread `i % total_threads` in pass
/// `i / total_threads`.
pub fn launch<F>(cfg: LaunchConfig, n_items: usize, mut kernel: F) -> LaunchStats
where
    F: FnMut(ThreadCtx, usize),
{
    let total = cfg.total_threads();
    assert!(total > 0, "empty grid");
    let mut item = 0usize;
    let mut passes = 0usize;
    while item < n_items {
        passes += 1;
        let in_pass = (n_items - item).min(total);
        for g in 0..in_pass {
            let ctx = ThreadCtx {
                block: g / cfg.threads,
                thread: g % cfg.threads,
                global: g,
            };
            kernel(ctx, item + g);
        }
        item += in_pass;
    }
    LaunchStats {
        items: n_items,
        passes: passes.max(1),
        idle_threads: if n_items == 0 {
            total
        } else {
            (total - (n_items % total)) % total
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: LaunchConfig = LaunchConfig { threads: 32, blocks: 4 };

    #[test]
    fn every_item_processed_once() {
        let mut seen = vec![0u32; 1000];
        launch(CFG, 1000, |_, item| seen[item] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn pass_count() {
        // 128 threads, 1000 items => 8 passes.
        let stats = launch(CFG, 1000, |_, _| {});
        assert_eq!(stats.passes, 8);
        assert_eq!(stats.idle_threads, 128 - 1000 % 128);
    }

    #[test]
    fn exact_fit_no_idle() {
        let stats = launch(CFG, 256, |_, _| {});
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.idle_threads, 0);
    }

    #[test]
    fn thread_ctx_consistent() {
        launch(CFG, 128, |ctx, item| {
            assert_eq!(ctx.global, item);
            assert_eq!(ctx.block, item / 32);
            assert_eq!(ctx.thread, item % 32);
        });
    }

    #[test]
    fn zero_items() {
        let stats = launch(CFG, 0, |_, _| panic!("no work expected"));
        assert_eq!(stats.items, 0);
        assert_eq!(stats.passes, 1);
    }
}

//! The two CUDA work distributions of §3.4, executed functionally.
//!
//! * [`WorkDistribution::EntryParallel`] — Figure 8(c): one completely
//!   independent thread per likelihood-vector entry (one discrete-rate
//!   4-float array). No synchronization, no conditionals; groups of 4
//!   threads touch adjacent arrays so accesses coalesce. The paper's
//!   winner (2.5× faster PLF, +36% total speedup).
//! * [`WorkDistribution::ReductionParallel`] — Figure 8(b): a group of
//!   threads cooperates on each inner-product reduction with
//!   tree-reduction synchronization points — faithful to the paper's
//!   first attempt, and modeled (and measured, via sync counts) as the
//!   slower choice.
//!
//! Both produce the reference results: entry-parallel accumulates in the
//! canonical column-wise order (bitwise-identical to the scalar kernel),
//! reduction-parallel uses the pairwise tree order of the row-wise SIMD
//! kernel.

use crate::device::LaunchConfig;
use crate::grid::{launch, LaunchStats};
use plf_phylo::clv::TransitionMatrices;
use plf_phylo::dna::N_STATES;
use plf_phylo::kernels::simd4;

/// The §3.4 thread-scheduling alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkDistribution {
    /// One thread per likelihood-vector entry (Figure 8(c)).
    EntryParallel,
    /// Thread groups per reduction with sync points (Figure 8(b)).
    ReductionParallel,
}

/// Counters from one functional kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Grid launch statistics.
    pub launch: LaunchStats,
    /// `__syncthreads()`-equivalent synchronization points executed.
    pub syncs: u64,
    /// Patterns rescaled (nonzero only for the scaler kernel).
    pub rescaled: u64,
}

#[inline]
fn load4(s: &[f32]) -> [f32; 4] {
    [s[0], s[1], s[2], s[3]]
}

/// One entry's worth of CondLikeDown under a distribution.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
fn down_entry(
    dist: WorkDistribution,
    k: usize,
    left: &[f32],
    p_left: &TransitionMatrices,
    right: &[f32],
    p_right: &TransitionMatrices,
    out: &mut [f32],
    syncs: &mut u64,
) {
    let (l, r) = match dist {
        WorkDistribution::EntryParallel => (
            simd4::mat_vec_colwise(p_left.rate_transposed(k), load4(left)),
            simd4::mat_vec_colwise(p_right.rate_transposed(k), load4(right)),
        ),
        WorkDistribution::ReductionParallel => {
            // Each of the 8 inner products is a cooperative tree
            // reduction: log2(4) = 2 sync points per reduction.
            *syncs += 8 * 2;
            (
                simd4::mat_vec_rowwise(p_left.rate(k), load4(left)),
                simd4::mat_vec_rowwise(p_right.rate(k), load4(right)),
            )
        }
    };
    for s in 0..N_STATES {
        out[s] = l[s] * r[s];
    }
}

/// CondLikeDown over the whole CLV on the virtual GPU.
#[allow(clippy::too_many_arguments)]
pub fn down(
    dist: WorkDistribution,
    cfg: LaunchConfig,
    left: &[f32],
    p_left: &TransitionMatrices,
    right: &[f32],
    p_right: &TransitionMatrices,
    out: &mut [f32],
    n_rates: usize,
) -> KernelStats {
    let entries = out.len() / N_STATES;
    let mut syncs = 0u64;
    let stats = launch(cfg, entries, |_ctx, e| {
        let k = e % n_rates;
        let base = e * N_STATES;
        let mut slot = [0.0f32; N_STATES];
        down_entry(
            dist,
            k,
            &left[base..base + N_STATES],
            p_left,
            &right[base..base + N_STATES],
            p_right,
            &mut slot,
            &mut syncs,
        );
        out[base..base + N_STATES].copy_from_slice(&slot);
    });
    KernelStats { launch: stats, syncs, rescaled: 0 }
}

/// CondLikeRoot over the whole CLV on the virtual GPU.
#[allow(clippy::too_many_arguments)]
pub fn root(
    dist: WorkDistribution,
    cfg: LaunchConfig,
    a: &[f32],
    p_a: &TransitionMatrices,
    b: &[f32],
    p_b: &TransitionMatrices,
    c: Option<(&[f32], &TransitionMatrices)>,
    out: &mut [f32],
    n_rates: usize,
) -> KernelStats {
    let entries = out.len() / N_STATES;
    let mut syncs = 0u64;
    let stats = launch(cfg, entries, |_ctx, e| {
        let k = e % n_rates;
        let base = e * N_STATES;
        let mv = |p: &TransitionMatrices, v: &[f32], syncs: &mut u64| match dist {
            WorkDistribution::EntryParallel => {
                simd4::mat_vec_colwise(p.rate_transposed(k), load4(v))
            }
            WorkDistribution::ReductionParallel => {
                *syncs += 4 * 2;
                simd4::mat_vec_rowwise(p.rate(k), load4(v))
            }
        };
        let va = mv(p_a, &a[base..base + N_STATES], &mut syncs);
        let vb = mv(p_b, &b[base..base + N_STATES], &mut syncs);
        let mut prod = [0.0f32; 4];
        for s in 0..N_STATES {
            prod[s] = va[s] * vb[s];
        }
        if let Some((c_clv, p_c)) = c {
            let vc = mv(p_c, &c_clv[base..base + N_STATES], &mut syncs);
            for s in 0..N_STATES {
                prod[s] *= vc[s];
            }
        }
        out[base..base + N_STATES].copy_from_slice(&prod);
    });
    KernelStats { launch: stats, syncs, rescaled: 0 }
}

/// CondLikeScaler: one thread per *pattern* (the max-reduction spans the
/// pattern's 16 floats, so entry-level threads would race).
pub fn scale(
    dist: WorkDistribution,
    cfg: LaunchConfig,
    clv: &mut [f32],
    ln_scalers: &mut [f32],
    n_rates: usize,
) -> KernelStats {
    let stride = n_rates * N_STATES;
    let m = clv.len() / stride;
    let mut syncs = 0u64;
    let mut rescaled = 0u64;
    let stats = launch(cfg, m, |_ctx, i| {
        if dist == WorkDistribution::ReductionParallel {
            // Cooperative max-reduction over 16 lanes: 4 sync points.
            syncs += 4;
        }
        rescaled += simd4::cond_like_scaler_range(
            &mut clv[i * stride..(i + 1) * stride],
            &mut ln_scalers[i..i + 1],
            n_rates,
        );
    });
    KernelStats { launch: stats, syncs, rescaled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::kernels::scalar;

    fn mats(seed: u64, n_rates: usize) -> TransitionMatrices {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32).fract().abs() * 0.9 + 0.05
        };
        TransitionMatrices::from_mats(
            (0..n_rates)
                .map(|_| std::array::from_fn(|_| std::array::from_fn(|_| next())))
                .collect(),
        )
    }

    fn clv(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0xD1342543DE82EF95).wrapping_add(7);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) as f32 / (1u64 << 31) as f32).fract().abs()
            })
            .collect()
    }

    const CFG: LaunchConfig = LaunchConfig { threads: 64, blocks: 3 };

    #[test]
    fn entry_parallel_down_bitwise_matches_scalar() {
        let (m, r) = (57, 4);
        let len = m * r * 4;
        let (pl, pr) = (mats(1, r), mats(2, r));
        let (l, rt) = (clv(3, len), clv(4, len));
        let mut out_gpu = vec![0.0f32; len];
        let mut out_ref = vec![0.0f32; len];
        let stats = down(WorkDistribution::EntryParallel, CFG, &l, &pl, &rt, &pr, &mut out_gpu, r);
        scalar::cond_like_down_range(&l, &pl, &rt, &pr, &mut out_ref, r);
        assert_eq!(out_gpu, out_ref);
        assert_eq!(stats.syncs, 0, "entry-parallel threads are independent");
        assert_eq!(stats.launch.passes, (m * r).div_ceil(CFG.total_threads()));
    }

    #[test]
    fn reduction_parallel_down_close_and_synchronous() {
        let (m, r) = (23, 4);
        let len = m * r * 4;
        let (pl, pr) = (mats(5, r), mats(6, r));
        let (l, rt) = (clv(7, len), clv(8, len));
        let mut out_gpu = vec![0.0f32; len];
        let mut out_ref = vec![0.0f32; len];
        let stats =
            down(WorkDistribution::ReductionParallel, CFG, &l, &pl, &rt, &pr, &mut out_gpu, r);
        scalar::cond_like_down_range(&l, &pl, &rt, &pr, &mut out_ref, r);
        for (a, b) in out_gpu.iter().zip(&out_ref) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-3));
        }
        assert_eq!(stats.syncs, (m * r) as u64 * 16);
    }

    #[test]
    fn root_three_children_matches_scalar() {
        let (m, r) = (31, 4);
        let len = m * r * 4;
        let (pa, pb, pc) = (mats(9, r), mats(10, r), mats(11, r));
        let (a, b, c) = (clv(12, len), clv(13, len), clv(14, len));
        let mut out_gpu = vec![0.0f32; len];
        let mut out_ref = vec![0.0f32; len];
        root(
            WorkDistribution::EntryParallel,
            CFG,
            &a,
            &pa,
            &b,
            &pb,
            Some((&c[..], &pc)),
            &mut out_gpu,
            r,
        );
        scalar::cond_like_root_range(&a, &pa, &b, &pb, Some((&c[..], &pc)), &mut out_ref, r);
        assert_eq!(out_gpu, out_ref);
    }

    #[test]
    fn scale_matches_scalar() {
        let (m, r) = (19, 4);
        let len = m * r * 4;
        let mut gpu_clv = clv(20, len);
        let mut ref_clv = gpu_clv.clone();
        let mut gpu_sc = vec![0.0f32; m];
        let mut ref_sc = vec![0.0f32; m];
        let stats = scale(WorkDistribution::EntryParallel, CFG, &mut gpu_clv, &mut gpu_sc, r);
        let ref_rescaled = scalar::cond_like_scaler_range(&mut ref_clv, &mut ref_sc, r);
        assert_eq!(gpu_clv, ref_clv);
        assert_eq!(gpu_sc, ref_sc);
        assert_eq!(stats.rescaled, ref_rescaled);
        assert_eq!(stats.rescaled, m as u64, "all random patterns are live");
    }
}

//! The functional GPU backend.
//!
//! Executes the PLF through the virtual SPMD grid — every call ships
//! operands over the modeled PCIe bus, launches the kernel under the
//! configured work distribution, and ships results back, accumulating
//! modeled time, exactly the §3.4 execution structure. Results are
//! bitwise-identical to the scalar reference under the entry-parallel
//! distribution.

use crate::device::LaunchConfig;
use crate::kernels::{self, WorkDistribution};
use crate::model::{GpuKernelKind, GpuModel};
use plf_phylo::clv::{Clv, TransitionMatrices};
use plf_phylo::kernels::{FusedDown, FusedRoot, FusedScale, PlfBackend};
use plf_phylo::metrics::{Kernel, KernelTimer, PlfCounters};
use plf_phylo::resilience::{FaultInjector, FaultSite, PlfError};
use plf_simcore::model::MachineModel as _;
use std::sync::Arc;

/// Accumulated modeled costs of a GPU run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuRunStats {
    /// Modeled kernel seconds.
    pub kernel_seconds: f64,
    /// Modeled PCIe transfer seconds.
    pub pcie_seconds: f64,
    /// Kernel launches.
    pub launches: u64,
    /// Host→device bytes.
    pub bytes_h2d: u64,
    /// Device→host bytes.
    pub bytes_d2h: u64,
    /// `__syncthreads()` executions (reduction-parallel only).
    pub syncs: u64,
}

impl GpuRunStats {
    /// Total modeled seconds (kernel + transfers).
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.pcie_seconds
    }
}

/// A simulated CUDA device executing the PLF.
pub struct GpuBackend {
    model: GpuModel,
    dist: WorkDistribution,
    stats: GpuRunStats,
    injector: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<PlfCounters>>,
}

impl GpuBackend {
    /// 8800 GT, entry-parallel, paper launch config.
    pub fn gt8800() -> GpuBackend {
        GpuBackend::new(GpuModel::gt8800(), WorkDistribution::EntryParallel)
    }

    /// GTX 285, entry-parallel, paper launch config.
    pub fn gtx285() -> GpuBackend {
        GpuBackend::new(GpuModel::gtx285(), WorkDistribution::EntryParallel)
    }

    /// Generic constructor.
    pub fn new(model: GpuModel, dist: WorkDistribution) -> GpuBackend {
        let model = model.with_distribution(dist);
        GpuBackend {
            model,
            dist,
            stats: GpuRunStats::default(),
            injector: None,
            metrics: None,
        }
    }

    /// Attach a fault injector (launch failures, PCIe failures, output
    /// corruption).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> GpuBackend {
        self.injector = Some(injector);
        self
    }

    /// Attach shared observability counters: kernel timings, rescale
    /// events, and PCIe transfer accounting (bytes each way, modeled bus
    /// seconds — the Fig. 12 PLF/PCIe breakdown).
    pub fn with_metrics(mut self, counters: Arc<PlfCounters>) -> GpuBackend {
        self.metrics = Some(counters);
        self
    }

    /// Override the launch configuration.
    pub fn with_config(mut self, cfg: LaunchConfig) -> GpuBackend {
        self.model = self.model.with_config(cfg);
        self
    }

    /// Statistics so far.
    pub fn stats(&self) -> GpuRunStats {
        self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats = GpuRunStats::default();
    }

    /// The underlying timing model.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    fn cfg(&self) -> LaunchConfig {
        self.model.launch_config()
    }

    fn account(&mut self, kind: GpuKernelKind, m: usize, r: usize) {
        let pcie = self.model.pcie_time(kind, m, r);
        let h2d = (m * kind.h2d_bytes_per_pattern(r)) as u64;
        let d2h = (m * kind.d2h_bytes_per_pattern(r)) as u64;
        self.stats.launches += 1;
        self.stats.kernel_seconds += self.model.kernel_time(kind, m, r);
        self.stats.pcie_seconds += pcie;
        self.stats.bytes_h2d += h2d;
        self.stats.bytes_d2h += d2h;
        if let Some(counters) = &self.metrics {
            // One host→device and one device→host command per launch.
            counters.record_transfer(h2d, d2h, 2, pcie);
        }
    }

    /// The host→device leg: one PCIe roll before any kernel work.
    fn upload(&self, kind: GpuKernelKind, m: usize, r: usize) -> Result<(), PlfError> {
        if let Some(inj) = &self.injector {
            if inj.fire(FaultSite::PcieTransfer) {
                return Err(PlfError::Transfer {
                    backend: self.name(),
                    channel: "pcie",
                    detail: format!(
                        "injected fault on {}-byte host→device transfer",
                        m * kind.h2d_bytes_per_pattern(r)
                    ),
                });
            }
        }
        Ok(())
    }

    /// The launch itself: one launch roll.
    fn launch(&self, kind: GpuKernelKind) -> Result<(), PlfError> {
        if let Some(inj) = &self.injector {
            if inj.fire(FaultSite::KernelLaunch) {
                return Err(PlfError::Launch {
                    backend: self.name(),
                    detail: format!("injected fault launching {kind:?} kernel"),
                });
            }
        }
        Ok(())
    }

    /// Roll and apply output corruption (a device→host transfer that
    /// silently delivered garbage).
    fn maybe_corrupt(&self, out: &mut [f32]) {
        if let Some(inj) = &self.injector {
            if let Some(kind) = inj.fire_corruption() {
                inj.corrupt(out, kind);
            }
        }
    }
}

impl PlfBackend for GpuBackend {
    fn name(&self) -> String {
        let dist = match self.dist {
            WorkDistribution::EntryParallel => "entry",
            WorkDistribution::ReductionParallel => "reduction",
        };
        format!("gpu-{}-{dist}", self.model.config().name)
    }

    fn begin_evaluation(&mut self) {
        self.stats.kernel_seconds += self.model.device().invocation_overhead;
        if let Some(m) = &self.metrics {
            m.record_evaluation();
        }
    }

    fn preferred_batch_patterns(&self, n_rates: usize) -> usize {
        let _ = n_rates;
        // One full grid per launch: threads × blocks patterns (§3.4's
        // one-thread-per-pattern entry-parallel mapping).
        let cfg = self.cfg();
        (cfg.threads * cfg.blocks).max(1)
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, out.n_patterns());
        let (m, r) = (out.n_patterns(), out.n_rates());
        self.upload(GpuKernelKind::Down, m, r)?;
        self.launch(GpuKernelKind::Down)?;
        let stats = kernels::down(
            self.dist,
            self.cfg(),
            left.as_slice(),
            p_left,
            right.as_slice(),
            p_right,
            out.as_mut_slice(),
            r,
        );
        self.maybe_corrupt(out.as_mut_slice());
        self.stats.syncs += stats.syncs;
        self.account(GpuKernelKind::Down, m, r);
        Ok(())
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, out.n_patterns());
        let (m, r) = (out.n_patterns(), out.n_rates());
        let kind = if c.is_some() { GpuKernelKind::Root3 } else { GpuKernelKind::Root2 };
        self.upload(kind, m, r)?;
        self.launch(kind)?;
        let stats = kernels::root(
            self.dist,
            self.cfg(),
            a.as_slice(),
            p_a,
            b.as_slice(),
            p_b,
            c.map(|(clv, p)| (clv.as_slice(), p)),
            out.as_mut_slice(),
            r,
        );
        self.maybe_corrupt(out.as_mut_slice());
        self.stats.syncs += stats.syncs;
        self.account(kind, m, r);
        Ok(())
    }

    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, clv.n_patterns());
        let (m, r) = (clv.n_patterns(), clv.n_rates());
        self.upload(GpuKernelKind::Scale, m, r)?;
        self.launch(GpuKernelKind::Scale)?;
        let stats = kernels::scale(self.dist, self.cfg(), clv.as_mut_slice(), ln_scalers, r);
        self.maybe_corrupt(clv.as_mut_slice());
        self.stats.syncs += stats.syncs;
        if let Some(counters) = &self.metrics {
            counters.record_rescaled(stats.rescaled);
        }
        self.account(GpuKernelKind::Scale, m, r);
        Ok(())
    }

    // Fused overrides: one modeled host→device transfer + kernel launch
    // covers the whole batch's current tree level (§3.4's launch
    // overhead paid once over the concatenated pattern space instead of
    // once per job). The virtual grid runs each op's patterns with the
    // same per-pattern arithmetic, so results are bitwise identical to
    // the per-op path.

    fn cond_like_down_fused(&mut self, ops: &mut [FusedDown<'_>]) -> Result<(), PlfError> {
        let Some(first) = ops.first() else { return Ok(()) };
        let (total_m, r) = (
            ops.iter().map(|op| op.out.n_patterns()).sum::<usize>(),
            first.out.n_rates(),
        );
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, total_m);
        self.upload(GpuKernelKind::Down, total_m, r)?;
        self.launch(GpuKernelKind::Down)?;
        for op in ops.iter_mut() {
            let r_op = op.out.n_rates();
            let stats = kernels::down(
                self.dist,
                self.cfg(),
                op.left.as_slice(),
                op.p_left,
                op.right.as_slice(),
                op.p_right,
                op.out.as_mut_slice(),
                r_op,
            );
            self.maybe_corrupt(op.out.as_mut_slice());
            self.stats.syncs += stats.syncs;
        }
        self.account(GpuKernelKind::Down, total_m, r);
        Ok(())
    }

    fn cond_like_root_fused(&mut self, ops: &mut [FusedRoot<'_>]) -> Result<(), PlfError> {
        let Some(first) = ops.first() else { return Ok(()) };
        let kind = if first.c.is_some() { GpuKernelKind::Root3 } else { GpuKernelKind::Root2 };
        let (total_m, r) = (
            ops.iter().map(|op| op.out.n_patterns()).sum::<usize>(),
            first.out.n_rates(),
        );
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, total_m);
        self.upload(kind, total_m, r)?;
        self.launch(kind)?;
        for op in ops.iter_mut() {
            let r_op = op.out.n_rates();
            let stats = kernels::root(
                self.dist,
                self.cfg(),
                op.a.as_slice(),
                op.p_a,
                op.b.as_slice(),
                op.p_b,
                op.c.map(|(clv, p)| (clv.as_slice(), p)),
                op.out.as_mut_slice(),
                r_op,
            );
            self.maybe_corrupt(op.out.as_mut_slice());
            self.stats.syncs += stats.syncs;
        }
        self.account(kind, total_m, r);
        Ok(())
    }

    fn cond_like_scaler_fused(&mut self, ops: &mut [FusedScale<'_>]) -> Result<(), PlfError> {
        let Some(first) = ops.first() else { return Ok(()) };
        let (total_m, r) = (
            ops.iter().map(|op| op.clv.n_patterns()).sum::<usize>(),
            first.clv.n_rates(),
        );
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, total_m);
        self.upload(GpuKernelKind::Scale, total_m, r)?;
        self.launch(GpuKernelKind::Scale)?;
        for op in ops.iter_mut() {
            let r_op = op.clv.n_rates();
            let stats = kernels::scale(
                self.dist,
                self.cfg(),
                op.clv.as_mut_slice(),
                op.ln_scalers,
                r_op,
            );
            self.maybe_corrupt(op.clv.as_mut_slice());
            self.stats.syncs += stats.syncs;
            if let Some(counters) = &self.metrics {
                counters.record_rescaled(stats.rescaled);
            }
        }
        self.account(GpuKernelKind::Scale, total_m, r);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::kernels::ScalarBackend;
    use plf_phylo::likelihood::TreeLikelihood;
    use plf_phylo::model::{GtrParams, SiteModel};
    use plf_phylo::tree::Tree;

    fn toy() -> (Tree, plf_phylo::alignment::PatternAlignment, SiteModel) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,(e:0.1,f:0.3):0.1,g:0.2);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCAACGTACCTAAGGCCATAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCAACGTACGTAAGGCCTTAGTA"),
            ("d", "ACTTACGTAAGGCGTTAGCAACGTACGAAAGGCCTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGCATCGTACGTAAGGCCTTAGCA"),
            ("f", "ACGTTCGTAAGGCCTTAGCAACGTACGTAAGCCCTTAGCA"),
            ("g", "AGGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCG"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        (tree, aln, model)
    }

    #[test]
    fn entry_parallel_matches_scalar_bitwise() {
        let (tree, aln, model) = toy();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        for mut backend in [GpuBackend::gt8800(), GpuBackend::gtx285()] {
            let mut eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
            let got = eval.log_likelihood(&tree, &mut backend).unwrap();
            assert_eq!(got, expect, "{}", backend.name());
            assert_eq!(backend.stats().syncs, 0);
        }
    }

    #[test]
    fn reduction_parallel_close_with_syncs() {
        let (tree, aln, model) = toy();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let mut backend =
            GpuBackend::new(GpuModel::gt8800(), WorkDistribution::ReductionParallel);
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let got = eval.log_likelihood(&tree, &mut backend).unwrap();
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
        assert!(backend.stats().syncs > 0);
    }

    #[test]
    fn stats_accumulate_and_pcie_dominates() {
        let (tree, aln, model) = toy();
        let mut backend = GpuBackend::gt8800();
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        eval.log_likelihood(&tree, &mut backend).unwrap();
        let s = backend.stats();
        assert!(s.launches > 0);
        assert!(s.bytes_h2d > s.bytes_d2h);
        assert!(s.pcie_seconds > s.kernel_seconds);
    }

    #[test]
    fn gtx_faster_kernels_than_8800() {
        let (tree, aln, model) = toy();
        let mut b8 = GpuBackend::gt8800();
        let mut b2 = GpuBackend::gtx285();
        let mut e1 = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let mut e2 = TreeLikelihood::new(&tree, &aln, model).unwrap();
        e1.log_likelihood(&tree, &mut b8).unwrap();
        e2.log_likelihood(&tree, &mut b2).unwrap();
        assert!(b2.stats().kernel_seconds < b8.stats().kernel_seconds);
    }
}

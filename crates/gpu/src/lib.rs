//! # plf-gpu — execution-driven CUDA-class GPU simulator
//!
//! Reproduces §3.4 of the paper: the PLF mapped onto an SPMD grid with
//! three-level data partitioning (global partitions / blocks / thread
//! groups), coalesced accesses via 4-thread groups per discrete-rate
//! array, both work distributions (reduction-parallel vs the 2.5×
//! faster entry-parallel), per-invocation PCIe transfers, and the
//! threads×blocks design-space exploration that found 256×40 (8800 GT)
//! and 256×85 (GTX 285). Kernels really execute on a virtual grid;
//! timing comes from the calibrated memory-bound device model.
//!
//! 2008-era CUDA hardware is unavailable; see DESIGN.md for the
//! substitution rationale.

#![warn(missing_docs)]
// Fixed-size 4-state matrix math reads clearest with explicit indices;
// iterator adaptors would obscure the correspondence with the paper's
// formulas.
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod device;
pub mod grid;
pub mod kernels;
pub mod model;

pub use backend::{GpuBackend, GpuRunStats};
pub use device::{DeviceConfig, LaunchConfig, WARP_SIZE};
pub use kernels::WorkDistribution;
pub use model::{GpuKernelKind, GpuModel, SHARED_CONSTANTS, SHARED_PER_THREAD};

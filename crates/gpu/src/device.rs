//! GPU device descriptions and the CUDA launch configuration.
//!
//! The two devices are the paper's 8800 GT (G92: 14 SMs × 8 cores) and
//! GTX 285 (GT200: 30 SMs × 8 cores). Constants follow the era's specs:
//! 16 KB shared memory per SM, 32-thread warps, register files of 8K
//! (G92) / 16K (GT200) 32-bit registers per SM — the resources §3.4
//! lists as limiting the thread count.

use plf_simcore::machine::{ArchClass, MachineConfig, GPU_8800GT, GPU_GTX285};
use plf_simcore::xfer::TransferModel;

/// Threads per warp on both generations.
pub const WARP_SIZE: usize = 32;

/// Hardware description + calibrated throughput parameters of a device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Table 1 row.
    pub machine: MachineConfig,
    /// Effective (sustained) device-memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Host↔device bus.
    pub pcie: TransferModel,
    /// Kernel launch overhead, seconds.
    pub launch_overhead: f64,
    /// Per-PLF-invocation host-side coordination (§4.2: "the host needs
    /// to coordinate with the card and ship the code").
    pub invocation_overhead: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Registers the PLF kernel needs per thread.
    pub regs_per_thread: usize,
    /// Resident threads needed per SM to hide memory latency fully.
    pub latency_hide_threads: usize,
    /// Maximum threads per block the hardware accepts.
    pub max_threads_per_block: usize,
}

impl DeviceConfig {
    /// NVIDIA 8800 GT.
    pub fn gt8800() -> DeviceConfig {
        DeviceConfig {
            machine: GPU_8800GT,
            mem_bw: 52.0e9, // 57.6 GB/s peak, ~90% sustained
            pcie: TransferModel::pcie_gen1(),
            launch_overhead: 5.0e-6,
            invocation_overhead: 80.0e-6,
            regs_per_sm: 8192,
            regs_per_thread: 20,
            latency_hide_threads: 384,
            max_threads_per_block: 512,
        }
    }

    /// NVIDIA GTX 285.
    pub fn gtx285() -> DeviceConfig {
        DeviceConfig {
            machine: GPU_GTX285,
            mem_bw: 140.0e9, // 159 GB/s peak
            pcie: TransferModel::pcie_gen2(),
            launch_overhead: 4.0e-6,
            invocation_overhead: 60.0e-6,
            // GT200 register-file size, not the Cell DMA bound.
            regs_per_sm: 16384, // plf-lint: allow(L3)
            regs_per_thread: 20,
            latency_hide_threads: 512,
            max_threads_per_block: 512,
        }
    }

    /// SM count.
    pub fn sms(&self) -> usize {
        match self.machine.arch {
            ArchClass::Gpu { sms, .. } => sms,
            _ => unreachable!("GPU config wraps GPU machines"),
        }
    }

    /// Maximum resident threads per SM.
    pub fn max_threads_per_sm(&self) -> usize {
        match self.machine.arch {
            ArchClass::Gpu { max_threads_per_sm, .. } => max_threads_per_sm,
            _ => unreachable!(),
        }
    }

    /// Shared memory per SM in bytes.
    pub fn shared_mem_per_sm(&self) -> usize {
        match self.machine.arch {
            ArchClass::Gpu { shared_mem_per_sm, .. } => shared_mem_per_sm,
            _ => unreachable!(),
        }
    }

    /// Total scalar cores.
    pub fn cores(&self) -> usize {
        self.machine.cores
    }

    /// Core clock in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.machine.freq_ghz * 1e9
    }
}

/// A CUDA kernel launch configuration (threads per block × blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Threads per block.
    pub threads: usize,
    /// Blocks in the grid.
    pub blocks: usize,
}

impl LaunchConfig {
    /// The paper's best configuration for the 8800 GT: 256 × 40 (§3.4).
    pub fn paper_8800gt() -> LaunchConfig {
        LaunchConfig { threads: 256, blocks: 40 }
    }

    /// The paper's best configuration for the GTX 285: 256 × 85 (§3.4).
    pub fn paper_gtx285() -> LaunchConfig {
        LaunchConfig { threads: 256, blocks: 85 }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.threads * self.blocks
    }

    /// Is the configuration launchable on `dev` (block size, warp
    /// granularity, register file)?
    pub fn is_valid(&self, dev: &DeviceConfig) -> bool {
        self.threads >= WARP_SIZE
            && self.threads.is_multiple_of(WARP_SIZE)
            && self.threads <= dev.max_threads_per_block
            && self.blocks >= 1
            && self.threads * dev.regs_per_thread <= dev.regs_per_sm
    }

    /// Resident blocks per SM under register and thread-count limits.
    pub fn resident_blocks_per_sm(&self, dev: &DeviceConfig) -> usize {
        if !self.is_valid(dev) {
            return 0;
        }
        let by_threads = dev.max_threads_per_sm() / self.threads;
        let by_regs = dev.regs_per_sm / (self.threads * dev.regs_per_thread);
        by_threads.min(by_regs).clamp(1, 8)
    }

    /// Occupancy: resident threads per SM / hardware maximum.
    pub fn occupancy(&self, dev: &DeviceConfig) -> f64 {
        (self.resident_blocks_per_sm(dev) * self.threads) as f64
            / dev.max_threads_per_sm() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_match_table1() {
        let d8 = DeviceConfig::gt8800();
        assert_eq!(d8.cores(), 112);
        assert_eq!(d8.sms(), 14);
        let d2 = DeviceConfig::gtx285();
        assert_eq!(d2.cores(), 240);
        assert_eq!(d2.sms(), 30);
        assert!(d2.mem_bw > 2.0 * d8.mem_bw);
    }

    #[test]
    fn paper_configs_are_valid() {
        assert!(LaunchConfig::paper_8800gt().is_valid(&DeviceConfig::gt8800()));
        assert!(LaunchConfig::paper_gtx285().is_valid(&DeviceConfig::gtx285()));
    }

    #[test]
    fn invalid_configs_rejected() {
        let dev = DeviceConfig::gt8800();
        assert!(!LaunchConfig { threads: 100, blocks: 10 }.is_valid(&dev)); // not warp multiple
        assert!(!LaunchConfig { threads: 1024, blocks: 10 }.is_valid(&dev)); // too big
        assert!(!LaunchConfig { threads: 512, blocks: 0 }.is_valid(&dev)); // no blocks
        // 512 threads × 20 regs = 10240 > 8192 regs on G92.
        assert!(!LaunchConfig { threads: 512, blocks: 10 }.is_valid(&dev));
        assert!(LaunchConfig { threads: 512, blocks: 10 }.is_valid(&DeviceConfig::gtx285()));
    }

    #[test]
    fn occupancy_within_bounds() {
        let dev = DeviceConfig::gt8800();
        for threads in [32usize, 64, 128, 256, 384] {
            let cfg = LaunchConfig { threads, blocks: 40 };
            let occ = cfg.occupancy(&dev);
            assert!(occ > 0.0 && occ <= 1.0, "{threads}: {occ}");
        }
    }

    #[test]
    fn register_file_limits_residency_on_g92() {
        let dev = DeviceConfig::gt8800();
        // 256 threads × 20 regs = 5120; 8192/5120 = 1 resident block.
        assert_eq!(
            LaunchConfig { threads: 256, blocks: 40 }.resident_blocks_per_sm(&dev),
            1
        );
        // GT200's 16K registers fit three (16384 / 5120).
        assert_eq!(
            LaunchConfig { threads: 256, blocks: 85 }.resident_blocks_per_sm(&DeviceConfig::gtx285()),
            3
        );
    }
}

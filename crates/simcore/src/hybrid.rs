//! Hypothetical future systems from the paper's conclusions.
//!
//! §4.2/§6: "a successful future large-scale many-core system will have
//! to be composed of heterogeneous cores … and also certain powerful
//! cores in order to execute the serial code"; for the GPUs, "explore
//! faster ways to transfer the data, or overlap the data transmission
//! with computation". [`HybridModel`] realizes both what-ifs on top of
//! any existing [`MachineModel`]: replace the weak host core with a
//! baseline-class core, and/or overlap transfers with kernel execution.

use crate::machine::MachineConfig;
use crate::model::MachineModel;
use crate::workload::PlfWorkload;

/// A machine model modified per the paper's future-work suggestions.
pub struct HybridModel<M: MachineModel> {
    inner: M,
    serial_factor: f64,
    overlap_transfers: bool,
    transfer_speedup: f64,
}

impl<M: MachineModel> HybridModel<M> {
    /// Wrap `inner` unchanged.
    pub fn new(inner: M) -> HybridModel<M> {
        let serial_factor = inner.serial_cycle_factor();
        HybridModel {
            inner,
            serial_factor,
            overlap_transfers: false,
            transfer_speedup: 1.0,
        }
    }

    /// Pair the accelerator with a baseline-class serial core (the
    /// "offload the serial execution to more powerful cores" fix for
    /// the Cell's PPE problem).
    pub fn with_strong_host(mut self) -> HybridModel<M> {
        self.serial_factor = 1.0;
        self
    }

    /// Overlap host↔device transfers with kernel execution (the fix for
    /// the GPUs' PCIe penalty): only the transfer time exceeding the
    /// kernel time remains exposed.
    pub fn with_transfer_overlap(mut self) -> HybridModel<M> {
        self.overlap_transfers = true;
        self
    }

    /// The paper's other GPU remedy: "explore faster ways to transfer
    /// the data" — scale the interconnect bandwidth by `factor` (e.g.
    /// a later PCIe generation).
    pub fn with_faster_transfers(mut self, factor: f64) -> HybridModel<M> {
        assert!(factor >= 1.0);
        self.transfer_speedup = factor;
        self
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: MachineModel> MachineModel for HybridModel<M> {
    fn config(&self) -> &MachineConfig {
        self.inner.config()
    }

    fn max_units(&self) -> usize {
        self.inner.max_units()
    }

    fn plf_time(&self, w: &PlfWorkload, units: usize) -> f64 {
        self.inner.plf_time(w, units)
    }

    fn transfer_time(&self, w: &PlfWorkload) -> f64 {
        let t = self.inner.transfer_time(w) / self.transfer_speedup;
        if self.overlap_transfers {
            (t - self.inner.plf_time(w, self.inner.max_units())).max(0.0)
        } else {
            t
        }
    }

    fn serial_cycle_factor(&self) -> f64 {
        self.serial_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BASELINE;

    /// Toy accelerator: fixed PLF time, big transfer cost, weak host.
    struct Toy;

    impl MachineModel for Toy {
        fn config(&self) -> &MachineConfig {
            &BASELINE
        }
        fn max_units(&self) -> usize {
            1
        }
        fn plf_time(&self, _w: &PlfWorkload, _units: usize) -> f64 {
            2.0
        }
        fn transfer_time(&self, _w: &PlfWorkload) -> f64 {
            5.0
        }
        fn serial_cycle_factor(&self) -> f64 {
            4.0
        }
    }

    fn w() -> PlfWorkload {
        PlfWorkload::for_run(10, 1000, 4, 1, 1)
    }

    #[test]
    fn plain_wrapper_is_transparent() {
        let h = HybridModel::new(Toy);
        assert_eq!(h.plf_time(&w(), 1), 2.0);
        assert_eq!(h.transfer_time(&w()), 5.0);
        assert_eq!(h.serial_cycle_factor(), 4.0);
    }

    #[test]
    fn strong_host_fixes_serial_factor_only() {
        let h = HybridModel::new(Toy).with_strong_host();
        assert_eq!(h.serial_cycle_factor(), 1.0);
        assert_eq!(h.transfer_time(&w()), 5.0);
    }

    #[test]
    fn overlap_exposes_only_excess_transfer() {
        let h = HybridModel::new(Toy).with_transfer_overlap();
        // 5s transfer − 2s kernel = 3s exposed.
        assert_eq!(h.transfer_time(&w()), 3.0);
    }

    #[test]
    fn overlap_never_negative() {
        struct FastXfer;
        impl MachineModel for FastXfer {
            fn config(&self) -> &MachineConfig {
                &BASELINE
            }
            fn max_units(&self) -> usize {
                1
            }
            fn plf_time(&self, _w: &PlfWorkload, _u: usize) -> f64 {
                10.0
            }
            fn transfer_time(&self, _w: &PlfWorkload) -> f64 {
                1.0
            }
            fn serial_cycle_factor(&self) -> f64 {
                1.0
            }
        }
        let h = HybridModel::new(FastXfer).with_transfer_overlap();
        assert_eq!(h.transfer_time(&w()), 0.0);
    }

    #[test]
    fn combined_improvements_lower_total() {
        let plain = HybridModel::new(Toy);
        let both = HybridModel::new(Toy).with_strong_host().with_transfer_overlap();
        let b_plain = plain.breakdown(&w(), 1.0);
        let b_both = both.breakdown(&w(), 1.0);
        assert!(b_both.total() < b_plain.total());
    }
}

//! PLF workload descriptions — the inputs to every timing model.
//!
//! A workload counts the kernel invocations of a run and knows how much
//! arithmetic and memory traffic each invocation implies under the
//! paper's data layout (`m` patterns × `r` rates × 4 states of `f32`).

/// Bytes per (pattern, rate) state array.
pub const ENTRY_BYTES: usize = 16; // 4 × f32

/// Counts of PLF kernel invocations plus the data shape they run over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlfWorkload {
    /// Number of tree leaves (taxa) — drives the call count and, in the
    /// paper's measurements, the synchronization pressure.
    pub n_leaves: usize,
    /// Distinct site patterns `m` (the parallel loop length).
    pub n_patterns: usize,
    /// Discrete rate categories `r` (4 under Γ(4)).
    pub n_rates: usize,
    /// Total `CondLikeDown` invocations.
    pub n_down: u64,
    /// Total `CondLikeRoot` invocations.
    pub n_root: u64,
    /// Total `CondLikeScaler` invocations.
    pub n_scale: u64,
}

impl PlfWorkload {
    /// Workload of `n_evals` full-tree evaluations on an unrooted binary
    /// tree with `n_leaves` leaves (virtual root of degree 3): per
    /// evaluation `n_leaves − 3` Down calls, one Root call, and — with
    /// `scale_every = 1` — one Scaler call per internal node.
    pub fn for_run(
        n_leaves: usize,
        n_patterns: usize,
        n_rates: usize,
        n_evals: u64,
        scale_every: usize,
    ) -> PlfWorkload {
        assert!(n_leaves >= 3);
        let downs_per_eval = (n_leaves - 3) as u64;
        let internals = (n_leaves - 2) as u64;
        let scales_per_eval = if scale_every == 0 {
            0
        } else {
            // interior scales + the root scale
            (downs_per_eval / scale_every as u64) + 1
        };
        PlfWorkload {
            n_leaves,
            n_patterns,
            n_rates,
            n_down: downs_per_eval * n_evals,
            n_root: n_evals,
            n_scale: scales_per_eval.min(internals) * n_evals,
        }
    }

    /// Label in the paper's `taxa_columns` convention (used for jitter
    /// keys and reports).
    pub fn label(&self) -> String {
        if self.n_patterns.is_multiple_of(1000) {
            format!("{}_{}K", self.n_leaves, self.n_patterns / 1000)
        } else {
            format!("{}_{}", self.n_leaves, self.n_patterns)
        }
    }

    /// Bytes of one full conditional likelihood vector.
    pub fn clv_bytes(&self) -> u64 {
        (self.n_patterns * self.n_rates * ENTRY_BYTES) as u64
    }

    /// Total kernel invocations — the paper's "number of calls to the
    /// parallel section".
    pub fn calls(&self) -> u64 {
        self.n_down + self.n_root + self.n_scale
    }

    /// Floating-point operations of one `CondLikeDown` call: per
    /// (pattern, rate), two 4×4 matrix–vector products (16 mul + 12 add
    /// each) plus the 4-wide combine = 60 flops.
    pub fn down_flops(&self) -> u64 {
        (self.n_patterns * self.n_rates * 60) as u64
    }

    /// Flops of one `CondLikeRoot` call (three children): three
    /// matrix–vector products plus two 4-wide combines = 92 flops per
    /// (pattern, rate).
    pub fn root_flops(&self) -> u64 {
        (self.n_patterns * self.n_rates * 92) as u64
    }

    /// Ops of one `CondLikeScaler` call: a 16-way max reduction plus a
    /// broadcast multiply ≈ 8 ops per (pattern, rate).
    pub fn scale_flops(&self) -> u64 {
        (self.n_patterns * self.n_rates * 8) as u64
    }

    /// Total arithmetic of the whole workload.
    pub fn total_flops(&self) -> f64 {
        self.n_down as f64 * self.down_flops() as f64 / 1.0f64.max(1.0)
            + self.n_root as f64 * self.root_flops() as f64
            + self.n_scale as f64 * self.scale_flops() as f64
    }

    /// Main-memory bytes touched by one Down call (read two CLVs, write
    /// one).
    pub fn down_bytes(&self) -> u64 {
        3 * self.clv_bytes()
    }

    /// Bytes touched by one Root call (read three CLVs, write one).
    pub fn root_bytes(&self) -> u64 {
        4 * self.clv_bytes()
    }

    /// Bytes touched by one Scaler call (read + write one CLV).
    pub fn scale_bytes(&self) -> u64 {
        2 * self.clv_bytes()
    }

    /// Total bytes of the workload.
    pub fn total_bytes(&self) -> f64 {
        self.n_down as f64 * self.down_bytes() as f64
            + self.n_root as f64 * self.root_bytes() as f64
            + self.n_scale as f64 * self.scale_bytes() as f64
    }

    /// Arithmetic intensity (flops per byte) — the "computation-to-data
    /// ratio" the paper invokes to explain Cell/GPU trends.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() / self.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_eval_counts() {
        let w = PlfWorkload::for_run(10, 1000, 4, 1, 1);
        assert_eq!(w.n_down, 7);
        assert_eq!(w.n_root, 1);
        assert_eq!(w.n_scale, 8); // 7 interior + root
        assert_eq!(w.calls(), 16);
    }

    #[test]
    fn evals_scale_linearly() {
        let w1 = PlfWorkload::for_run(50, 5000, 4, 1, 1);
        let w10 = PlfWorkload::for_run(50, 5000, 4, 10, 1);
        assert_eq!(w10.n_down, 10 * w1.n_down);
        assert_eq!(w10.calls(), 10 * w1.calls());
        assert!((w10.total_flops() - 10.0 * w1.total_flops()).abs() < 1.0);
    }

    #[test]
    fn clv_bytes_match_figure3() {
        // Γ(4): 16 floats = 64 bytes per pattern element.
        let w = PlfWorkload::for_run(10, 1000, 4, 1, 1);
        assert_eq!(w.clv_bytes(), 1000 * 64);
    }

    #[test]
    fn no_scaling_option() {
        let w = PlfWorkload::for_run(10, 1000, 4, 5, 0);
        assert_eq!(w.n_scale, 0);
    }

    #[test]
    fn more_leaves_mean_more_calls_same_flops_per_call() {
        let w10 = PlfWorkload::for_run(10, 1000, 4, 1, 1);
        let w100 = PlfWorkload::for_run(100, 1000, 4, 1, 1);
        assert!(w100.calls() > 6 * w10.calls());
        assert_eq!(w10.down_flops(), w100.down_flops());
    }

    #[test]
    fn intensity_independent_of_m() {
        let a = PlfWorkload::for_run(20, 1000, 4, 3, 1);
        let b = PlfWorkload::for_run(20, 50000, 4, 3, 1);
        assert!((a.arithmetic_intensity() - b.arithmetic_intensity()).abs() < 1e-9);
        // Down: 60 flops per entry over 48 bytes ⇒ 1.25 flops/byte;
        // scaler calls pull the mix slightly below that.
        assert!(a.arithmetic_intensity() > 0.8 && a.arithmetic_intensity() < 1.5);
    }
}

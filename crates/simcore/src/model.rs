//! The timing-model interface every simulated architecture implements,
//! plus the Figure 12 breakdown record.
//!
//! # Why analytic timing models
//!
//! None of the paper's 2009 hardware (Cell/BE, G92/GT200 GPUs,
//! FSB-era Xeons) exists on this machine, so per the reproduction rules
//! each backend pairs a *functional* execution (the PLF really runs,
//! with results testable against the scalar reference) with an
//! *analytic* cycle/bandwidth model that produces the times the figures
//! plot. Model constants are calibrated against the paper's own reported
//! observations (efficiencies, crossover points, bandwidth/latency specs
//! of the era) and documented where they are defined.

use crate::machine::MachineConfig;
use crate::workload::PlfWorkload;

/// A timing model of one Table 1 system.
pub trait MachineModel {
    /// Static description (Table 1 row).
    fn config(&self) -> &MachineConfig;

    /// Maximum parallel units (cores / SPEs; for GPUs this is the device
    /// itself — pass `1`).
    fn max_units(&self) -> usize;

    /// Modeled wall-clock seconds the PLF workload takes on `units`
    /// parallel elements *on that machine* (no frequency normalization).
    fn plf_time(&self, w: &PlfWorkload, units: usize) -> f64;

    /// Un-overlapped host↔device transfer seconds (PCIe); zero except
    /// for GPUs.
    fn transfer_time(&self, _w: &PlfWorkload) -> f64 {
        0.0
    }

    /// Ratio of serial ("Remaining") code runtime on this system's host
    /// core versus the baseline core *at equal clock* (>1 ⇒ slower, e.g.
    /// the in-order PPE).
    fn serial_cycle_factor(&self) -> f64;

    /// Figure 12 row: modeled full-application times given the measured
    /// baseline serial portion. All three components are
    /// frequency-scaled to the baseline clock, as in §4.2.
    fn breakdown(&self, w: &PlfWorkload, baseline_remaining_s: f64) -> Breakdown {
        let cfg = self.config();
        let fs = cfg.freq_scale();
        // Serial code: cycles = baseline_cycles × factor; at this
        // machine's clock time = cycles/freq; frequency-scaling (×fs)
        // cancels the clock difference, leaving the pure cycle factor.
        let remaining = baseline_remaining_s * self.serial_cycle_factor();
        Breakdown {
            system: cfg.name.to_string(),
            plf_s: self.plf_time(w, self.max_units()) * fs,
            remaining_s: remaining,
            transfer_s: self.transfer_time(w) * fs,
        }
    }
}

/// One bar of Figure 12: frequency-scaled seconds split into PLF,
/// Remaining, and PCIe transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// System name (Table 1 header).
    pub system: String,
    /// Parallel-section (PLF) time, seconds.
    pub plf_s: f64,
    /// Serial remainder, seconds.
    pub remaining_s: f64,
    /// Host↔device transfer time, seconds (GPUs only).
    pub transfer_s: f64,
}

impl Breakdown {
    /// Total application time.
    pub fn total(&self) -> f64 {
        self.plf_s + self.remaining_s + self.transfer_s
    }

    /// Components as percentages of a reference total (the baseline's
    /// 100%), in Figure 12's normalization.
    pub fn normalized(&self, reference_total: f64) -> (f64, f64, f64) {
        let f = 100.0 / reference_total;
        (self.plf_s * f, self.remaining_s * f, self.transfer_s * f)
    }

    /// Overall application speedup versus a reference total.
    pub fn speedup_vs(&self, reference_total: f64) -> f64 {
        reference_total / self.total()
    }
}

/// Deterministic per-label jitter in `[1−amp, 1+amp]`, used to reproduce
/// the paper's "low and unstable" small-data-set measurements without a
/// real noisy machine. FNV-1a over the label keeps it stable across runs.
pub fn deterministic_jitter(label: &str, amp: f64) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    1.0 + amp * (2.0 * unit - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_arithmetic() {
        let b = Breakdown {
            system: "X".into(),
            plf_s: 10.0,
            remaining_s: 5.0,
            transfer_s: 5.0,
        };
        assert_eq!(b.total(), 20.0);
        let (p, r, t) = b.normalized(40.0);
        assert_eq!((p, r, t), (25.0, 12.5, 12.5));
        assert_eq!(b.speedup_vs(40.0), 2.0);
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        for label in ["10_1K", "100_50K", "20_8543"] {
            let j = deterministic_jitter(label, 0.2);
            assert!((0.8..=1.2).contains(&j), "{label}: {j}");
            assert_eq!(j, deterministic_jitter(label, 0.2));
        }
        assert_ne!(
            deterministic_jitter("10_1K", 0.2),
            deterministic_jitter("20_1K", 0.2)
        );
    }

    #[test]
    fn jitter_zero_amp_is_identity() {
        assert_eq!(deterministic_jitter("anything", 0.0), 1.0);
    }
}

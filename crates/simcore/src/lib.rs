//! # plf-simcore — shared simulation substrate
//!
//! Common infrastructure for the three architecture backends:
//!
//! * [`machine`] — the eight systems of the paper's Table 1, with the
//!   micro-architectural topology §4.1 reasons about,
//! * [`workload`] — PLF kernel-invocation counts and their flop/byte
//!   costs,
//! * [`xfer`] — latency+bandwidth models for Cell DMA and PCIe,
//! * [`model`] — the [`model::MachineModel`] timing-model trait and the
//!   Figure 12 [`model::Breakdown`] record.

#![warn(missing_docs)]

pub mod hybrid;
pub mod machine;
pub mod model;
pub mod workload;
pub mod xfer;

pub use hybrid::HybridModel;
pub use machine::{
    table1, ArchClass, MachineConfig, BASELINE, GPU_8800GT, GPU_GTX285, OPTERON_4X4, OPTERON_8X2,
    PS3, QS20, XEON_2X4,
};
pub use model::{deterministic_jitter, Breakdown, MachineModel};
pub use workload::{PlfWorkload, ENTRY_BYTES};
pub use xfer::TransferModel;

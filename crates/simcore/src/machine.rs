//! The eight systems of Table 1.
//!
//! Every field is transcribed from the paper; the topology details
//! (dies per package, cores per shared cache) come from §4.1.1's
//! discussion of the Xeon E5320 (two dual-core dies per package, L2
//! shared per die) versus the Opteron 8354 (four cores on one die) and
//! the Opteron 8218 (dual-core).

/// Architecture class plus its class-specific topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArchClass {
    /// Homogeneous general-purpose multi-core (MPMD, hardware caches).
    MultiCore {
        /// Number of sockets (packages).
        sockets: usize,
        /// Dies per package (Xeon quad-core = 2 dual-core dies).
        dies_per_socket: usize,
        /// Cores per die.
        cores_per_die: usize,
        /// How many cores share the last on-die cache level.
        cores_per_shared_cache: usize,
    },
    /// Heterogeneous Cell/BE: PPE + SPEs with software-managed Local
    /// Stores connected by the EIB.
    CellBe {
        /// Number of usable SPEs (PS3: 6; QS20 blade: 16 across 2 chips).
        spes: usize,
        /// Number of Cell chips (EIB hops double across chips).
        chips: usize,
    },
    /// GPU accelerator behind a PCIe bus (SPMD).
    Gpu {
        /// Streaming multiprocessors.
        sms: usize,
        /// Scalar cores per SM (8 for G80/GT200 generation).
        cores_per_sm: usize,
        /// Shared memory per SM in bytes (16 KB on both devices).
        shared_mem_per_sm: usize,
        /// Maximum resident threads per SM (768 on G80, 1024 on GT200).
        max_threads_per_sm: usize,
    },
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Paper's column header, e.g. `2xXeon(4)`.
    pub name: &'static str,
    /// "System" row.
    pub system: &'static str,
    /// "Model" row (CPU/GPU model).
    pub model: &'static str,
    /// Total parallel processing elements (Table 1 "Cores").
    pub cores: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// "Cache" row, verbatim.
    pub cache: &'static str,
    /// Memory in GB.
    pub mem_gb: f64,
    /// Architecture class and topology.
    pub arch: ArchClass,
}

impl MachineConfig {
    /// Frequency-scaling factor relative to the baseline system: the
    /// paper normalizes all measured times "according to the frequencies
    /// of each system and the baseline" (§4.2).
    pub fn freq_scale(&self) -> f64 {
        self.freq_ghz / BASELINE.freq_ghz
    }
}

/// The reference system: a generic 3.0 GHz Intel E8400 desktop.
pub const BASELINE: MachineConfig = MachineConfig {
    name: "Baseline",
    system: "Generic",
    model: "Intel E8400",
    cores: 1,
    freq_ghz: 3.0,
    cache: "6MB",
    mem_gb: 2.0,
    arch: ArchClass::MultiCore {
        sockets: 1,
        dies_per_socket: 1,
        cores_per_die: 1,
        cores_per_shared_cache: 1,
    },
};

/// IBM x3650: two quad-core Xeon E5320 (each package = 2 dual-core dies,
/// 4 MB L2 shared per die).
pub const XEON_2X4: MachineConfig = MachineConfig {
    name: "2xXeon(4)",
    system: "IBM x3650",
    model: "Intel E5320",
    cores: 8,
    freq_ghz: 1.8,
    cache: "2x4MB",
    mem_gb: 48.0,
    arch: ArchClass::MultiCore {
        sockets: 2,
        dies_per_socket: 2,
        cores_per_die: 2,
        cores_per_shared_cache: 2,
    },
};

/// Dell PowerEdge M905: four quad-core Opteron 8354 (single die, L3
/// shared by all four cores).
pub const OPTERON_4X4: MachineConfig = MachineConfig {
    name: "4xOpteron(4)",
    system: "Dell PowerEdge M905",
    model: "AMD 8354",
    cores: 16,
    freq_ghz: 2.2,
    cache: "4x512KB+2MB",
    mem_gb: 64.0,
    arch: ArchClass::MultiCore {
        sockets: 4,
        dies_per_socket: 1,
        cores_per_die: 4,
        cores_per_shared_cache: 4,
    },
};

/// Sun x4600 M2: eight dual-core Opteron 8218.
pub const OPTERON_8X2: MachineConfig = MachineConfig {
    name: "8xOpteron(2)",
    system: "Sun x4600 M2",
    model: "AMD 8218",
    cores: 16,
    freq_ghz: 2.6,
    cache: "2x1MB",
    mem_gb: 64.0,
    arch: ArchClass::MultiCore {
        sockets: 8,
        dies_per_socket: 1,
        cores_per_die: 2,
        cores_per_shared_cache: 1, // per-core L2 on the 8218
    },
};

/// Sony PlayStation 3: one Cell/BE, 6 SPEs available to applications.
pub const PS3: MachineConfig = MachineConfig {
    name: "PS3",
    system: "Sony PS3",
    model: "PPE+SPE",
    cores: 6,
    freq_ghz: 3.2,
    cache: "512KB",
    mem_gb: 0.25,
    arch: ArchClass::CellBe { spes: 6, chips: 1 },
};

/// IBM QS20 blade: two Cell/BE chips, 16 SPEs.
pub const QS20: MachineConfig = MachineConfig {
    name: "Blade QS20",
    system: "IBM QS20",
    model: "PPE+SPE",
    cores: 16,
    freq_ghz: 3.2,
    cache: "2x 512KB",
    mem_gb: 1.0,
    arch: ArchClass::CellBe { spes: 16, chips: 2 },
};

/// NVIDIA 8800 GT: 112 streaming cores (14 SMs × 8), G92.
pub const GPU_8800GT: MachineConfig = MachineConfig {
    name: "8800GT",
    system: "NVIDIA 8800 GT",
    model: "Streaming",
    cores: 112,
    freq_ghz: 1.5,
    cache: "256KB",
    mem_gb: 0.5,
    arch: ArchClass::Gpu {
        sms: 14,
        cores_per_sm: 8,
        // G80 shared-memory size, not the Cell DMA bound — same
        // value, unrelated invariant.
        shared_mem_per_sm: 16 * 1024, // plf-lint: allow(L3)
        max_threads_per_sm: 768,
    },
};

/// NVIDIA GTX 285: 240 streaming cores (30 SMs × 8), GT200.
pub const GPU_GTX285: MachineConfig = MachineConfig {
    name: "GTX285",
    system: "NVIDIA GTX 285",
    model: "Streaming",
    cores: 240,
    freq_ghz: 1.476,
    cache: "480KB",
    mem_gb: 1.0,
    arch: ArchClass::Gpu {
        sms: 30,
        cores_per_sm: 8,
        // GT200 shared-memory size, not the Cell DMA bound.
        shared_mem_per_sm: 16 * 1024, // plf-lint: allow(L3)
        max_threads_per_sm: 1024,
    },
};

/// All eight systems in Table 1 column order.
pub fn table1() -> Vec<MachineConfig> {
    vec![
        BASELINE,
        XEON_2X4,
        OPTERON_4X4,
        OPTERON_8X2,
        PS3,
        QS20,
        GPU_8800GT,
        GPU_GTX285,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_eight_systems() {
        let t = table1();
        assert_eq!(t.len(), 8);
        let names: Vec<_> = t.iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            [
                "Baseline",
                "2xXeon(4)",
                "4xOpteron(4)",
                "8xOpteron(2)",
                "PS3",
                "Blade QS20",
                "8800GT",
                "GTX285"
            ]
        );
    }

    #[test]
    fn core_counts_match_paper() {
        assert_eq!(XEON_2X4.cores, 8);
        assert_eq!(OPTERON_4X4.cores, 16);
        assert_eq!(OPTERON_8X2.cores, 16);
        assert_eq!(PS3.cores, 6);
        assert_eq!(QS20.cores, 16);
        assert_eq!(GPU_8800GT.cores, 112);
        assert_eq!(GPU_GTX285.cores, 240);
    }

    #[test]
    fn topology_consistency() {
        for m in table1() {
            if let ArchClass::MultiCore {
                sockets,
                dies_per_socket,
                cores_per_die,
                cores_per_shared_cache,
            } = m.arch
            {
                assert_eq!(m.cores, sockets * dies_per_socket * cores_per_die, "{}", m.name);
                assert!(cores_per_shared_cache <= cores_per_die.max(1));
            }
            if let ArchClass::Gpu { sms, cores_per_sm, .. } = m.arch {
                assert_eq!(m.cores, sms * cores_per_sm, "{}", m.name);
            }
            if let ArchClass::CellBe { spes, .. } = m.arch {
                assert_eq!(m.cores, spes, "{}", m.name);
            }
        }
    }

    #[test]
    fn gtx285_has_2_1x_cores_of_8800gt() {
        // §4.1.3: "the number of cores available in the GTX285 (240) is
        // 2.1x larger than the number of cores in the 8800GT (112)".
        let ratio = GPU_GTX285.cores as f64 / GPU_8800GT.cores as f64;
        assert!((ratio - 2.14).abs() < 0.01);
    }

    #[test]
    fn frequency_scaling_relative_to_baseline() {
        assert!((BASELINE.freq_scale() - 1.0).abs() < 1e-12);
        assert!((XEON_2X4.freq_scale() - 0.6).abs() < 1e-12);
        assert!((PS3.freq_scale() - 3.2 / 3.0).abs() < 1e-12);
    }
}

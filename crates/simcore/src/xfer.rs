//! Latency + bandwidth transfer-cost models.
//!
//! Two interconnects matter in the paper: the Cell/BE's Element
//! Interconnect Bus carrying ≤16 KB DMA transfers (§3.3) and the PCIe
//! bus between host and GPU whose per-invocation transfers dominate GPU
//! total time (§4.2, Figure 12).

/// A simple `latency + bytes/bandwidth` channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Fixed per-transfer latency in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Maximum bytes per hardware transfer (transfers above this are
    /// split and pay the latency repeatedly). `None` = unlimited.
    pub max_transfer: Option<usize>,
}

impl TransferModel {
    /// Cell/BE EIB DMA: 25.6 GB/s per direction, ~0.2 µs setup, 16 KB
    /// maximum per DMA command (the paper's §3.3 constraint).
    pub fn cell_dma() -> TransferModel {
        TransferModel {
            latency_s: 0.2e-6,
            bandwidth_bps: 25.6e9,
            // plf-simcore sits below plf-phylo and cannot import
            // phylo::constants::DMA_MAX_BYTES; the
            // `transfer_model_mirrors_shared_constants` test in
            // plf-cellbe pins this literal to the shared constant.
            max_transfer: Some(16 * 1024), // plf-lint: allow(L3)
        }
    }

    /// PCIe 1.1 ×16 as seen by 2008-era CUDA: ~1.5 GB/s effective with
    /// ~15 µs per-transfer overhead (driver + DMA setup).
    pub fn pcie_gen1() -> TransferModel {
        TransferModel {
            latency_s: 15e-6,
            bandwidth_bps: 1.5e9,
            max_transfer: None,
        }
    }

    /// PCIe 2.0 ×16 (GTX 285 era): ~4.5 GB/s effective with pinned
    /// host memory.
    pub fn pcie_gen2() -> TransferModel {
        TransferModel {
            latency_s: 12e-6,
            bandwidth_bps: 4.5e9,
            max_transfer: None,
        }
    }

    /// Number of hardware transfers needed for `bytes`.
    pub fn n_transfers(&self, bytes: u64) -> u64 {
        match self.max_transfer {
            None => 1,
            Some(max) => bytes.div_ceil(max as u64).max(1),
        }
    }

    /// Seconds to move `bytes` (zero bytes cost nothing).
    pub fn time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.n_transfers(bytes) as f64 * self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_free() {
        assert_eq!(TransferModel::cell_dma().time(0), 0.0);
    }

    #[test]
    fn dma_splits_at_16k() {
        let dma = TransferModel::cell_dma();
        assert_eq!(dma.n_transfers(16 * 1024), 1);
        assert_eq!(dma.n_transfers(16 * 1024 + 1), 2);
        assert_eq!(dma.n_transfers(160 * 1024), 10);
    }

    #[test]
    fn time_monotone_in_bytes() {
        let pcie = TransferModel::pcie_gen1();
        let mut prev = 0.0;
        for kb in [1u64, 4, 64, 1024, 16384] {
            let t = pcie.time(kb * 1024);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let pcie = TransferModel::pcie_gen1();
        let bytes = 512u64 * 1024 * 1024;
        let t = pcie.time(bytes);
        let ideal = bytes as f64 / pcie.bandwidth_bps;
        assert!((t - ideal) / ideal < 0.01);
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let dma = TransferModel::cell_dma();
        let t = dma.time(128);
        assert!(t > 0.9 * dma.latency_s && t < 2.0 * dma.latency_s);
    }

    #[test]
    fn gen2_faster_than_gen1() {
        let b = 8 * 1024 * 1024;
        assert!(TransferModel::pcie_gen2().time(b) < TransferModel::pcie_gen1().time(b));
    }
}

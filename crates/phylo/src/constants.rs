//! The paper's hard memory-geometry invariants, in one place.
//!
//! Every backend derives its layout from these four numbers; writing
//! them inline anywhere else is a plf-lint L3 (`magic-number`)
//! violation, so a chunk size or alignment can only be changed here —
//! where the cross-constant consistency asserts below re-check the
//! geometry at compile time.
//!
//! `plf-simcore` sits *below* this crate in the dependency graph and
//! models the same hardware bounds independently
//! (`TransferModel::cell_dma`); the `constants_mirror` test in
//! `plf-cellbe` pins the two definitions together.

/// Alignment (bytes) of every CLV allocation: the Cell/BE DMA engine
/// requires 128-byte aligned arrays (§3.3), and the same boundary is
/// cache-line/SIMD friendly on every other backend.
pub const CLV_ALIGN: usize = 128; // plf-lint: allow(L3) — definition site

/// Maximum bytes one DMA command may move (§3.3: the MFC splits
/// transfers at 16 KB; cost models charge per-command latency).
pub const DMA_MAX_BYTES: usize = 16 * 1024; // plf-lint: allow(L3) — definition site

/// SIMD lane width of the kernels: 4 × `f32` per vector register (SPU
/// and host SSE, §3.2). Equal to the DNA state count, which is what
/// makes the one-pattern-per-register layout of Figure 3 work.
pub const SIMD_WIDTH: usize = 4;

/// Local Store capacity per SPE: 256 KB holding code, stack, control
/// structures, and all double-buffered data (§3.3).
pub const LS_BYTES: usize = 256 * 1024; // plf-lint: allow(L3) — definition site

// Geometry cross-checks: a DMA command moves whole aligned blocks, the
// Local Store holds whole DMA commands, and a SIMD vector of f32 lanes
// divides the alignment boundary.
const _: () = assert!(DMA_MAX_BYTES.is_multiple_of(CLV_ALIGN));
const _: () = assert!(LS_BYTES.is_multiple_of(DMA_MAX_BYTES));
const _: () = assert!(CLV_ALIGN.is_multiple_of(SIMD_WIDTH * std::mem::size_of::<f32>()));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::N_STATES;

    #[test]
    fn values_match_the_paper() {
        assert_eq!(CLV_ALIGN, 128);
        assert_eq!(DMA_MAX_BYTES, 16384);
        assert_eq!(LS_BYTES, 262_144);
        assert_eq!(SIMD_WIDTH, 4);
    }

    #[test]
    fn simd_width_covers_the_state_space() {
        // Figure 3's layout packs one 4-state array per SIMD register.
        assert_eq!(SIMD_WIDTH, N_STATES);
    }

    #[test]
    fn gamma4_pattern_is_dma_aligned() {
        // 16 f32 per pattern under Γ(4): whole patterns per 128-byte
        // block, so chunking on even pattern counts keeps DMA aligned.
        let bytes_per_pattern = 4 * N_STATES * std::mem::size_of::<f32>();
        assert_eq!(CLV_ALIGN % bytes_per_pattern, 0);
    }
}

//! # plf-phylo — the Phylogenetic Likelihood Function core
//!
//! Domain library for the ICPP 2009 reproduction: DNA substitution
//! models (GTR+Γ), unrooted binary trees, pattern-compressed alignments,
//! conditional likelihood vectors in the MrBayes memory layout, and the
//! three PLF kernels (`CondLikeDown`, `CondLikeRoot`, `CondLikeScaler`)
//! in scalar and 4-wide SIMD form.
//!
//! Parallel and simulated-hardware execution engines implement
//! [`kernels::PlfBackend`] and live in the sibling crates `plf-multicore`,
//! `plf-cellbe`, and `plf-gpu`.
//!
//! ```
//! use plf_phylo::prelude::*;
//!
//! let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
//! let aln = Alignment::from_strings(&[
//!     ("a", "ACGTACGT"),
//!     ("b", "ACGTACGA"),
//!     ("c", "ACGAACGT"),
//!     ("d", "ACTTACGT"),
//! ]).unwrap().compress();
//! let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
//! let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
//! let lnl = eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
//! assert!(lnl.is_finite() && lnl < 0.0);
//! ```

#![warn(missing_docs)]
// Fixed-size 4-state matrix math reads clearest with explicit indices;
// iterator adaptors would obscure the correspondence with the paper's
// formulas.
#![allow(clippy::needless_range_loop)]

pub mod alignment;
pub mod clv;
pub mod clv_cache;
pub mod constants;
pub mod dna;
pub mod fused;
pub mod incremental;
pub mod io;
pub mod kernels;
pub mod likelihood;
pub mod metrics;
pub mod model;
pub mod oracle;
pub mod partition;
pub mod resilience;
pub mod tree;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::alignment::{Alignment, PatternAlignment};
    pub use crate::clv::{Clv, TransitionMatrices};
    pub use crate::clv_cache::{
        model_fingerprint, subtree_fingerprints, CacheEntry, CacheStats, ClvCache,
    };
    pub use crate::constants::{CLV_ALIGN, DMA_MAX_BYTES, LS_BYTES, SIMD_WIDTH};
    pub use crate::dna::{Nucleotide, StateMask, N_STATES};
    pub use crate::fused::{evaluate_fused, FusedJob};
    pub use crate::kernels::plan::{PlfOp, PlfPlan};
    pub use crate::kernels::{
        FusedDown, FusedRoot, FusedScale, PlfBackend, ScalarBackend, Simd4Backend, SimdSchedule,
    };
    pub use crate::incremental::IncrementalLikelihood;
    pub use crate::likelihood::TreeLikelihood;
    pub use crate::metrics::{Kernel, KernelTimer, MetricsSnapshot, PlfCounters};
    pub use crate::model::{GtrParams, SiteModel};
    pub use crate::partition::{by_codon_position, by_gene_blocks, Partition, PartitionedLikelihood};
    pub use crate::resilience::{
        CorruptionKind, FaultEnvError, FaultInjector, FaultSite, PlfError, ResilienceReport,
        ResilientBackend, RetryPolicy,
    };
    pub use crate::tree::{Node, NodeId, Tree};
}

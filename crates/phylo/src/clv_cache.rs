//! BEAGLE-style CLV reuse cache keyed on subtree fingerprints.
//!
//! Repeated evaluations of near-identical trees — the MCMC proposal
//! pattern, and the dominant shape of batched service traffic — share
//! most of their subtrees. A node's conditional likelihood vector is a
//! pure function of (dataset, subtree topology, branch lengths, model
//! parameters), so a CLV computed once can be replayed for any later
//! evaluation whose subtree *fingerprint* matches, skipping the whole
//! `CondLikeDown` for that node.
//!
//! **Fingerprint definition.** Computed bottom-up over the evaluation
//! plan with a splitmix64-based mix (no dependencies, stable across
//! runs):
//!
//! * leaf: `mix(LEAF_TAG, dataset_token, fnv(taxon name))`
//! * internal (Down): `mix(DOWN_TAG, fp(left), bits(branch_left),
//!   fp(right), bits(branch_right), model_fp, scaled?)`
//! * root (Root): like Down over the 2–3 children meeting at the
//!   virtual root, tagged `ROOT_TAG`
//!
//! `model_fp` hashes the GTR exchangeabilities, base frequencies, Γ
//! shape, per-category rates, `pinvar`, and the rate-category count;
//! `dataset_token` is a caller-supplied identity for the pattern
//! alignment (the plfd service uses its registered `DatasetId`, which
//! by construction names one immutable alignment). Branch lengths enter
//! as raw `f64` bit patterns, so *any* change to a branch changes the
//! fingerprint of every ancestor — that is the entire invalidation
//! rule; stale entries simply stop being addressed and age out FIFO.
//!
//! **Scaler replay.** A cached entry for a scaled node stores the
//! *post-scale* CLV plus the per-pattern `ln(max)` delta vector its
//! `CondLikeScaler` produced. On a hit the delta is added to the
//! evaluation's running scaler vector at the same plan position a fresh
//! scale would have been — the identical `f32` addition sequence, which
//! keeps cached evaluation bit-identical to fresh evaluation.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: it runs inside every
//! batched service evaluation, so it must be panic-free.

use crate::clv::Clv;
use crate::kernels::plan::{PlfOp, PlfPlan};
use crate::model::SiteModel;
use crate::tree::Tree;
use std::collections::{HashMap, VecDeque};

/// Domain-separation tags for the fingerprint mix.
const LEAF_TAG: u64 = 0x1eaf;
const DOWN_TAG: u64 = 0xd01;
const ROOT_TAG: u64 = 0x1007;

/// SplitMix64 finalizer: the fingerprint stream's mixing function.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `word` into the running fingerprint `acc`.
fn mix(acc: u64, word: u64) -> u64 {
    splitmix64(acc ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// FNV-1a over a byte string (taxon names).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the model parameters that determine CLV contents.
pub fn model_fingerprint(model: &SiteModel) -> u64 {
    let params = model.params();
    let mut h = mix(0x6d0d, model.n_rates() as u64);
    for &r in &params.rates {
        h = mix(h, r.to_bits());
    }
    for &f in &params.freqs {
        h = mix(h, f.to_bits());
    }
    h = mix(h, model.shape().to_bits());
    for &r in model.rates() {
        h = mix(h, r.to_bits());
    }
    mix(h, model.pinvar().to_bits())
}

/// Per-node subtree fingerprints for one evaluation of `plan` over
/// `tree`, indexed by `NodeId.0`. Entries are `None` for nodes the plan
/// never computes (tips have fingerprints — parents need them — but
/// only plan-computed internal nodes are cache keys; the boolean marks
/// whether the plan scales that node, which is part of its identity
/// because cached entries store post-scale values).
pub fn subtree_fingerprints(
    tree: &Tree,
    plan: &PlfPlan,
    model: &SiteModel,
    dataset_token: u64,
) -> Vec<Option<(u64, bool)>> {
    let n = tree.n_nodes();
    let mfp = model_fingerprint(model);
    // Which plan nodes get a Scale op (identity of the cached value).
    let mut scaled = vec![false; n];
    for op in plan.ops() {
        if let PlfOp::Scale { node } = op {
            if let Some(s) = scaled.get_mut(node.0) {
                *s = true;
            }
        }
    }
    let mut fp = vec![0u64; n];
    let mut out: Vec<Option<(u64, bool)>> = vec![None; n];
    // Leaves first: their fingerprints seed the bottom-up walk.
    for id in tree.node_ids() {
        let node = tree.node(id);
        if node.is_leaf() {
            let name = node.name.as_deref().unwrap_or("");
            fp[id.0] = mix(mix(mix(LEAF_TAG, dataset_token), fnv(name.as_bytes())), mfp);
        }
    }
    // Plan ops are postorder: children always precede parents.
    for op in plan.ops() {
        match op {
            PlfOp::Down { node, left, right } => {
                let mut h = mix(DOWN_TAG, mfp);
                h = mix(h, fp[left.0]);
                h = mix(h, tree.node(*left).branch.to_bits());
                h = mix(h, fp[right.0]);
                h = mix(h, tree.node(*right).branch.to_bits());
                h = mix(h, u64::from(scaled[node.0]));
                fp[node.0] = h;
                out[node.0] = Some((h, scaled[node.0]));
            }
            PlfOp::Root { node, children } => {
                let mut h = mix(ROOT_TAG, mfp);
                for &c in children {
                    h = mix(h, fp[c.0]);
                    h = mix(h, tree.node(c).branch.to_bits());
                }
                h = mix(h, u64::from(scaled[node.0]));
                fp[node.0] = h;
                out[node.0] = Some((h, scaled[node.0]));
            }
            PlfOp::Scale { .. } => {}
        }
    }
    out
}

/// A cached per-node likelihood value.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The node's CLV as the plan leaves it (post-scale if scaled).
    pub clv: Clv,
    /// For scaled nodes: the per-pattern `ln(max)` scaler delta the
    /// node's `CondLikeScaler` contributed; `None` for unscaled nodes.
    pub scale_delta: Option<Vec<f32>>,
}

/// Hit/miss/eviction counts since the last [`ClvCache::take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

/// Bounded FIFO cache of per-node CLVs keyed on subtree fingerprints.
///
/// FIFO (insertion-order) eviction keeps the hot set deterministic for
/// a given request stream, which the bit-identity tests rely on; an
/// entry's key encodes everything its value depends on, so there is no
/// explicit invalidation — superseded entries age out.
#[derive(Debug)]
pub struct ClvCache {
    map: HashMap<u64, CacheEntry>,
    order: VecDeque<u64>,
    max_entries: usize,
    stats: CacheStats,
}

impl ClvCache {
    /// An empty cache holding at most `max_entries` node CLVs
    /// (0 disables storage; lookups then always miss).
    pub fn new(max_entries: usize) -> ClvCache {
        ClvCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            max_entries,
            stats: CacheStats::default(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity bound (entries).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Look `fingerprint` up, counting a hit or miss.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<&CacheEntry> {
        match self.map.get(&fingerprint) {
            Some(entry) => {
                self.stats.hits += 1;
                Some(entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Like [`lookup`](ClvCache::lookup), but an absent entry is *not*
    /// counted as a miss. For re-polls of a fingerprint another job in
    /// the same fused call is already computing (intra-call dedup): the
    /// original lookup already recorded the miss, and counting every
    /// parked round again would make the miss rate meaningless.
    pub fn lookup_pending(&mut self, fingerprint: u64) -> Option<&CacheEntry> {
        match self.map.get(&fingerprint) {
            Some(entry) => {
                self.stats.hits += 1;
                Some(entry)
            }
            None => None,
        }
    }

    /// Insert a freshly computed node value, evicting the oldest
    /// entries as needed. Re-inserting an existing key refreshes the
    /// value without growing the cache.
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        if self.max_entries == 0 {
            return;
        }
        if self.map.insert(fingerprint, entry).is_none() {
            self.order.push_back(fingerprint);
        }
        while self.map.len() > self.max_entries {
            match self.order.pop_front() {
                Some(oldest) => {
                    if self.map.remove(&oldest).is_some() {
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }

    /// Drop every entry (counters are untouched).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Counter snapshot since the previous call, resetting the window —
    /// the plfd workers flush these deltas into `ServiceCounters` after
    /// every shard.
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Cumulative counters since the last [`ClvCache::take_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::model::GtrParams;

    fn setup() -> (Tree, SiteModel) {
        // Two independent internal nodes, so an edit under one leaves
        // the other's fingerprint untouched.
        let tree =
            Tree::from_newick("((a:0.1,b:0.2):0.05,(c:0.3,d:0.1):0.2,e:0.4);").unwrap();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        (tree, model)
    }

    #[test]
    fn fingerprints_are_deterministic_and_branch_sensitive() {
        let (tree, model) = setup();
        let plan = PlfPlan::for_tree(&tree, 1).unwrap();
        let a = subtree_fingerprints(&tree, &plan, &model, 7);
        let b = subtree_fingerprints(&tree, &plan, &model, 7);
        assert_eq!(a, b, "same inputs must give the same fingerprints");

        // Changing one leaf branch must change its parent (and the
        // root), but not unrelated subtrees.
        let mut t2 = tree.clone();
        let leaf = t2.leaves()[0];
        t2.node_mut(leaf).branch += 0.01;
        let c = subtree_fingerprints(&t2, &plan, &model, 7);
        assert_ne!(a, c);
        let changed: Vec<usize> = (0..a.len()).filter(|&i| a[i] != c[i]).collect();
        let unchanged: Vec<usize> = (0..a.len())
            .filter(|&i| a[i].is_some() && a[i] == c[i])
            .collect();
        assert!(!changed.is_empty(), "ancestors of the edit must change");
        assert!(
            !unchanged.is_empty(),
            "subtrees not containing the edit must keep their fingerprints"
        );
    }

    #[test]
    fn fingerprints_differ_across_models_and_datasets() {
        let (tree, model) = setup();
        let plan = PlfPlan::for_tree(&tree, 1).unwrap();
        let a = subtree_fingerprints(&tree, &plan, &model, 7);
        let b = subtree_fingerprints(&tree, &plan, &model, 8);
        assert_ne!(a, b, "dataset token must enter the fingerprint");
        let other = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.6).unwrap();
        let c = subtree_fingerprints(&tree, &plan, &other, 7);
        assert_ne!(a, c, "model parameters must enter the fingerprint");
    }

    #[test]
    fn scaled_flag_is_part_of_the_identity() {
        let (tree, model) = setup();
        let every = PlfPlan::for_tree(&tree, 1).unwrap();
        let never = PlfPlan::for_tree(&tree, 0).unwrap();
        let a = subtree_fingerprints(&tree, &every, &model, 7);
        let b = subtree_fingerprints(&tree, &never, &model, 7);
        assert_ne!(a, b, "scaling period changes what the cached value is");
    }

    #[test]
    fn fifo_eviction_respects_capacity_and_counts() {
        let aln = Alignment::from_strings(&[("a", "ACGT")]).unwrap().compress();
        let clv = Clv::tip(aln.taxon_patterns(0), 4);
        let mut cache = ClvCache::new(2);
        for k in 0..3u64 {
            cache.insert(
                k,
                CacheEntry {
                    clv: clv.clone(),
                    scale_delta: None,
                },
            );
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0).is_none(), "oldest entry evicted first");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(2).is_some());
        let stats = cache.take_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.take_stats(), CacheStats::default());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let aln = Alignment::from_strings(&[("a", "ACGT")]).unwrap().compress();
        let clv = Clv::tip(aln.taxon_patterns(0), 4);
        let mut cache = ClvCache::new(0);
        cache.insert(
            1,
            CacheEntry {
                clv,
                scale_delta: None,
            },
        );
        assert!(cache.is_empty());
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.stats().misses, 1);
    }
}

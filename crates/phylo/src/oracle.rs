//! An independent, obviously-correct likelihood oracle.
//!
//! Direct Felsenstein pruning in `f64`, recomputed per site with no
//! pattern compression, no CLV reuse, no rescaling, no SIMD — nothing
//! shared with the production pipeline except the model types. Tests
//! cross-validate the fast `f32` kernels against it; any systematic bug
//! in the kernel pipeline (layout, scaling, mixture weights, +I
//! handling) would show up as a divergence here.

use crate::alignment::PatternAlignment;
use crate::dna::N_STATES;
use crate::model::SiteModel;
use crate::tree::{NodeId, Tree};
use std::collections::HashMap;

/// Per-node partial likelihood for one site and one rate category.
fn partial(
    tree: &Tree,
    node: NodeId,
    site_states: &HashMap<NodeId, u8>,
    mats: &HashMap<NodeId, [[f64; 4]; 4]>,
) -> [f64; 4] {
    let n = tree.node(node);
    if n.is_leaf() {
        let mask = site_states[&node];
        std::array::from_fn(|s| if mask & (1 << s) != 0 { 1.0 } else { 0.0 })
    } else {
        let mut acc = [1.0f64; 4];
        for &child in &n.children {
            let down = partial(tree, child, site_states, mats);
            let p = &mats[&child];
            for s in 0..N_STATES {
                let mut sum = 0.0;
                for (j, d) in down.iter().enumerate() {
                    sum += p[s][j] * d;
                }
                acc[s] *= sum;
            }
        }
        acc
    }
}

/// Compute the tree log-likelihood by brute force: per original site
/// (expanding pattern weights), per rate category, fresh recursion.
///
/// Exponentially slower than the production path — use on small inputs
/// only.
pub fn naive_log_likelihood(tree: &Tree, data: &PatternAlignment, model: &SiteModel) -> f64 {
    let taxon_index: HashMap<&str, usize> = data
        .taxa()
        .iter()
        .enumerate()
        .map(|(i, t)| (t.as_str(), i))
        .collect();
    let leaf_taxon: HashMap<NodeId, usize> = tree
        .leaves()
        .into_iter()
        .map(|l| {
            let name = tree.node(l).name.as_deref().expect("leaves named");
            (l, taxon_index[name])
        })
        .collect();

    let n_rates = model.n_rates();
    let freqs = model.freqs();
    let pinvar = model.pinvar();
    // Per-category transition matrices per branch, f64.
    let mats_per_rate: Vec<HashMap<NodeId, [[f64; 4]; 4]>> = (0..n_rates)
        .map(|k| {
            tree.node_ids()
                .filter(|&id| id != tree.root())
                .map(|id| (id, model.transition_matrix_f64(tree.node(id).branch, k)))
                .collect()
        })
        .collect();
    let const_masks = data.constant_masks();

    let mut lnl = 0.0f64;
    for pattern in 0..data.n_patterns() {
        let site_states: HashMap<NodeId, u8> = leaf_taxon
            .iter()
            .map(|(&l, &t)| (l, data.taxon_patterns(t)[pattern].bits()))
            .collect();
        let mut gamma_mix = 0.0f64;
        for mats in &mats_per_rate {
            let root_partial = partial(tree, tree.root(), &site_states, mats);
            let mut site = 0.0;
            for (s, &f) in freqs.iter().enumerate() {
                site += f * root_partial[s];
            }
            gamma_mix += site / n_rates as f64;
        }
        let inv_support: f64 = freqs
            .iter()
            .enumerate()
            .filter(|(s, _)| const_masks[pattern] & (1 << s) != 0)
            .map(|(_, &f)| f)
            .sum();
        let site_likelihood = pinvar * inv_support + (1.0 - pinvar) * gamma_mix;
        lnl += data.weights()[pattern] as f64 * site_likelihood.ln();
    }
    lnl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::kernels::{ScalarBackend, Simd4Backend};
    use crate::likelihood::TreeLikelihood;
    use crate::model::GtrParams;

    fn setup() -> (Tree, PatternAlignment) {
        let tree = Tree::from_newick(
            "(((a:0.12,b:0.07):0.05,(c:0.2,d:0.11):0.08):0.1,(e:0.09,f:0.31):0.06,g:0.22);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCR"),
            ("b", "ACGTACGTACGGCCTTAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCA"),
            ("d", "ACTTACGTAAGGCGTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGC-"),
            ("f", "ACGTTCGTAAGGCCTTAGCA"),
            ("g", "AGGTACGTAAGGCCTTNGCA"),
        ])
        .unwrap()
        .compress();
        (tree, aln)
    }

    fn check(model: SiteModel) {
        let (tree, aln) = setup();
        let oracle = naive_log_likelihood(&tree, &aln, &model);
        let mut fast = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let got = fast.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let tol = oracle.abs() * 1e-5 + 1e-3; // f32 kernels vs f64 oracle
        assert!((got - oracle).abs() < tol, "fast {got} vs oracle {oracle}");
        let mut simd = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let got2 = simd
            .log_likelihood(&tree, &mut Simd4Backend::col_wise())
            .unwrap();
        assert!((got2 - oracle).abs() < tol);
    }

    #[test]
    fn oracle_agrees_jc69() {
        check(SiteModel::jc69());
    }

    #[test]
    fn oracle_agrees_gtr_gamma() {
        check(
            SiteModel::gtr_gamma4(
                GtrParams::gtr([1.2, 3.9, 0.9, 1.1, 4.5, 1.0], [0.3, 0.21, 0.24, 0.25]),
                0.4,
            )
            .unwrap(),
        );
    }

    #[test]
    fn oracle_agrees_with_invariable_sites() {
        check(
            SiteModel::gtr_gamma4(GtrParams::hky85(2.5, [0.35, 0.15, 0.2, 0.3]), 0.7)
                .unwrap()
                .with_pinvar(0.3)
                .unwrap(),
        );
    }

    #[test]
    fn oracle_agrees_single_rate() {
        check(
            SiteModel::new(GtrParams::k80(3.0), 1.0, 1)
                .unwrap()
                .with_pinvar(0.1)
                .unwrap(),
        );
    }

    #[test]
    fn oracle_agrees_on_rooted_anchor() {
        // Degree-2 root exercises the Root2 path.
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.07,(c:0.15,d:0.05):0.12);").unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTAC"),
            ("b", "ACGTAA"),
            ("c", "ACGTCC"),
            ("d", "ATGTAC"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.9).unwrap();
        let oracle = naive_log_likelihood(&tree, &aln, &model);
        let mut fast = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let got = fast.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!((got - oracle).abs() < oracle.abs() * 1e-5 + 1e-3);
    }
}

//! The General Time-Reversible (GTR) model of nucleotide substitution and
//! its named special cases (JC69, K80, HKY85).
//!
//! The instantaneous rate matrix `Q` (Figure 2 of the paper) is built from
//! six symmetric exchangeability parameters and four stationary base
//! frequencies, and normalized so that one unit of branch length equals one
//! expected substitution per site — the same convention as MrBayes.

use crate::dna::N_STATES;

/// Errors arising from invalid model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An exchangeability rate was zero, negative, or non-finite.
    BadRate(f64),
    /// A base frequency was non-positive or non-finite.
    BadFrequency(f64),
    /// Base frequencies did not sum to 1 (beyond tolerance).
    FrequenciesNotNormalized(f64),
    /// The Γ shape parameter was non-positive or non-finite.
    BadShape(f64),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadRate(r) => write!(f, "invalid exchangeability rate {r}"),
            ModelError::BadFrequency(p) => write!(f, "invalid base frequency {p}"),
            ModelError::FrequenciesNotNormalized(s) => {
                write!(f, "base frequencies sum to {s}, expected 1")
            }
            ModelError::BadShape(a) => write!(f, "invalid gamma shape {a}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Index of the rate between an (unordered) state pair in the 6-element
/// exchangeability vector: AC, AG, AT, CG, CT, GT.
#[inline]
pub fn pair_index(i: usize, j: usize) -> usize {
    debug_assert!(i != j && i < N_STATES && j < N_STATES);
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    match (a, b) {
        (0, 1) => 0, // A-C
        (0, 2) => 1, // A-G
        (0, 3) => 2, // A-T
        (1, 2) => 3, // C-G
        (1, 3) => 4, // C-T
        (2, 3) => 5, // G-T
        _ => unreachable!(),
    }
}

/// GTR model parameters: six exchangeabilities and four base frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct GtrParams {
    /// Exchangeability rates in order AC, AG, AT, CG, CT, GT.
    pub rates: [f64; 6],
    /// Stationary frequencies πA, πC, πG, πT (must sum to 1).
    pub freqs: [f64; 4],
}

impl GtrParams {
    /// Jukes-Cantor 1969: equal rates, equal frequencies.
    pub fn jc69() -> GtrParams {
        GtrParams {
            rates: [1.0; 6],
            freqs: [0.25; 4],
        }
    }

    /// Kimura 1980: transition/transversion ratio `kappa`, equal frequencies.
    pub fn k80(kappa: f64) -> GtrParams {
        GtrParams {
            rates: [1.0, kappa, 1.0, 1.0, kappa, 1.0],
            freqs: [0.25; 4],
        }
    }

    /// HKY85: transition/transversion ratio `kappa` with arbitrary
    /// frequencies.
    pub fn hky85(kappa: f64, freqs: [f64; 4]) -> GtrParams {
        GtrParams {
            rates: [1.0, kappa, 1.0, 1.0, kappa, 1.0],
            freqs,
        }
    }

    /// Fully general GTR.
    pub fn gtr(rates: [f64; 6], freqs: [f64; 4]) -> GtrParams {
        GtrParams { rates, freqs }
    }

    /// Validate parameters: all rates positive and finite, frequencies
    /// positive and summing to one within `1e-6`.
    pub fn validate(&self) -> Result<(), ModelError> {
        for &r in &self.rates {
            if !(r.is_finite() && r > 0.0) {
                return Err(ModelError::BadRate(r));
            }
        }
        let mut sum = 0.0;
        for &p in &self.freqs {
            if !(p.is_finite() && p > 0.0) {
                return Err(ModelError::BadFrequency(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::FrequenciesNotNormalized(sum));
        }
        Ok(())
    }

    /// Return a copy with frequencies rescaled to sum to exactly one.
    pub fn normalized(&self) -> GtrParams {
        let sum: f64 = self.freqs.iter().sum();
        let mut out = self.clone();
        for p in &mut out.freqs {
            *p /= sum;
        }
        out
    }
}

/// A normalized instantaneous rate matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct QMatrix {
    /// Row-major rate matrix; rows sum to zero.
    pub q: [[f64; 4]; 4],
    /// The stationary frequencies the matrix was built with.
    pub freqs: [f64; 4],
}

impl QMatrix {
    /// Build the normalized Q matrix for the given parameters:
    /// `Q[i][j] = s(i,j) * π_j` for `i != j`, diagonal set so rows sum to
    /// zero, then globally scaled so `-Σ_i π_i Q[i][i] = 1`.
    pub fn build(params: &GtrParams) -> Result<QMatrix, ModelError> {
        params.validate()?;
        let mut q = [[0.0f64; 4]; 4];
        for i in 0..N_STATES {
            let mut row_sum = 0.0;
            for j in 0..N_STATES {
                if i != j {
                    q[i][j] = params.rates[pair_index(i, j)] * params.freqs[j];
                    row_sum += q[i][j];
                }
            }
            q[i][i] = -row_sum;
        }
        // Normalize to one expected substitution per unit time.
        let mut mu = 0.0;
        for i in 0..N_STATES {
            mu -= params.freqs[i] * q[i][i];
        }
        for row in &mut q {
            for v in row.iter_mut() {
                *v /= mu;
            }
        }
        Ok(QMatrix {
            q,
            freqs: params.freqs,
        })
    }

    /// Expected substitution rate `-Σ_i π_i Q_ii`; 1.0 after normalization.
    pub fn mean_rate(&self) -> f64 {
        -(0..N_STATES).map(|i| self.freqs[i] * self.q[i][i]).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_symmetric_and_complete() {
        let mut seen = [false; 6];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    let k = pair_index(i, j);
                    assert_eq!(k, pair_index(j, i));
                    seen[k] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn jc69_q_matrix() {
        let q = QMatrix::build(&GtrParams::jc69()).unwrap();
        // JC69 normalized: off-diagonal 1/3, diagonal -1.
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    assert!((q.q[i][j] + 1.0).abs() < 1e-12);
                } else {
                    assert!((q.q[i][j] - 1.0 / 3.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn rows_sum_to_zero() {
        let params = GtrParams::gtr([1.2, 3.1, 0.4, 0.9, 4.0, 1.0], [0.3, 0.2, 0.15, 0.35]);
        let q = QMatrix::build(&params).unwrap();
        for row in &q.q {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12, "row sum {s}");
        }
    }

    #[test]
    fn mean_rate_is_one() {
        let params = GtrParams::hky85(2.5, [0.1, 0.4, 0.2, 0.3]);
        let q = QMatrix::build(&params).unwrap();
        assert!((q.mean_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detailed_balance_holds() {
        // Time reversibility: π_i Q_ij == π_j Q_ji.
        let params = GtrParams::gtr([0.5, 2.0, 0.3, 0.8, 3.5, 1.0], [0.28, 0.22, 0.26, 0.24]);
        let q = QMatrix::build(&params).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let lhs = params.freqs[i] * q.q[i][j];
                let rhs = params.freqs[j] * q.q[j][i];
                assert!((lhs - rhs).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = GtrParams::jc69();
        p.rates[2] = -1.0;
        assert!(matches!(p.validate(), Err(ModelError::BadRate(_))));

        let mut p = GtrParams::jc69();
        p.freqs = [0.5, 0.5, 0.5, 0.5];
        assert!(matches!(
            p.validate(),
            Err(ModelError::FrequenciesNotNormalized(_))
        ));

        let mut p = GtrParams::jc69();
        p.freqs[0] = 0.0;
        assert!(matches!(p.validate(), Err(ModelError::BadFrequency(_))));
    }

    #[test]
    fn normalized_fixes_frequency_sum() {
        let p = GtrParams::gtr([1.0; 6], [1.0, 2.0, 3.0, 4.0]).normalized();
        assert!(p.validate().is_ok());
        assert!((p.freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}

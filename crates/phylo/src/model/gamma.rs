//! Discrete Γ-distributed among-site rate variation (Yang, 1994).
//!
//! The paper's Γ model uses 4 discrete rate categories `r0..r3` of equal
//! probability; every conditional-likelihood element therefore holds
//! 4 × 4 = 16 floats (Figure 3). The category rates are the means of the
//! K equal-probability slices of a Gamma(α, α) density (mean 1), computed
//! from the regularized incomplete gamma function and its quantile.

use super::gtr::ModelError;

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 over the positive reals, which far exceeds what the
/// discretization needs.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x), then P = 1 - Q (modified Lentz).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

/// Quantile of the Gamma(shape `a`, rate `beta`) distribution: the `x`
/// with `P(a, beta * x) = p`.
///
/// Wilson–Hilferty initial guess refined by Newton iterations on the
/// regularized incomplete gamma; bisection fallback keeps it inside the
/// bracket.
pub fn gamma_quantile(p: f64, a: f64, beta: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "quantile needs p in [0,1), got {p}");
    assert!(a > 0.0 && beta > 0.0);
    if p == 0.0 {
        return 0.0;
    }
    // Wilson–Hilferty: chi2_df quantile ≈ df (1 - 2/(9 df) + z sqrt(2/(9 df)))^3
    let df = 2.0 * a;
    let z = normal_quantile(p);
    let g = 2.0 / (9.0 * df);
    let mut x = df * (1.0 - g + z * g.sqrt()).powi(3) / 2.0; // gamma(shape a, rate 1)
    if x <= 0.0 {
        x = (p * a * ln_gamma(a).exp()).powf(1.0 / a).max(1e-10);
    }
    // Newton on F(x) = gamma_p(a, x) - p;  F'(x) = x^{a-1} e^{-x} / Γ(a).
    let (mut lo, mut hi) = (0.0f64, f64::MAX);
    for _ in 0..100 {
        let f = gamma_p(a, x) - p;
        if f > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        if f.abs() < 1e-14 {
            break;
        }
        let ln_pdf = (a - 1.0) * x.ln() - x - ln_gamma(a);
        let step = f / ln_pdf.exp();
        let mut next = x - step;
        if next <= lo || next >= hi {
            next = if hi.is_finite() { 0.5 * (lo + hi) } else { x * 2.0 };
        }
        if (next - x).abs() < 1e-15 * x.max(1.0) {
            x = next;
            break;
        }
        x = next;
    }
    x / beta
}

/// Quantile of the standard normal distribution (Acklam's rational
/// approximation, |ε| < 1.15e-9 — only used to seed Newton iterations).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p) && p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Mean rates of the `k` equal-probability categories of a Gamma(α, α)
/// distribution (Yang 1994, "mean" discretization — the MrBayes default).
///
/// The rates average to 1, so rate variation never changes the expected
/// number of substitutions.
pub fn discrete_gamma_rates(alpha: f64, k: usize) -> Result<Vec<f64>, ModelError> {
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err(ModelError::BadShape(alpha));
    }
    assert!(k >= 1, "need at least one rate category");
    if k == 1 {
        return Ok(vec![1.0]);
    }
    // Category boundaries: quantiles of Gamma(α, α) at i/k.
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0.0);
    for i in 1..k {
        bounds.push(gamma_quantile(i as f64 / k as f64, alpha, alpha));
    }
    bounds.push(f64::INFINITY);
    // E[X · 1{a<X<b}] for X ~ Gamma(α, α) equals F_{α+1,α}(b) − F_{α+1,α}(a)
    // (the mean of the distribution is 1). Each slice has mass 1/k, so the
    // conditional mean is k times the slice integral.
    let cdf_a1 = |x: f64| {
        if x.is_infinite() {
            1.0
        } else {
            gamma_p(alpha + 1.0, alpha * x)
        }
    };
    let mut rates = Vec::with_capacity(k);
    for i in 0..k {
        rates.push(k as f64 * (cdf_a1(bounds[i + 1]) - cdf_a1(bounds[i])));
    }
    // Renormalize the (tiny) discretization residue so the mean is exactly 1.
    let mean: f64 = rates.iter().sum::<f64>() / k as f64;
    for r in &mut rates {
        *r /= mean;
    }
    Ok(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(2.0, 1e6) - 1.0).abs() < 1e-12);
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_is_monotone() {
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.05;
            let v = gamma_p(1.7, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &a in &[0.2, 0.5, 1.0, 2.0, 7.3] {
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = gamma_quantile(p, a, a);
                assert!(
                    (gamma_p(a, a * x) - p).abs() < 1e-9,
                    "a={a} p={p} x={x} P={}",
                    gamma_p(a, a * x)
                );
            }
        }
    }

    #[test]
    fn normal_quantile_symmetry() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.2) + normal_quantile(0.8)).abs() < 1e-9);
    }

    #[test]
    fn discrete_rates_mean_one_and_increasing() {
        for &alpha in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            for &k in &[2usize, 4, 8] {
                let r = discrete_gamma_rates(alpha, k).unwrap();
                assert_eq!(r.len(), k);
                let mean = r.iter().sum::<f64>() / k as f64;
                assert!((mean - 1.0).abs() < 1e-10, "alpha={alpha} k={k} mean={mean}");
                for w in r.windows(2) {
                    assert!(w[0] < w[1], "rates not increasing: {r:?}");
                }
                assert!(r[0] > 0.0);
            }
        }
    }

    #[test]
    fn discrete_rates_match_yang_published() {
        // Yang (1994) Table 1 style check: alpha=0.5, K=4 mean rates.
        // Reference values computed with PAML's DiscreteGamma (mean variant):
        let r = discrete_gamma_rates(0.5, 4).unwrap();
        let expect = [0.033_388, 0.251_916, 0.820_268, 2.894_428];
        for (a, b) in r.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 2e-4, "got {r:?}, expected {expect:?}");
        }
    }

    #[test]
    fn single_category_is_rate_one() {
        assert_eq!(discrete_gamma_rates(0.7, 1).unwrap(), vec![1.0]);
    }

    #[test]
    fn bad_shape_rejected() {
        assert!(discrete_gamma_rates(0.0, 4).is_err());
        assert!(discrete_gamma_rates(f64::NAN, 4).is_err());
        assert!(discrete_gamma_rates(-1.0, 4).is_err());
    }

    #[test]
    fn high_alpha_approaches_uniform_rates() {
        let r = discrete_gamma_rates(1e4, 4).unwrap();
        for &v in &r {
            assert!((v - 1.0).abs() < 0.05, "rates {r:?}");
        }
    }
}

//! Eigendecomposition of the GTR rate matrix and computation of the
//! transition-probability matrix `P(t) = e^{Qt}`.
//!
//! A time-reversible `Q` is similar to the symmetric matrix
//! `B = Π^{1/2} Q Π^{-1/2}` (with `Π = diag(π)`), so we diagonalize `B`
//! with a cyclic Jacobi sweep — small, dependency-free, and numerically
//! robust for 4×4 — and recover
//! `P(t) = Π^{-1/2} U e^{Λt} Uᵀ Π^{1/2}`.

use super::gtr::QMatrix;
use crate::dna::N_STATES;

/// Symmetric Jacobi eigendecomposition of an `n x n` matrix (here 4×4).
///
/// Returns `(eigenvalues, eigenvectors)` where column `k` of the returned
/// matrix is the eigenvector for eigenvalue `k`.
fn jacobi_eigen(mut a: [[f64; 4]; 4]) -> ([f64; 4], [[f64; 4]; 4]) {
    let n = N_STATES;
    let mut v = [[0.0f64; 4]; 4];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..64 {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-30 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides of `a`.
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut vals = [0.0f64; 4];
    for i in 0..n {
        vals[i] = a[i][i];
    }
    (vals, v)
}

/// Precomputed eigensystem of a normalized GTR rate matrix.
///
/// With it, a transition matrix for any branch length costs only 4
/// exponentials and a pair of small matrix products, which is how every
/// ML/Bayesian phylogenetics code (MrBayes included) amortizes `e^{Qt}`.
#[derive(Debug, Clone)]
pub struct EigenSystem {
    /// Eigenvalues of Q (all ≤ 0; one is 0 for the stationary direction).
    pub eigenvalues: [f64; 4],
    /// `Π^{-1/2} U` — maps eigenbasis back to state space.
    pub right: [[f64; 4]; 4],
    /// `Uᵀ Π^{1/2}` — maps state space to eigenbasis.
    pub left: [[f64; 4]; 4],
    /// Stationary frequencies.
    pub freqs: [f64; 4],
}

impl EigenSystem {
    /// Decompose a (normalized, time-reversible) rate matrix.
    pub fn new(q: &QMatrix) -> EigenSystem {
        let pi = q.freqs;
        let sqrt_pi: Vec<f64> = pi.iter().map(|p| p.sqrt()).collect();
        // B = Π^{1/2} Q Π^{-1/2}, symmetric by detailed balance.
        let mut b = [[0.0f64; 4]; 4];
        for i in 0..N_STATES {
            for j in 0..N_STATES {
                b[i][j] = sqrt_pi[i] * q.q[i][j] / sqrt_pi[j];
            }
        }
        // Force exact symmetry against rounding before Jacobi.
        for i in 0..N_STATES {
            for j in (i + 1)..N_STATES {
                let m = 0.5 * (b[i][j] + b[j][i]);
                b[i][j] = m;
                b[j][i] = m;
            }
        }
        let (vals, u) = jacobi_eigen(b);
        let mut right = [[0.0f64; 4]; 4];
        let mut left = [[0.0f64; 4]; 4];
        for i in 0..N_STATES {
            for k in 0..N_STATES {
                right[i][k] = u[i][k] / sqrt_pi[i];
                left[k][i] = u[i][k] * sqrt_pi[i];
            }
        }
        EigenSystem {
            eigenvalues: vals,
            right,
            left,
            freqs: pi,
        }
    }

    /// Transition-probability matrix `P(t) = e^{Qt}` in double precision.
    ///
    /// Negative `t` is clamped to zero (a zero-length branch), matching the
    /// defensive behaviour of production likelihood kernels.
    pub fn transition_matrix_f64(&self, t: f64) -> [[f64; 4]; 4] {
        let t = t.max(0.0);
        let exps: [f64; 4] = std::array::from_fn(|k| (self.eigenvalues[k] * t).exp());
        let mut p = [[0.0f64; 4]; 4];
        for i in 0..N_STATES {
            for j in 0..N_STATES {
                let mut acc = 0.0;
                for k in 0..N_STATES {
                    acc += self.right[i][k] * exps[k] * self.left[k][j];
                }
                // Clamp tiny negative values produced by rounding.
                p[i][j] = if acc < 0.0 && acc > -1e-12 { 0.0 } else { acc };
            }
        }
        p
    }

    /// Transition matrix cast to the single-precision layout used by the
    /// PLF kernels (MrBayes computes the PLF in `f32`).
    pub fn transition_matrix(&self, t: f64) -> [[f32; 4]; 4] {
        let p = self.transition_matrix_f64(t);
        std::array::from_fn(|i| std::array::from_fn(|j| p[i][j] as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gtr::GtrParams;

    fn sample_q() -> QMatrix {
        QMatrix::build(&GtrParams::gtr(
            [0.9, 2.7, 0.4, 1.1, 3.2, 1.0],
            [0.31, 0.19, 0.23, 0.27],
        ))
        .unwrap()
    }

    #[test]
    fn p_zero_is_identity() {
        let es = EigenSystem::new(&sample_q());
        let p = es.transition_matrix_f64(0.0);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - expect).abs() < 1e-10, "p[{i}][{j}] = {}", p[i][j]);
            }
        }
    }

    #[test]
    fn rows_are_stochastic() {
        let es = EigenSystem::new(&sample_q());
        for &t in &[0.001, 0.05, 0.3, 1.0, 5.0, 50.0] {
            let p = es.transition_matrix_f64(t);
            for (i, row) in p.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "t={t} row {i} sums to {s}");
                for (j, &v) in row.iter().enumerate() {
                    assert!((-1e-12..=1.0 + 1e-9).contains(&v), "p[{i}][{j}]={v} at t={t}");
                }
            }
        }
    }

    #[test]
    fn long_branches_converge_to_stationary() {
        let q = sample_q();
        let es = EigenSystem::new(&q);
        let p = es.transition_matrix_f64(500.0);
        for row in &p {
            for j in 0..4 {
                assert!((row[j] - q.freqs[j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(s+t) == P(s) P(t)
        let es = EigenSystem::new(&sample_q());
        let (s, t) = (0.17, 0.42);
        let ps = es.transition_matrix_f64(s);
        let pt = es.transition_matrix_f64(t);
        let pst = es.transition_matrix_f64(s + t);
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += ps[i][k] * pt[k][j];
                }
                assert!((acc - pst[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn one_eigenvalue_is_zero_rest_negative() {
        let es = EigenSystem::new(&sample_q());
        let mut vals = es.eigenvalues;
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(vals[3].abs() < 1e-10, "largest eigenvalue {}", vals[3]);
        for &v in &vals[..3] {
            assert!(v < -1e-6, "non-stationary eigenvalue {v} not negative");
        }
    }

    #[test]
    fn negative_branch_clamped_to_zero() {
        let es = EigenSystem::new(&sample_q());
        assert_eq!(
            es.transition_matrix_f64(-3.0),
            es.transition_matrix_f64(0.0)
        );
    }

    #[test]
    fn expected_substitutions_match_branch_length_for_small_t() {
        // For normalized Q, Σ_i π_i (1 - P_ii(t)) ≈ t as t → 0.
        let q = sample_q();
        let es = EigenSystem::new(&q);
        let t = 1e-4;
        let p = es.transition_matrix_f64(t);
        let mut subs = 0.0;
        for i in 0..4 {
            subs += q.freqs[i] * (1.0 - p[i][i]);
        }
        assert!((subs - t).abs() < t * 0.01, "subs={subs} t={t}");
    }
}

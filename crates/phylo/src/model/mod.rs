//! Statistical models of sequence evolution: GTR substitution model,
//! eigendecomposition for `P(t) = e^{Qt}`, and discrete-Γ rate variation.

pub mod eigen;
pub mod gamma;
pub mod gtr;

pub use eigen::EigenSystem;
pub use gamma::{discrete_gamma_rates, gamma_p, gamma_quantile, ln_gamma};
pub use gtr::{GtrParams, ModelError, QMatrix};

use crate::clv::TransitionMatrices;

/// A complete site model: GTR parameters plus discrete-Γ rate variation.
///
/// This is what the paper calls the "GTR+Γ model"; the default of four
/// rate categories gives the 16-float likelihood-vector elements of
/// Figure 3.
#[derive(Debug, Clone)]
pub struct SiteModel {
    params: GtrParams,
    shape: f64,
    rates: Vec<f64>,
    eigen: EigenSystem,
    pinvar: f64,
}

impl SiteModel {
    /// Build a GTR+Γ site model with `n_rates` discrete categories
    /// (no invariable-sites class; see [`SiteModel::with_pinvar`]).
    pub fn new(params: GtrParams, shape: f64, n_rates: usize) -> Result<SiteModel, ModelError> {
        let q = QMatrix::build(&params)?;
        let rates = discrete_gamma_rates(shape, n_rates)?;
        Ok(SiteModel {
            eigen: EigenSystem::new(&q),
            params,
            shape,
            rates,
            pinvar: 0.0,
        })
    }

    /// Add a proportion of invariable sites (the MrBayes `+I` extension:
    /// with probability `pinvar` a site cannot change at all). Valid
    /// range `0 <= pinvar < 1`.
    pub fn with_pinvar(mut self, pinvar: f64) -> Result<SiteModel, ModelError> {
        if !(pinvar.is_finite() && (0.0..1.0).contains(&pinvar)) {
            return Err(ModelError::BadShape(pinvar));
        }
        self.pinvar = pinvar;
        Ok(self)
    }

    /// Proportion of invariable sites (0 without `+I`).
    pub fn pinvar(&self) -> f64 {
        self.pinvar
    }

    /// GTR+Γ(4) — the configuration the paper benchmarks.
    pub fn gtr_gamma4(params: GtrParams, shape: f64) -> Result<SiteModel, ModelError> {
        SiteModel::new(params, shape, 4)
    }

    /// JC69 with uniform rates — the simplest sanity-check model.
    pub fn jc69() -> SiteModel {
        SiteModel::new(GtrParams::jc69(), 1.0, 1).expect("JC69 parameters are always valid")
    }

    /// The model's GTR parameters.
    pub fn params(&self) -> &GtrParams {
        &self.params
    }

    /// The Γ shape parameter α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Per-category relative rates (mean 1).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of discrete rate categories.
    pub fn n_rates(&self) -> usize {
        self.rates.len()
    }

    /// Stationary base frequencies.
    pub fn freqs(&self) -> [f64; 4] {
        self.params.freqs
    }

    /// The precomputed eigensystem.
    pub fn eigen(&self) -> &EigenSystem {
        &self.eigen
    }

    /// Per-rate-category transition matrices for a branch of length `t`:
    /// category `k` gets `P(t · r_k)`.
    pub fn transition_matrices(&self, t: f64) -> TransitionMatrices {
        TransitionMatrices::from_mats(
            self.rates
                .iter()
                .map(|&r| self.eigen.transition_matrix(t * r))
                .collect(),
        )
    }

    /// Double-precision transition matrix for one rate category (used by
    /// the sequence simulator, which does not need the f32 kernel layout).
    pub fn transition_matrix_f64(&self, t: f64, category: usize) -> [[f64; 4]; 4] {
        self.eigen.transition_matrix_f64(t * self.rates[category])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtr_gamma4_has_four_categories() {
        let m = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        assert_eq!(m.n_rates(), 4);
        assert_eq!(m.transition_matrices(0.1).n_rates(), 4);
    }

    #[test]
    fn category_matrices_differ_by_rate() {
        let m = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let tm = m.transition_matrices(0.1);
        // Slow category stays closer to identity than fast category.
        let diag_slow = tm.rate(0)[0][0];
        let diag_fast = tm.rate(3)[0][0];
        assert!(diag_slow > diag_fast);
    }

    #[test]
    fn pinvar_validation() {
        let m = SiteModel::jc69();
        assert!(m.clone().with_pinvar(0.0).is_ok());
        assert!(m.clone().with_pinvar(0.5).is_ok());
        assert!(m.clone().with_pinvar(1.0).is_err());
        assert!(m.clone().with_pinvar(-0.1).is_err());
        assert!(m.clone().with_pinvar(f64::NAN).is_err());
        assert_eq!(m.pinvar(), 0.0);
        assert_eq!(m.with_pinvar(0.3).unwrap().pinvar(), 0.3);
    }

    #[test]
    fn uniform_rates_give_identical_matrices() {
        let m = SiteModel::new(GtrParams::jc69(), 1.0, 1).unwrap();
        let tm = m.transition_matrices(0.25);
        assert_eq!(tm.n_rates(), 1);
        let p = m.eigen().transition_matrix(0.25);
        assert_eq!(tm.rate(0), &p);
    }
}

//! Multiple sequence alignments and site-pattern compression.
//!
//! The paper's experiments are parameterized by the number of *distinct
//! column patterns*: "identical alignment columns can be compressed into
//! column patterns under ML, which are then assigned a respective higher
//! per-pattern weight" (§4). [`PatternAlignment`] implements exactly that
//! compression; its pattern count is the length `m` of the PLF loops.

use crate::dna::StateMask;
use std::collections::HashMap;

/// Errors from alignment construction.
#[derive(Debug, Clone, PartialEq)]
pub enum AlignmentError {
    /// Sequences have differing lengths.
    RaggedRows {
        /// Expected row length (from the first row).
        expected: usize,
        /// Offending row's length.
        got: usize,
        /// Offending taxon.
        taxon: String,
    },
    /// A sequence character was not a valid IUPAC code.
    BadChar {
        /// Offending taxon.
        taxon: String,
        /// Site index of the bad character.
        site: usize,
        /// The character itself.
        ch: char,
    },
    /// No taxa or zero-length sequences.
    Empty,
    /// Duplicate taxon name.
    DuplicateTaxon(String),
}

impl std::fmt::Display for AlignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignmentError::RaggedRows { expected, got, taxon } => {
                write!(f, "taxon {taxon}: length {got}, expected {expected}")
            }
            AlignmentError::BadChar { taxon, site, ch } => {
                write!(f, "taxon {taxon}, site {site}: invalid character {ch:?}")
            }
            AlignmentError::Empty => write!(f, "empty alignment"),
            AlignmentError::DuplicateTaxon(t) => write!(f, "duplicate taxon {t}"),
        }
    }
}

impl std::error::Error for AlignmentError {}

/// An uncompressed multiple sequence alignment.
#[derive(Debug, Clone)]
pub struct Alignment {
    taxa: Vec<String>,
    /// `seqs[taxon][site]`.
    seqs: Vec<Vec<StateMask>>,
}

impl Alignment {
    /// Build from parallel vectors of names and already-encoded rows.
    pub fn new(taxa: Vec<String>, seqs: Vec<Vec<StateMask>>) -> Result<Alignment, AlignmentError> {
        if taxa.is_empty() || seqs.is_empty() || seqs[0].is_empty() {
            return Err(AlignmentError::Empty);
        }
        assert_eq!(taxa.len(), seqs.len(), "taxa/seqs length mismatch");
        let expected = seqs[0].len();
        let mut seen = std::collections::HashSet::new();
        for (t, s) in taxa.iter().zip(&seqs) {
            if s.len() != expected {
                return Err(AlignmentError::RaggedRows {
                    expected,
                    got: s.len(),
                    taxon: t.clone(),
                });
            }
            if !seen.insert(t.clone()) {
                return Err(AlignmentError::DuplicateTaxon(t.clone()));
            }
        }
        Ok(Alignment { taxa, seqs })
    }

    /// Build from textual rows of IUPAC characters.
    pub fn from_strings(rows: &[(&str, &str)]) -> Result<Alignment, AlignmentError> {
        let mut taxa = Vec::with_capacity(rows.len());
        let mut seqs = Vec::with_capacity(rows.len());
        for (name, seq) in rows {
            let mut row = Vec::with_capacity(seq.len());
            for (i, c) in seq.chars().enumerate() {
                row.push(StateMask::from_iupac(c).ok_or_else(|| AlignmentError::BadChar {
                    taxon: name.to_string(),
                    site: i,
                    ch: c,
                })?);
            }
            taxa.push(name.to_string());
            seqs.push(row);
        }
        Alignment::new(taxa, seqs)
    }

    /// Taxon names.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Number of sites (columns).
    pub fn n_sites(&self) -> usize {
        self.seqs[0].len()
    }

    /// Row for one taxon.
    pub fn row(&self, taxon: usize) -> &[StateMask] {
        &self.seqs[taxon]
    }

    /// One column as a vector of per-taxon masks.
    pub fn column(&self, site: usize) -> Vec<StateMask> {
        self.seqs.iter().map(|row| row[site]).collect()
    }

    /// Compress identical columns into weighted patterns.
    ///
    /// ```
    /// use plf_phylo::alignment::Alignment;
    /// let a = Alignment::from_strings(&[("x", "AAC"), ("y", "AAG")]).unwrap();
    /// let p = a.compress();
    /// assert_eq!(p.n_patterns(), 2);      // (A,A) twice + (C,G) once
    /// assert_eq!(p.weights(), &[2, 1]);
    /// ```
    pub fn compress(&self) -> PatternAlignment {
        let n_taxa = self.n_taxa();
        let n_sites = self.n_sites();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut patterns: Vec<Vec<StateMask>> = vec![Vec::new(); n_taxa];
        let mut weights: Vec<u32> = Vec::new();
        let mut site_to_pattern = Vec::with_capacity(n_sites);
        let mut key = Vec::with_capacity(n_taxa);
        for site in 0..n_sites {
            key.clear();
            key.extend(self.seqs.iter().map(|row| row[site].bits()));
            if let Some(&p) = index.get(&key) {
                weights[p] += 1;
                site_to_pattern.push(p);
            } else {
                let p = weights.len();
                index.insert(key.clone(), p);
                for (t, col) in patterns.iter_mut().enumerate() {
                    col.push(self.seqs[t][site]);
                }
                weights.push(1);
                site_to_pattern.push(p);
            }
        }
        PatternAlignment {
            taxa: self.taxa.clone(),
            patterns,
            weights,
            site_to_pattern,
            n_sites,
        }
    }
}

/// A pattern-compressed alignment: the input to the PLF.
#[derive(Debug, Clone)]
pub struct PatternAlignment {
    taxa: Vec<String>,
    /// `patterns[taxon][pattern]`.
    patterns: Vec<Vec<StateMask>>,
    /// Number of original columns represented by each pattern.
    weights: Vec<u32>,
    /// Pattern index of every original site.
    site_to_pattern: Vec<usize>,
    n_sites: usize,
}

impl PatternAlignment {
    /// Construct directly from per-taxon pattern rows and weights (used by
    /// the data-set generator, which synthesizes distinct patterns).
    pub fn from_patterns(
        taxa: Vec<String>,
        patterns: Vec<Vec<StateMask>>,
        weights: Vec<u32>,
    ) -> PatternAlignment {
        assert_eq!(taxa.len(), patterns.len());
        let m = patterns.first().map_or(0, |p| p.len());
        assert!(patterns.iter().all(|p| p.len() == m), "ragged pattern rows");
        assert_eq!(weights.len(), m);
        let n_sites = weights.iter().map(|&w| w as usize).sum();
        let mut site_to_pattern = Vec::with_capacity(n_sites);
        for (p, &w) in weights.iter().enumerate() {
            site_to_pattern.extend(std::iter::repeat_n(p, w as usize));
        }
        PatternAlignment {
            taxa,
            patterns,
            weights,
            site_to_pattern,
            n_sites,
        }
    }

    /// Taxon names.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Number of distinct patterns — the `m` of the paper's loops.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Number of original alignment columns.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Per-pattern multiplicities.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Pattern row for one taxon.
    pub fn taxon_patterns(&self, taxon: usize) -> &[StateMask] {
        &self.patterns[taxon]
    }

    /// Pattern index for an original site (for decompression checks).
    pub fn pattern_of_site(&self, site: usize) -> usize {
        self.site_to_pattern[site]
    }

    /// Per-pattern *constant-state* masks: bit `s` is set iff every taxon
    /// admits state `s` at that pattern — i.e. the pattern could have
    /// been produced by a site that never changed. This is the data-side
    /// ingredient of the `+I` (invariable sites) likelihood term.
    pub fn constant_masks(&self) -> Vec<u8> {
        (0..self.n_patterns())
            .map(|p| {
                self.patterns
                    .iter()
                    .fold(0b1111u8, |acc, row| acc & row[p].bits())
            })
            .collect()
    }

    /// Reconstruct the uncompressed alignment (site order preserved).
    pub fn decompress(&self) -> Alignment {
        let seqs = (0..self.n_taxa())
            .map(|t| {
                self.site_to_pattern
                    .iter()
                    .map(|&p| self.patterns[t][p])
                    .collect()
            })
            .collect();
        Alignment::new(self.taxa.clone(), seqs).expect("compressed alignment is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::Nucleotide;

    fn toy() -> Alignment {
        Alignment::from_strings(&[
            ("t1", "ACGTACGA"),
            ("t2", "ACGTACGC"),
            ("t3", "ACTTACTA"),
        ])
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let a = toy();
        assert_eq!(a.n_taxa(), 3);
        assert_eq!(a.n_sites(), 8);
    }

    #[test]
    fn compression_counts_duplicates() {
        // Columns: (A,A,A) (C,C,C) (G,G,T) (T,T,T) (A,A,A) (C,C,C) (G,G,T) (A,C,A)
        let pa = toy().compress();
        assert_eq!(pa.n_patterns(), 5);
        assert_eq!(pa.n_sites(), 8);
        assert_eq!(pa.weights().iter().sum::<u32>(), 8);
        // First pattern (A,A,A) appears twice.
        assert_eq!(pa.weights()[0], 2);
    }

    #[test]
    fn decompress_roundtrip() {
        let a = toy();
        let b = a.compress().decompress();
        assert_eq!(a.n_sites(), b.n_sites());
        for t in 0..a.n_taxa() {
            assert_eq!(a.row(t), b.row(t));
        }
    }

    #[test]
    fn all_unique_columns() {
        let a = Alignment::from_strings(&[("x", "ACGT"), ("y", "CAGT")]).unwrap();
        let pa = a.compress();
        assert_eq!(pa.n_patterns(), 4);
        assert!(pa.weights().iter().all(|&w| w == 1));
    }

    #[test]
    fn all_identical_columns() {
        let a = Alignment::from_strings(&[("x", "AAAA"), ("y", "CCCC")]).unwrap();
        let pa = a.compress();
        assert_eq!(pa.n_patterns(), 1);
        assert_eq!(pa.weights(), &[4]);
    }

    #[test]
    fn ambiguity_codes_distinguish_patterns() {
        let a = Alignment::from_strings(&[("x", "AN"), ("y", "AA")]).unwrap();
        assert_eq!(a.compress().n_patterns(), 2);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            Alignment::from_strings(&[("a", "ACG"), ("b", "AC")]),
            Err(AlignmentError::RaggedRows { .. })
        ));
        assert!(matches!(
            Alignment::from_strings(&[("a", "AZG")]),
            Err(AlignmentError::BadChar { .. })
        ));
        assert!(matches!(
            Alignment::from_strings(&[]),
            Err(AlignmentError::Empty)
        ));
        assert!(matches!(
            Alignment::from_strings(&[("a", "ACG"), ("a", "ACG")]),
            Err(AlignmentError::DuplicateTaxon(_))
        ));
    }

    #[test]
    fn constant_masks_detect_invariable_patterns() {
        let a = Alignment::from_strings(&[("x", "AACR-"), ("y", "ACAAC"), ("z", "AGAAT")])
            .unwrap()
            .compress();
        let masks = a.constant_masks();
        // Column 0 (A,A,A): constant in A. Column 1 (A,C,G): impossible.
        // Column 2 (C,A,A): impossible. Column 3 (R,A,A): R admits A ⇒
        // constant in A. Column 4 (-,C,T): gap admits all ⇒ no common
        // state between C and T.
        assert_eq!(masks[0], 0b0001);
        assert_eq!(masks[1], 0);
        assert_eq!(masks[2], 0);
        assert_eq!(masks[3], 0b0001);
        assert_eq!(masks[4], 0);
    }

    #[test]
    fn from_patterns_site_bookkeeping() {
        let taxa = vec!["a".into(), "b".into()];
        let pats = vec![
            vec![StateMask::of(Nucleotide::A), StateMask::of(Nucleotide::C)],
            vec![StateMask::of(Nucleotide::G), StateMask::of(Nucleotide::T)],
        ];
        let pa = PatternAlignment::from_patterns(taxa, pats, vec![3, 2]);
        assert_eq!(pa.n_sites(), 5);
        assert_eq!(pa.pattern_of_site(0), 0);
        assert_eq!(pa.pattern_of_site(3), 1);
        let a = pa.decompress();
        assert_eq!(a.n_sites(), 5);
        assert_eq!(a.compress().n_patterns(), 2);
    }
}

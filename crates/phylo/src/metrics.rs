//! Lightweight PLF observability: per-kernel counters, timers, and
//! transfer accounting.
//!
//! The paper's entire evaluation is instrumentation — Table 1's >85%
//! PLF share, the §4 scalability grids, Figure 12's PLF / Remaining /
//! PCIe breakdown. [`PlfCounters`] makes those numbers measurable in
//! this reproduction: a block of `AtomicU64` counters shared (via
//! `Arc`) between a harness and any number of backends, recording
//!
//! * per-kernel invocation counts, patterns processed, and wall time
//!   for `CondLikeDown` / `CondLikeRoot` / `CondLikeScaler`;
//! * underflow rescale events (patterns actually divided by their max);
//! * modeled transfer traffic — Cell/BE DMA commands (≤16 KB each) and
//!   GPU PCIe legs — in bytes, commands, and modeled seconds, plus the
//!   seconds hidden by double buffering;
//! * resilience events (same-tier retries, tier degradations);
//! * tree evaluations started.
//!
//! **Overhead budget.** The hot path takes no locks: recording one
//! kernel call is two `Instant::now()` reads and three relaxed
//! `fetch_add`s — tens of nanoseconds against kernels that process
//! thousands of patterns. Backends built without counters skip the
//! `fetch_add`s entirely and pay only the clock reads of an armed
//! [`KernelTimer`] whose `counters` is `None`.
//!
//! Counters are monotone; read a consistent view with
//! [`PlfCounters::snapshot`] and difference snapshots to meter an
//! interval.

// plf-lint: ordering(Relaxed) — every counter is an independent
// monotone statistic; no reader infers cross-counter happens-before
// from a snapshot, so Relaxed is the declared (and only permitted)
// ordering in this module. A stray SeqCst here is an L4 violation.
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The three PLF kernels the paper profiles (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `CondLikeDown` — combine two children.
    Down,
    /// `CondLikeRoot` — combine the subtrees at the virtual root.
    Root,
    /// `CondLikeScaler` — per-pattern underflow rescaling.
    Scale,
}

impl Kernel {
    /// All kernels, in Table 1 order.
    pub const ALL: [Kernel; 3] = [Kernel::Down, Kernel::Root, Kernel::Scale];

    fn index(self) -> usize {
        match self {
            Kernel::Down => 0,
            Kernel::Root => 1,
            Kernel::Scale => 2,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Down => "down",
            Kernel::Root => "root",
            Kernel::Scale => "scale",
        }
    }
}

#[derive(Debug, Default)]
struct KernelCell {
    invocations: AtomicU64,
    patterns: AtomicU64,
    nanos: AtomicU64,
}

/// Shared atomic counter block; see the module docs for what it records.
#[derive(Debug, Default)]
pub struct PlfCounters {
    kernels: [KernelCell; 3],
    rescaled_patterns: AtomicU64,
    evaluations: AtomicU64,
    transfer_bytes_in: AtomicU64,
    transfer_bytes_out: AtomicU64,
    transfer_commands: AtomicU64,
    transfer_nanos: AtomicU64,
    overlap_saved_nanos: AtomicU64,
    retries: AtomicU64,
    degradations: AtomicU64,
}

/// Modeled seconds, stored losslessly enough as integer nanoseconds.
fn to_nanos(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e9).round() as u64
}

impl PlfCounters {
    /// A fresh, shareable counter block.
    pub fn new() -> Arc<PlfCounters> {
        Arc::new(PlfCounters::default())
    }

    /// Record one kernel call over `patterns` patterns taking `elapsed`.
    pub fn record_kernel(&self, kernel: Kernel, patterns: u64, elapsed: Duration) {
        let cell = &self.kernels[kernel.index()];
        cell.invocations.fetch_add(1, Ordering::Relaxed);
        cell.patterns.fetch_add(patterns, Ordering::Relaxed);
        cell.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record `patterns` patterns actually rescaled (block max > 0) by a
    /// scaler call.
    pub fn record_rescaled(&self, patterns: u64) {
        self.rescaled_patterns.fetch_add(patterns, Ordering::Relaxed);
    }

    /// Record the start of one tree evaluation.
    pub fn record_evaluation(&self) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record modeled transfer traffic: `bytes_in` toward the device
    /// (DMA-in / host→device), `bytes_out` back, split over `commands`
    /// hardware transfers costing `modeled_seconds` if serialized.
    pub fn record_transfer(&self, bytes_in: u64, bytes_out: u64, commands: u64, modeled_seconds: f64) {
        self.transfer_bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.transfer_bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.transfer_commands.fetch_add(commands, Ordering::Relaxed);
        self.transfer_nanos
            .fetch_add(to_nanos(modeled_seconds), Ordering::Relaxed);
    }

    /// Record transfer seconds hidden behind compute by double
    /// buffering (Figure 7); feeds the overlap ratio.
    pub fn record_overlap_saved(&self, seconds: f64) {
        self.overlap_saved_nanos
            .fetch_add(to_nanos(seconds), Ordering::Relaxed);
    }

    /// Record one same-tier retry of a failed kernel call.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one degradation to a lower backend tier.
    pub fn record_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for cell in &self.kernels {
            cell.invocations.store(0, Ordering::Relaxed);
            cell.patterns.store(0, Ordering::Relaxed);
            cell.nanos.store(0, Ordering::Relaxed);
        }
        for c in [
            &self.rescaled_patterns,
            &self.evaluations,
            &self.transfer_bytes_in,
            &self.transfer_bytes_out,
            &self.transfer_commands,
            &self.transfer_nanos,
            &self.overlap_saved_nanos,
            &self.retries,
            &self.degradations,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let kernel = |k: Kernel| {
            let cell = &self.kernels[k.index()];
            KernelSnapshot {
                invocations: cell.invocations.load(Ordering::Relaxed),
                patterns: cell.patterns.load(Ordering::Relaxed),
                seconds: cell.nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            }
        };
        MetricsSnapshot {
            down: kernel(Kernel::Down),
            root: kernel(Kernel::Root),
            scale: kernel(Kernel::Scale),
            rescaled_patterns: self.rescaled_patterns.load(Ordering::Relaxed),
            evaluations: self.evaluations.load(Ordering::Relaxed),
            transfer: TransferSnapshot {
                bytes_in: self.transfer_bytes_in.load(Ordering::Relaxed),
                bytes_out: self.transfer_bytes_out.load(Ordering::Relaxed),
                commands: self.transfer_commands.load(Ordering::Relaxed),
                seconds: self.transfer_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                overlap_saved_seconds: self.overlap_saved_nanos.load(Ordering::Relaxed) as f64
                    * 1e-9,
            },
            retries: self.retries.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
        }
    }
}

/// One kernel's accumulated counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct KernelSnapshot {
    /// Calls.
    pub invocations: u64,
    /// Patterns processed across all calls.
    pub patterns: u64,
    /// Wall seconds inside the kernel (host-measured).
    pub seconds: f64,
}

/// Accumulated transfer accounting (Cell DMA or GPU PCIe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TransferSnapshot {
    /// Bytes moved toward the device (DMA-in / host→device).
    pub bytes_in: u64,
    /// Bytes moved back to the host.
    pub bytes_out: u64,
    /// Hardware transfer commands (Cell: ≤16 KB each).
    pub commands: u64,
    /// Modeled seconds if every transfer were serialized.
    pub seconds: f64,
    /// Modeled seconds hidden behind compute by double buffering.
    pub overlap_saved_seconds: f64,
}

impl TransferSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Fraction of serialized transfer time hidden by double buffering,
    /// in `[0, 1]`; zero when nothing was transferred.
    pub fn overlap_ratio(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            (self.overlap_saved_seconds / self.seconds).clamp(0.0, 1.0)
        }
    }

    /// Modeled transfer seconds left exposed after overlap.
    pub fn exposed_seconds(&self) -> f64 {
        (self.seconds - self.overlap_saved_seconds).max(0.0)
    }
}

/// A point-in-time copy of a [`PlfCounters`] block.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// `CondLikeDown` counters.
    pub down: KernelSnapshot,
    /// `CondLikeRoot` counters.
    pub root: KernelSnapshot,
    /// `CondLikeScaler` counters.
    pub scale: KernelSnapshot,
    /// Patterns actually rescaled (underflow events) by scaler calls.
    pub rescaled_patterns: u64,
    /// Tree evaluations started.
    pub evaluations: u64,
    /// DMA / PCIe accounting.
    pub transfer: TransferSnapshot,
    /// Same-tier retries recorded by the resilience wrapper.
    pub retries: u64,
    /// Tier degradations recorded by the resilience wrapper.
    pub degradations: u64,
}

impl MetricsSnapshot {
    /// The named kernel's counters.
    pub fn kernel(&self, k: Kernel) -> &KernelSnapshot {
        match k {
            Kernel::Down => &self.down,
            Kernel::Root => &self.root,
            Kernel::Scale => &self.scale,
        }
    }

    /// Total kernel invocations.
    pub fn invocations(&self) -> u64 {
        Kernel::ALL.iter().map(|&k| self.kernel(k).invocations).sum()
    }

    /// Total patterns processed across all kernels.
    pub fn patterns(&self) -> u64 {
        Kernel::ALL.iter().map(|&k| self.kernel(k).patterns).sum()
    }

    /// Total wall seconds inside PLF kernels (the Figure 12 "PLF" bar).
    pub fn plf_seconds(&self) -> f64 {
        Kernel::ALL.iter().map(|&k| self.kernel(k).seconds).sum()
    }
}

/// Per-tenant accumulators kept under the [`ServiceCounters`] mutex;
/// plain integers, not atomics, because they are only touched while the
/// map lock is held.
#[derive(Debug, Default, Clone)]
struct TenantCell {
    submitted: u64,
    rejected: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    deadline_missed: u64,
    wait_nanos: u64,
    service_nanos: u64,
}

/// Service-level counters for the `plfd` batched evaluation service:
/// admission outcomes, queue depth (live gauge plus high-water mark),
/// wait vs. service time, and batch occupancy, with a per-tenant
/// breakdown.
///
/// The global counters follow the same contract as [`PlfCounters`]:
/// independent monotone statistics updated with relaxed atomics (the
/// module-level `plf-lint` ordering declaration covers them). The
/// per-tenant map takes a short mutex — acceptable because tenant
/// attribution happens once per *job*, not per kernel call.
///
/// `queue_depth` is the one non-monotone field: a gauge incremented on
/// enqueue and decremented on dequeue, with `queue_depth_peak` tracking
/// its high-water mark via `fetch_max`.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_missed: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    wait_nanos: AtomicU64,
    service_nanos: AtomicU64,
    batches: AtomicU64,
    batch_jobs: AtomicU64,
    batch_job_slots: AtomicU64,
    shed: AtomicU64,
    requeued_jobs: AtomicU64,
    watchdog_respawns: AtomicU64,
    watchdog_hangs: AtomicU64,
    breaker_opened: AtomicU64,
    breaker_half_opened: AtomicU64,
    breaker_closed: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    journal_appends: AtomicU64,
    journal_fsyncs: AtomicU64,
    journal_rotations: AtomicU64,
    journal_compactions: AtomicU64,
    replayed_jobs: AtomicU64,
    deduped_jobs: AtomicU64,
    truncated_records: AtomicU64,
    clv_cache_hits: AtomicU64,
    clv_cache_misses: AtomicU64,
    clv_cache_evictions: AtomicU64,
    tenants: Mutex<BTreeMap<String, TenantCell>>,
}

impl ServiceCounters {
    /// A fresh, shareable counter block.
    pub fn new() -> Arc<ServiceCounters> {
        Arc::new(ServiceCounters::default())
    }

    fn tenant_cell<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantCell) -> R) -> R {
        let mut map = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        f(map.entry(tenant.to_string()).or_default())
    }

    /// Record one submission attempt by `tenant` (accepted *or*
    /// rejected; pair with [`record_rejected`](Self::record_rejected)
    /// to derive admissions).
    pub fn record_submitted(&self, tenant: &str) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.submitted += 1);
    }

    /// Record one admission-control rejection (queue full) for `tenant`.
    pub fn record_rejected(&self, tenant: &str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.rejected += 1);
    }

    /// Record one job entering the submission queue.
    pub fn record_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record `n` jobs leaving the submission queue.
    pub fn record_dequeued(&self, n: u64) {
        // Saturating: enqueue/dequeue calls are paired by the queue, but
        // a miscount must not wrap the gauge to u64::MAX.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(n))
            });
    }

    /// Record one job completed for `tenant` after waiting `wait` in
    /// queue and `service` under evaluation.
    pub fn record_completed(&self, tenant: &str, wait: Duration, service: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let w = wait.as_nanos() as u64;
        let s = service.as_nanos() as u64;
        self.wait_nanos.fetch_add(w, Ordering::Relaxed);
        self.service_nanos.fetch_add(s, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| {
            c.completed += 1;
            c.wait_nanos += w;
            c.service_nanos += s;
        });
    }

    /// Record one job that failed evaluation (after resilience
    /// exhausted retries and fallbacks) for `tenant`.
    pub fn record_failed(&self, tenant: &str) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.failed += 1);
    }

    /// Record one job cancelled before evaluation for `tenant`.
    pub fn record_cancelled(&self, tenant: &str) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.cancelled += 1);
    }

    /// Record one job that missed its deadline before starting, for
    /// `tenant`.
    pub fn record_deadline_missed(&self, tenant: &str) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.deadline_missed += 1);
    }

    /// Record one submission shed by the adaptive admission controller
    /// (backlog/latency overload, distinct from the hard capacity
    /// rejection) for `tenant`.
    pub fn record_shed(&self, tenant: &str) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.shed += 1);
    }

    /// Record `n` in-flight jobs recovered from a dead worker and
    /// re-queued by the watchdog.
    pub fn record_requeued(&self, n: u64) {
        self.requeued_jobs.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one dispatch worker respawned by the watchdog.
    pub fn record_watchdog_respawn(&self) {
        self.watchdog_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one hung-worker detection (heartbeat stale past the hang
    /// timeout while jobs were in flight).
    pub fn record_watchdog_hang(&self) {
        self.watchdog_hangs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one circuit-breaker transition into `Open`.
    pub fn record_breaker_open(&self) {
        self.breaker_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one circuit-breaker transition into `HalfOpen`.
    pub fn record_breaker_half_open(&self) {
        self.breaker_half_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one circuit-breaker transition back into `Closed`.
    pub fn record_breaker_close(&self) {
        self.breaker_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one half-open probe job's outcome.
    pub fn record_probe(&self, ok: bool) {
        if ok {
            self.probes_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.probes_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one record appended to the write-ahead job journal.
    pub fn record_journal_append(&self) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `fsync` of the journal's active segment (group
    /// commit: many appends share one fsync under the batch interval).
    pub fn record_journal_fsync(&self) {
        self.journal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one journal segment rotation (active segment sealed, a
    /// fresh one opened).
    pub fn record_journal_rotation(&self) {
        self.journal_rotations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fully-resolved journal segment compacted (deleted).
    pub fn record_journal_compaction(&self) {
        self.journal_compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one admitted-but-unresolved job replayed from the
    /// journal on recovery.
    pub fn record_replayed(&self) {
        self.replayed_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one submission deduplicated by idempotency key (the
    /// caller received the existing ticket or journaled outcome
    /// instead of a second execution).
    pub fn record_deduped(&self) {
        self.deduped_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` corrupt trailing journal records truncated during
    /// recovery (non-fatal: the tail is cut, everything before it
    /// replays normally).
    pub fn record_truncated(&self, n: u64) {
        self.truncated_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold one CLV-cache stats delta (per fused batch) into the
    /// service totals: `hits` subtree CLVs reused instead of
    /// recomputed, `misses` looked up but absent, `evictions` entries
    /// displaced by capacity.
    pub fn record_clv_cache(&self, hits: u64, misses: u64, evictions: u64) {
        self.clv_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.clv_cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.clv_cache_evictions.fetch_add(evictions, Ordering::Relaxed);
    }

    /// Record one fused batch dispatched carrying `jobs` jobs out of
    /// `slots` possible (the scheduler's `max_jobs` cap); feeds batch
    /// occupancy.
    pub fn record_batch(&self, jobs: u64, slots: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs.fetch_add(jobs, Ordering::Relaxed);
        self.batch_job_slots.fetch_add(slots, Ordering::Relaxed);
    }

    /// Live queue depth gauge.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Zero every counter and drop all tenant rows.
    pub fn reset(&self) {
        for c in [
            &self.submitted,
            &self.rejected,
            &self.completed,
            &self.failed,
            &self.cancelled,
            &self.deadline_missed,
            &self.queue_depth,
            &self.queue_depth_peak,
            &self.wait_nanos,
            &self.service_nanos,
            &self.batches,
            &self.batch_jobs,
            &self.batch_job_slots,
            &self.shed,
            &self.requeued_jobs,
            &self.watchdog_respawns,
            &self.watchdog_hangs,
            &self.breaker_opened,
            &self.breaker_half_opened,
            &self.breaker_closed,
            &self.probes_ok,
            &self.probes_failed,
            &self.journal_appends,
            &self.journal_fsyncs,
            &self.journal_rotations,
            &self.journal_compactions,
            &self.replayed_jobs,
            &self.deduped_jobs,
            &self.truncated_records,
            &self.clv_cache_hits,
            &self.clv_cache_misses,
            &self.clv_cache_evictions,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(name, c)| TenantSnapshot {
                tenant: name.clone(),
                submitted: c.submitted,
                rejected: c.rejected,
                shed: c.shed,
                completed: c.completed,
                failed: c.failed,
                cancelled: c.cancelled,
                deadline_missed: c.deadline_missed,
                wait_seconds: c.wait_nanos as f64 * 1e-9,
                service_seconds: c.service_nanos as f64 * 1e-9,
            })
            .collect();
        ServiceSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            wait_seconds: self.wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            service_seconds: self.service_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            batches: self.batches.load(Ordering::Relaxed),
            batch_jobs: self.batch_jobs.load(Ordering::Relaxed),
            batch_job_slots: self.batch_job_slots.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            requeued_jobs: self.requeued_jobs.load(Ordering::Relaxed),
            watchdog_respawns: self.watchdog_respawns.load(Ordering::Relaxed),
            watchdog_hangs: self.watchdog_hangs.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            breaker_half_opened: self.breaker_half_opened.load(Ordering::Relaxed),
            breaker_closed: self.breaker_closed.load(Ordering::Relaxed),
            probes_ok: self.probes_ok.load(Ordering::Relaxed),
            probes_failed: self.probes_failed.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_fsyncs: self.journal_fsyncs.load(Ordering::Relaxed),
            journal_rotations: self.journal_rotations.load(Ordering::Relaxed),
            journal_compactions: self.journal_compactions.load(Ordering::Relaxed),
            replayed_jobs: self.replayed_jobs.load(Ordering::Relaxed),
            deduped_jobs: self.deduped_jobs.load(Ordering::Relaxed),
            truncated_records: self.truncated_records.load(Ordering::Relaxed),
            clv_cache_hits: self.clv_cache_hits.load(Ordering::Relaxed),
            clv_cache_misses: self.clv_cache_misses.load(Ordering::Relaxed),
            clv_cache_evictions: self.clv_cache_evictions.load(Ordering::Relaxed),
            tenants,
        }
    }
}

/// One tenant's accumulated service counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TenantSnapshot {
    /// Tenant name as given at submission.
    pub tenant: String,
    /// Submission attempts (accepted + rejected).
    pub submitted: u64,
    /// Admission-control rejections.
    pub rejected: u64,
    /// Submissions shed by the adaptive admission controller.
    pub shed: u64,
    /// Jobs completed with a log-likelihood.
    pub completed: u64,
    /// Jobs that failed evaluation.
    pub failed: u64,
    /// Jobs cancelled before evaluation.
    pub cancelled: u64,
    /// Jobs that missed their deadline before starting.
    pub deadline_missed: u64,
    /// Total queue-wait seconds across completed jobs.
    pub wait_seconds: f64,
    /// Total evaluation seconds across completed jobs.
    pub service_seconds: f64,
}

/// A point-in-time copy of a [`ServiceCounters`] block; the `service`
/// section of `BENCH_plf.json` schema v2 embeds one of these.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServiceSnapshot {
    /// Submission attempts (accepted + rejected).
    pub submitted: u64,
    /// Admission-control rejections (queue full).
    pub rejected: u64,
    /// Jobs completed with a log-likelihood.
    pub completed: u64,
    /// Jobs that failed evaluation.
    pub failed: u64,
    /// Jobs cancelled before evaluation.
    pub cancelled: u64,
    /// Jobs that missed their deadline before starting.
    pub deadline_missed: u64,
    /// Live queue depth when the snapshot was taken.
    pub queue_depth: u64,
    /// High-water mark of the queue depth gauge.
    pub queue_depth_peak: u64,
    /// Total queue-wait seconds across completed jobs.
    pub wait_seconds: f64,
    /// Total evaluation seconds across completed jobs.
    pub service_seconds: f64,
    /// Fused batches dispatched.
    pub batches: u64,
    /// Jobs carried by those batches.
    pub batch_jobs: u64,
    /// Job slots offered by those batches (`batches × max_jobs`).
    pub batch_job_slots: u64,
    /// Submissions shed by the adaptive admission controller
    /// (overload, distinct from hard-capacity `rejected`).
    pub shed: u64,
    /// In-flight jobs recovered from dead workers and re-queued.
    pub requeued_jobs: u64,
    /// Dispatch workers respawned by the watchdog.
    pub watchdog_respawns: u64,
    /// Hung-worker detections (stale heartbeat with jobs in flight).
    pub watchdog_hangs: u64,
    /// Circuit-breaker transitions into `Open`.
    pub breaker_opened: u64,
    /// Circuit-breaker transitions into `HalfOpen`.
    pub breaker_half_opened: u64,
    /// Circuit-breaker transitions back into `Closed`.
    pub breaker_closed: u64,
    /// Half-open probe jobs that succeeded.
    pub probes_ok: u64,
    /// Half-open probe jobs that failed.
    pub probes_failed: u64,
    /// Records appended to the write-ahead job journal.
    pub journal_appends: u64,
    /// Journal segment fsyncs (group commit batches).
    pub journal_fsyncs: u64,
    /// Journal segment rotations.
    pub journal_rotations: u64,
    /// Fully-resolved journal segments compacted (deleted).
    pub journal_compactions: u64,
    /// Admitted-but-unresolved jobs replayed from the journal on
    /// recovery.
    pub replayed_jobs: u64,
    /// Submissions deduplicated by idempotency key (no re-execution).
    pub deduped_jobs: u64,
    /// Corrupt trailing journal records truncated during recovery.
    pub truncated_records: u64,
    /// Subtree CLVs served from the reuse cache instead of recomputed.
    pub clv_cache_hits: u64,
    /// CLV-cache lookups that found no entry (subtree recomputed).
    pub clv_cache_misses: u64,
    /// CLV-cache entries displaced by the capacity bound.
    pub clv_cache_evictions: u64,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantSnapshot>,
}

impl ServiceSnapshot {
    /// Jobs the queue admitted (attempts minus rejections).
    pub fn admitted(&self) -> u64 {
        self.submitted.saturating_sub(self.rejected)
    }

    /// Jobs that reached a terminal state.
    pub fn resolved(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.deadline_missed
    }

    /// Mean queue wait per completed job, in seconds.
    pub fn mean_wait_seconds(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.wait_seconds / self.completed as f64
        }
    }

    /// Mean evaluation time per completed job, in seconds.
    pub fn mean_service_seconds(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.service_seconds / self.completed as f64
        }
    }

    /// Mean fraction of batch job slots actually filled, in `[0, 1]`.
    pub fn batch_occupancy(&self) -> f64 {
        if self.batch_job_slots == 0 {
            0.0
        } else {
            (self.batch_jobs as f64 / self.batch_job_slots as f64).clamp(0.0, 1.0)
        }
    }
}

/// Per-tenant accumulators kept under the [`NetCounters`] mutex;
/// plain integers because they are only touched while the map lock is
/// held (once per request, not per byte).
#[derive(Debug, Default, Clone)]
struct NetTenantCell {
    submitted: u64,
    completed: u64,
    rejected: u64,
    rate_limited: u64,
}

/// Connection-layer counters for the `plf-net` socket server: accept /
/// close traffic, frame and byte volume in each direction, protocol
/// errors, and the admission outcomes relayed to remote clients, with
/// a per-tenant breakdown feeding the fairness tests and the BENCH
/// `net_service` section.
///
/// Same contract as [`ServiceCounters`]: independent monotone
/// statistics on relaxed atomics (covered by the module-level
/// `plf-lint` ordering declaration), except `connections_active` — a
/// gauge incremented on accept and decremented on close, with
/// `connections_peak` tracking its high-water mark via `fetch_max`.
/// The per-tenant map takes a short mutex, acceptable because tenant
/// attribution happens once per *request frame*, not per byte or per
/// readiness event.
#[derive(Debug, Default)]
pub struct NetCounters {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    connections_active: AtomicU64,
    connections_peak: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    protocol_errors: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_overloaded: AtomicU64,
    rate_limited: AtomicU64,
    drained_connections: AtomicU64,
    tenants: Mutex<BTreeMap<String, NetTenantCell>>,
}

impl NetCounters {
    /// A fresh, shareable counter block.
    pub fn new() -> Arc<NetCounters> {
        Arc::new(NetCounters::default())
    }

    fn tenant_cell<R>(&self, tenant: &str, f: impl FnOnce(&mut NetTenantCell) -> R) -> R {
        let mut map = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        f(map.entry(tenant.to_string()).or_default())
    }

    /// Record one accepted connection.
    pub fn record_conn_open(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
        let live = self.connections_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.connections_peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Record one connection closed (peer hangup, protocol error, or
    /// server-side drain).
    pub fn record_conn_close(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
        // Saturating: open/close calls are paired by the reactor, but a
        // miscount must not wrap the gauge to u64::MAX.
        let _ = self
            .connections_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Record one well-formed frame read off a socket (`bytes` on the
    /// wire including header and CRC).
    pub fn record_frame_in(&self, bytes: u64) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one frame written to a socket (`bytes` on the wire).
    pub fn record_frame_out(&self, bytes: u64) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one protocol violation (bad magic, version skew, CRC
    /// mismatch, oversized length prefix, or malformed payload); the
    /// reactor answers with an error frame and closes the connection.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one submit request forwarded from the wire into the
    /// service admission queue for `tenant`.
    pub fn record_net_submitted(&self, tenant: &str) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.submitted += 1);
    }

    /// Record one terminal outcome frame (completed / failed /
    /// cancelled / deadline-missed) delivered to `tenant`'s client.
    pub fn record_net_completed(&self, tenant: &str) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.completed += 1);
    }

    /// Record one queue-full reject frame (with retry-after and
    /// jobs-ahead hints) sent to `tenant`'s client.
    pub fn record_net_reject_queue_full(&self, tenant: &str) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.rejected += 1);
    }

    /// Record one overload-shed reject frame sent to `tenant`'s client.
    pub fn record_net_reject_overloaded(&self, tenant: &str) {
        self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.rejected += 1);
    }

    /// Record one request held back by `tenant`'s token bucket (the
    /// WFQ scheduler skipped the tenant this round; the request stays
    /// queued, it is not rejected).
    pub fn record_net_rate_limited(&self, tenant: &str) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        self.tenant_cell(tenant, |c| c.rate_limited += 1);
    }

    /// Record one connection flushed and closed by graceful drain.
    pub fn record_drained_connection(&self) {
        self.drained_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Live connection gauge.
    pub fn connections_active(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Zero every counter and drop all tenant rows.
    pub fn reset(&self) {
        for c in [
            &self.connections_opened,
            &self.connections_closed,
            &self.connections_active,
            &self.connections_peak,
            &self.frames_in,
            &self.frames_out,
            &self.bytes_in,
            &self.bytes_out,
            &self.protocol_errors,
            &self.submitted,
            &self.completed,
            &self.rejected_queue_full,
            &self.rejected_overloaded,
            &self.rate_limited,
            &self.drained_connections,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> NetSnapshot {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(name, c)| NetTenantSnapshot {
                tenant: name.clone(),
                submitted: c.submitted,
                completed: c.completed,
                rejected: c.rejected,
                rate_limited: c.rate_limited,
            })
            .collect();
        NetSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_peak: self.connections_peak.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            drained_connections: self.drained_connections.load(Ordering::Relaxed),
            tenants,
        }
    }
}

/// One tenant's accumulated connection-layer counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct NetTenantSnapshot {
    /// Tenant name as carried in submit frames.
    pub tenant: String,
    /// Submit requests forwarded into the admission queue.
    pub submitted: u64,
    /// Terminal outcome frames delivered.
    pub completed: u64,
    /// Reject frames sent (queue full + overload shed).
    pub rejected: u64,
    /// Requests deferred by the tenant's token bucket.
    pub rate_limited: u64,
}

/// A point-in-time copy of a [`NetCounters`] block; the `net_service`
/// section of `BENCH_plf.json` schema v6 embeds one of these.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct NetSnapshot {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections closed (any cause).
    pub connections_closed: u64,
    /// Live connections when the snapshot was taken.
    pub connections_active: u64,
    /// High-water mark of the live-connection gauge.
    pub connections_peak: u64,
    /// Well-formed frames read.
    pub frames_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Bytes read off sockets (headers and CRCs included).
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Protocol violations (bad magic, version skew, CRC mismatch,
    /// oversized length, malformed payload).
    pub protocol_errors: u64,
    /// Submit requests forwarded into the admission queue.
    pub submitted: u64,
    /// Terminal outcome frames delivered to clients.
    pub completed: u64,
    /// Queue-full reject frames sent.
    pub rejected_queue_full: u64,
    /// Overload-shed reject frames sent.
    pub rejected_overloaded: u64,
    /// Requests deferred by per-tenant token buckets.
    pub rate_limited: u64,
    /// Connections flushed and closed by graceful drain.
    pub drained_connections: u64,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<NetTenantSnapshot>,
}

/// RAII span timer: started before a kernel body, records one
/// invocation (with patterns and elapsed wall time) into the counters
/// when dropped. With `counters == None` it records nothing.
pub struct KernelTimer {
    counters: Option<Arc<PlfCounters>>,
    kernel: Kernel,
    patterns: u64,
    start: Instant,
}

impl KernelTimer {
    /// Start timing one kernel call over `patterns` patterns.
    pub fn start(counters: Option<&Arc<PlfCounters>>, kernel: Kernel, patterns: usize) -> KernelTimer {
        KernelTimer {
            counters: counters.cloned(),
            kernel,
            patterns: patterns as u64,
            start: Instant::now(),
        }
    }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        if let Some(c) = &self.counters {
            c.record_kernel(self.kernel, self.patterns, self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kernel() {
        let c = PlfCounters::new();
        c.record_kernel(Kernel::Down, 100, Duration::from_micros(5));
        c.record_kernel(Kernel::Down, 100, Duration::from_micros(5));
        c.record_kernel(Kernel::Scale, 100, Duration::from_micros(1));
        let s = c.snapshot();
        assert_eq!(s.down.invocations, 2);
        assert_eq!(s.down.patterns, 200);
        assert!((s.down.seconds - 10e-6).abs() < 1e-12);
        assert_eq!(s.root.invocations, 0);
        assert_eq!(s.scale.invocations, 1);
        assert_eq!(s.invocations(), 3);
        assert_eq!(s.patterns(), 300);
        assert!((s.plf_seconds() - 11e-6).abs() < 1e-12);
    }

    #[test]
    fn timer_records_on_drop_only_when_armed() {
        let c = PlfCounters::new();
        {
            let _t = KernelTimer::start(Some(&c), Kernel::Root, 42);
        }
        {
            let _t = KernelTimer::start(None, Kernel::Root, 42);
        }
        let s = c.snapshot();
        assert_eq!(s.root.invocations, 1);
        assert_eq!(s.root.patterns, 42);
    }

    #[test]
    fn transfer_and_overlap_accounting() {
        let c = PlfCounters::new();
        c.record_transfer(32 * 1024, 16 * 1024, 3, 4e-6);
        c.record_overlap_saved(1e-6);
        let s = c.snapshot();
        assert_eq!(s.transfer.total_bytes(), 48 * 1024);
        assert_eq!(s.transfer.commands, 3);
        assert!((s.transfer.seconds - 4e-6).abs() < 1e-12);
        assert!((s.transfer.overlap_ratio() - 0.25).abs() < 1e-9);
        assert!((s.transfer.exposed_seconds() - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_clamped_and_safe_on_empty() {
        let c = PlfCounters::new();
        assert_eq!(c.snapshot().transfer.overlap_ratio(), 0.0);
        c.record_transfer(1, 1, 1, 1e-9);
        c.record_overlap_saved(1.0); // saved > serialized: clamp to 1
        assert_eq!(c.snapshot().transfer.overlap_ratio(), 1.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = PlfCounters::new();
        c.record_kernel(Kernel::Down, 10, Duration::from_nanos(100));
        c.record_rescaled(7);
        c.record_evaluation();
        c.record_retry();
        c.record_degradation();
        c.record_transfer(1, 2, 3, 1e-6);
        c.reset();
        assert_eq!(c.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn service_counters_track_admission_and_latency() {
        let c = ServiceCounters::new();
        c.record_submitted("a");
        c.record_submitted("a");
        c.record_submitted("b");
        c.record_rejected("b");
        c.record_enqueued();
        c.record_enqueued();
        c.record_dequeued(1);
        c.record_completed("a", Duration::from_millis(2), Duration::from_millis(3));
        c.record_batch(3, 4);
        let s = c.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.admitted(), 2);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.queue_depth_peak, 2);
        assert_eq!(s.completed, 1);
        assert!((s.mean_wait_seconds() - 2e-3).abs() < 1e-12);
        assert!((s.mean_service_seconds() - 3e-3).abs() < 1e-12);
        assert!((s.batch_occupancy() - 0.75).abs() < 1e-12);
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[0].tenant, "a");
        assert_eq!(s.tenants[0].submitted, 2);
        assert_eq!(s.tenants[1].rejected, 1);
    }

    #[test]
    fn service_counters_terminal_states_and_reset() {
        let c = ServiceCounters::new();
        c.record_completed("t", Duration::ZERO, Duration::ZERO);
        c.record_failed("t");
        c.record_cancelled("t");
        c.record_deadline_missed("t");
        let s = c.snapshot();
        assert_eq!(s.resolved(), 4);
        assert_eq!(s.tenants[0].failed, 1);
        assert_eq!(s.tenants[0].cancelled, 1);
        assert_eq!(s.tenants[0].deadline_missed, 1);
        c.reset();
        assert_eq!(c.snapshot(), ServiceSnapshot::default());
    }

    #[test]
    fn service_counters_track_self_healing_events() {
        let c = ServiceCounters::new();
        c.record_shed("t");
        c.record_shed("u");
        c.record_requeued(3);
        c.record_watchdog_respawn();
        c.record_watchdog_hang();
        c.record_breaker_open();
        c.record_breaker_half_open();
        c.record_breaker_close();
        c.record_probe(true);
        c.record_probe(true);
        c.record_probe(false);
        c.record_clv_cache(5, 2, 1);
        c.record_clv_cache(1, 0, 0);
        let s = c.snapshot();
        assert_eq!(s.shed, 2);
        assert_eq!(s.requeued_jobs, 3);
        assert_eq!(s.watchdog_respawns, 1);
        assert_eq!(s.watchdog_hangs, 1);
        assert_eq!(s.breaker_opened, 1);
        assert_eq!(s.breaker_half_opened, 1);
        assert_eq!(s.breaker_closed, 1);
        assert_eq!(s.probes_ok, 2);
        assert_eq!(s.probes_failed, 1);
        assert_eq!(s.clv_cache_hits, 6);
        assert_eq!(s.clv_cache_misses, 2);
        assert_eq!(s.clv_cache_evictions, 1);
        assert_eq!(s.tenants[0].shed, 1);
        assert_eq!(s.tenants[1].shed, 1);
        c.reset();
        assert_eq!(c.snapshot(), ServiceSnapshot::default());
    }

    #[test]
    fn service_dequeue_saturates_instead_of_wrapping() {
        let c = ServiceCounters::new();
        c.record_dequeued(5);
        assert_eq!(c.queue_depth(), 0);
    }

    #[test]
    fn service_snapshot_serializes() {
        let c = ServiceCounters::new();
        c.record_submitted("tenant-0");
        let json = serde_json::to_string(&c.snapshot()).unwrap();
        assert!(json.contains("\"queue_depth_peak\""));
        assert!(json.contains("\"clv_cache_hits\""));
        assert!(json.contains("\"tenant-0\""));
    }

    #[test]
    fn snapshot_serializes() {
        let c = PlfCounters::new();
        c.record_kernel(Kernel::Scale, 5, Duration::from_nanos(50));
        let json = serde_json::to_string(&c.snapshot()).unwrap();
        assert!(json.contains("\"scale\""));
        assert!(json.contains("\"rescaled_patterns\""));
    }

    #[test]
    fn net_counters_track_connections_and_frames() {
        let c = NetCounters::new();
        c.record_conn_open();
        c.record_conn_open();
        c.record_conn_close();
        c.record_frame_in(24);
        c.record_frame_in(40);
        c.record_frame_out(16);
        c.record_protocol_error();
        let s = c.snapshot();
        assert_eq!(s.connections_opened, 2);
        assert_eq!(s.connections_closed, 1);
        assert_eq!(s.connections_active, 1);
        assert_eq!(s.connections_peak, 2);
        assert_eq!(s.frames_in, 2);
        assert_eq!(s.bytes_in, 64);
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.bytes_out, 16);
        assert_eq!(s.protocol_errors, 1);
        assert_eq!(c.connections_active(), 1);
    }

    #[test]
    fn net_close_saturates_instead_of_wrapping() {
        let c = NetCounters::new();
        c.record_conn_close();
        assert_eq!(c.connections_active(), 0);
    }

    #[test]
    fn net_counters_track_tenant_outcomes_and_reset() {
        let c = NetCounters::new();
        c.record_net_submitted("a");
        c.record_net_submitted("b");
        c.record_net_completed("a");
        c.record_net_reject_queue_full("b");
        c.record_net_reject_overloaded("b");
        c.record_net_rate_limited("b");
        c.record_drained_connection();
        let s = c.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.rejected_overloaded, 1);
        assert_eq!(s.rate_limited, 1);
        assert_eq!(s.drained_connections, 1);
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[0].tenant, "a");
        assert_eq!(s.tenants[0].completed, 1);
        assert_eq!(s.tenants[1].rejected, 2);
        assert_eq!(s.tenants[1].rate_limited, 1);
        c.reset();
        assert_eq!(c.snapshot(), NetSnapshot::default());
    }

    #[test]
    fn net_snapshot_serializes() {
        let c = NetCounters::new();
        c.record_net_submitted("tenant-9");
        let json = serde_json::to_string(&c.snapshot()).unwrap();
        assert!(json.contains("\"connections_peak\""));
        assert!(json.contains("\"rate_limited\""));
        assert!(json.contains("\"tenant-9\""));
    }
}

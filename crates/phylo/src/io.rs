//! Alignment file I/O: FASTA and (relaxed sequential) PHYLIP.
//!
//! MrBayes reads NEXUS; field data, however, moves as FASTA and PHYLIP,
//! and both are trivial to map onto [`Alignment`]. Parsers are strict
//! about structure (duplicate names, ragged rows, invalid characters
//! all error through [`AlignmentError`]) and tolerant about whitespace.

use crate::alignment::{Alignment, AlignmentError};
use crate::dna::StateMask;

/// Errors from file parsing: either the surrounding format or the
/// alignment content.
#[derive(Debug)]
pub enum IoError {
    /// Structural problem with the file format.
    Format(String),
    /// The sequences themselves are invalid.
    Alignment(AlignmentError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Alignment(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<AlignmentError> for IoError {
    fn from(e: AlignmentError) -> IoError {
        IoError::Alignment(e)
    }
}

fn encode_row(name: &str, seq: &str) -> Result<(String, Vec<StateMask>), IoError> {
    let mut row = Vec::with_capacity(seq.len());
    for (i, c) in seq.chars().enumerate() {
        if c.is_ascii_whitespace() {
            continue;
        }
        row.push(StateMask::from_iupac(c).ok_or_else(|| {
            IoError::Alignment(AlignmentError::BadChar {
                taxon: name.to_string(),
                site: i,
                ch: c,
            })
        })?);
    }
    Ok((name.to_string(), row))
}

/// Parse FASTA text into an alignment.
pub fn parse_fasta(text: &str) -> Result<Alignment, IoError> {
    let mut taxa = Vec::new();
    let mut seqs: Vec<Vec<StateMask>> = Vec::new();
    let mut current: Option<(String, String)> = None;
    let flush = |current: &mut Option<(String, String)>,
                     taxa: &mut Vec<String>,
                     seqs: &mut Vec<Vec<StateMask>>|
     -> Result<(), IoError> {
        if let Some((name, seq)) = current.take() {
            if seq.is_empty() {
                return Err(IoError::Format(format!("record {name} has no sequence")));
            }
            let (name, row) = encode_row(&name, &seq)?;
            taxa.push(name);
            seqs.push(row);
        }
        Ok(())
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            flush(&mut current, &mut taxa, &mut seqs)?;
            let name = header.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err(IoError::Format("empty FASTA header".into()));
            }
            current = Some((name, String::new()));
        } else {
            match &mut current {
                Some((_, seq)) => seq.push_str(line),
                None => return Err(IoError::Format("sequence before first '>' header".into())),
            }
        }
    }
    flush(&mut current, &mut taxa, &mut seqs)?;
    Ok(Alignment::new(taxa, seqs)?)
}

/// Serialize an alignment as FASTA (60-column wrapped).
pub fn write_fasta(aln: &Alignment) -> String {
    let mut out = String::new();
    for (t, name) in aln.taxa().iter().enumerate() {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        let chars: String = aln.row(t).iter().map(|m| m.to_iupac()).collect();
        for chunk in chars.as_bytes().chunks(60) {
            out.push_str(std::str::from_utf8(chunk).expect("IUPAC chars are ASCII"));
            out.push('\n');
        }
    }
    out
}

/// Parse relaxed sequential PHYLIP: a `ntax nchar` header line, then one
/// `name sequence` record per taxon (sequence may continue on following
/// lines until `nchar` characters are read).
pub fn parse_phylip(text: &str) -> Result<Alignment, IoError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| IoError::Format("empty PHYLIP file".into()))?;
    let mut parts = header.split_whitespace();
    let ntax: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| IoError::Format("bad ntax in PHYLIP header".into()))?;
    let nchar: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| IoError::Format("bad nchar in PHYLIP header".into()))?;
    let mut taxa = Vec::with_capacity(ntax);
    let mut seqs = Vec::with_capacity(ntax);
    for _ in 0..ntax {
        let first = lines
            .next()
            .ok_or_else(|| IoError::Format(format!("expected {ntax} records")))?;
        let mut parts = first.trim().splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| IoError::Format("missing taxon name".into()))?
            .to_string();
        let mut seq: String = parts.next().unwrap_or("").split_whitespace().collect();
        while seq.len() < nchar {
            let cont = lines.next().ok_or_else(|| {
                IoError::Format(format!("taxon {name}: expected {nchar} characters, got {}", seq.len()))
            })?;
            seq.extend(cont.split_whitespace().flat_map(|s| s.chars()));
        }
        if seq.len() != nchar {
            return Err(IoError::Format(format!(
                "taxon {name}: expected {nchar} characters, got {}",
                seq.len()
            )));
        }
        let (name, row) = encode_row(&name, &seq)?;
        taxa.push(name);
        seqs.push(row);
    }
    Ok(Alignment::new(taxa, seqs)?)
}

/// Parse the `DATA` block of a NEXUS file — MrBayes's native input
/// format. Handles the standard
/// `#NEXUS / begin data; dimensions ntax=N nchar=M; format ...; matrix
/// ... ; end;` skeleton with interleaved or sequential matrices.
pub fn parse_nexus(text: &str) -> Result<Alignment, IoError> {
    let lower = text.to_lowercase();
    if !lower.trim_start().starts_with("#nexus") {
        return Err(IoError::Format("missing #NEXUS header".into()));
    }
    let dim_at = lower
        .find("dimensions")
        .ok_or_else(|| IoError::Format("missing dimensions statement".into()))?;
    let dim_end = lower[dim_at..]
        .find(';')
        .ok_or_else(|| IoError::Format("unterminated dimensions statement".into()))?
        + dim_at;
    let dims = &lower[dim_at..dim_end];
    let grab = |key: &str| -> Result<usize, IoError> {
        let at = dims
            .find(key)
            .ok_or_else(|| IoError::Format(format!("missing {key} in dimensions")))?;
        dims[at + key.len()..]
            .trim_start()
            .trim_start_matches('=')
            .trim_start()
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .filter(|s| !s.is_empty())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| IoError::Format(format!("bad {key} value")))
    };
    let ntax = grab("ntax")?;
    let nchar = grab("nchar")?;

    let matrix_at = lower
        .find("matrix")
        .ok_or_else(|| IoError::Format("missing matrix block".into()))?;
    let matrix_end = text[matrix_at..]
        .find(';')
        .ok_or_else(|| IoError::Format("unterminated matrix block".into()))?
        + matrix_at;
    let body = &text[matrix_at + "matrix".len()..matrix_end];

    // Interleaved format: accumulate per-taxon sequence across blocks.
    let mut order: Vec<String> = Vec::new();
    let mut seqs: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('[') {
            continue;
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| IoError::Format("matrix row without taxon name".into()))?
            .trim_matches('\'')
            .to_string();
        let chunk: String = parts.next().unwrap_or("").split_whitespace().collect();
        if !seqs.contains_key(&name) {
            order.push(name.clone());
        }
        seqs.entry(name).or_default().push_str(&chunk);
    }
    if order.len() != ntax {
        return Err(IoError::Format(format!(
            "dimensions say ntax={ntax} but matrix has {} taxa",
            order.len()
        )));
    }
    let mut taxa = Vec::with_capacity(ntax);
    let mut rows = Vec::with_capacity(ntax);
    for name in order {
        let seq = &seqs[&name];
        if seq.len() != nchar {
            return Err(IoError::Format(format!(
                "taxon {name}: expected nchar={nchar}, got {}",
                seq.len()
            )));
        }
        let (name, row) = encode_row(&name, seq)?;
        taxa.push(name);
        rows.push(row);
    }
    Ok(Alignment::new(taxa, rows)?)
}

/// Serialize an alignment as a NEXUS data block.
pub fn write_nexus(aln: &Alignment) -> String {
    let mut out = String::from("#NEXUS\nbegin data;\n");
    out.push_str(&format!(
        "  dimensions ntax={} nchar={};\n  format datatype=dna missing=? gap=-;\n  matrix\n",
        aln.n_taxa(),
        aln.n_sites()
    ));
    for (t, name) in aln.taxa().iter().enumerate() {
        let seq: String = aln.row(t).iter().map(|m| m.to_iupac()).collect();
        out.push_str(&format!("    {name} {seq}\n"));
    }
    out.push_str("  ;\nend;\n");
    out
}

/// Serialize an alignment as sequential PHYLIP.
pub fn write_phylip(aln: &Alignment) -> String {
    let mut out = format!("{} {}\n", aln.n_taxa(), aln.n_sites());
    for (t, name) in aln.taxa().iter().enumerate() {
        let seq: String = aln.row(t).iter().map(|m| m.to_iupac()).collect();
        out.push_str(name);
        out.push(' ');
        out.push_str(&seq);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FASTA: &str = ">taxA description ignored\nACGT\nACGT\n>taxB\nACGTRYKM\n";

    #[test]
    fn fasta_parse_basic() {
        let aln = parse_fasta(FASTA).unwrap();
        assert_eq!(aln.n_taxa(), 2);
        assert_eq!(aln.n_sites(), 8);
        assert_eq!(aln.taxa(), &["taxA".to_string(), "taxB".to_string()]);
    }

    #[test]
    fn fasta_roundtrip() {
        let aln = parse_fasta(FASTA).unwrap();
        let again = parse_fasta(&write_fasta(&aln)).unwrap();
        assert_eq!(aln.n_sites(), again.n_sites());
        for t in 0..aln.n_taxa() {
            assert_eq!(aln.row(t), again.row(t));
        }
    }

    #[test]
    fn fasta_wraps_long_sequences() {
        let seq = "ACGT".repeat(40);
        let text = format!(">x\n{seq}\n>y\n{seq}\n");
        let aln = parse_fasta(&text).unwrap();
        let written = write_fasta(&aln);
        assert!(written.lines().all(|l| l.len() <= 60));
        assert_eq!(parse_fasta(&written).unwrap().n_sites(), 160);
    }

    #[test]
    fn fasta_errors() {
        assert!(matches!(parse_fasta("ACGT\n"), Err(IoError::Format(_))));
        assert!(matches!(parse_fasta(">\nACGT\n"), Err(IoError::Format(_))));
        assert!(matches!(parse_fasta(">x\n"), Err(IoError::Format(_))));
        assert!(matches!(
            parse_fasta(">x\nACGZ\n>y\nACGT\n"),
            Err(IoError::Alignment(AlignmentError::BadChar { .. }))
        ));
        assert!(matches!(
            parse_fasta(">x\nACG\n>x\nACG\n"),
            Err(IoError::Alignment(AlignmentError::DuplicateTaxon(_)))
        ));
    }

    const PHYLIP: &str = "3 10\ntaxA ACGTACGTAC\ntaxB ACGTA\nCGTAA\ntaxC ACGT-ACGTN\n";

    #[test]
    fn phylip_parse_with_continuation() {
        let aln = parse_phylip(PHYLIP).unwrap();
        assert_eq!(aln.n_taxa(), 3);
        assert_eq!(aln.n_sites(), 10);
        assert_eq!(aln.row(0), parse_phylip(&write_phylip(&aln)).unwrap().row(0));
    }

    #[test]
    fn phylip_roundtrip() {
        let aln = parse_phylip(PHYLIP).unwrap();
        let again = parse_phylip(&write_phylip(&aln)).unwrap();
        for t in 0..3 {
            assert_eq!(aln.row(t), again.row(t));
        }
    }

    #[test]
    fn phylip_errors() {
        assert!(parse_phylip("").is_err());
        assert!(parse_phylip("x 10\n").is_err());
        assert!(parse_phylip("2 4\na ACGT\n").is_err()); // missing record
        assert!(parse_phylip("1 8\na ACGT\n").is_err()); // too short, no continuation
        assert!(parse_phylip("1 3\na ACGT\n").is_err()); // too long
    }

    const NEXUS: &str = "#NEXUS\nbegin data;\n  dimensions ntax=3 nchar=8;\n  format datatype=dna;\n  matrix\n    alpha ACGT\n    beta  ACGA\n    gamma ACGC\n    alpha ACGT\n    beta  TTTT\n    gamma AAAA\n  ;\nend;\n";

    #[test]
    fn nexus_interleaved_parse() {
        let aln = parse_nexus(NEXUS).unwrap();
        assert_eq!(aln.n_taxa(), 3);
        assert_eq!(aln.n_sites(), 8);
        let beta: String = aln.row(1).iter().map(|m| m.to_iupac()).collect();
        assert_eq!(beta, "ACGATTTT");
    }

    #[test]
    fn nexus_roundtrip() {
        let aln = parse_nexus(NEXUS).unwrap();
        let again = parse_nexus(&write_nexus(&aln)).unwrap();
        for t in 0..3 {
            assert_eq!(aln.row(t), again.row(t));
        }
        assert_eq!(aln.taxa(), again.taxa());
    }

    #[test]
    fn nexus_errors() {
        assert!(parse_nexus("begin data;").is_err()); // no #NEXUS
        assert!(parse_nexus("#NEXUS\nbegin data; matrix a ACGT;end;").is_err()); // no dimensions
        assert!(parse_nexus("#NEXUS\ndimensions ntax=2 nchar=4;\nmatrix\na ACGT\n;\n").is_err()); // ntax mismatch
        assert!(parse_nexus("#NEXUS\ndimensions ntax=1 nchar=9;\nmatrix\na ACGT\n;\n").is_err()); // nchar mismatch
    }

    #[test]
    fn cross_format_equivalence() {
        let aln = parse_fasta(FASTA).unwrap();
        let via_phylip = parse_phylip(&write_phylip(&aln)).unwrap();
        for t in 0..aln.n_taxa() {
            assert_eq!(aln.row(t), via_phylip.row(t));
        }
    }
}

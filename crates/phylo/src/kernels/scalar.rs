//! Scalar reference implementation of the PLF kernels.
//!
//! These functions operate on *pattern-range slices* — flat `f32` slices
//! covering some contiguous run of patterns — so every parallel backend
//! (rayon chunks, simulated SPE Local-Store chunks, simulated GPU blocks)
//! can reuse them on its own partition of the data.
//!
//! The inner-product accumulation order (ascending `j`) is the canonical
//! order all other kernels replicate for bitwise reproducibility.

use crate::clv::TransitionMatrices;
use crate::dna::N_STATES;

/// Multiply one 4-float state vector by a row-major transition matrix:
/// `out[s] = Σ_j p[s][j] * v[j]` (one of the paper's "4 inner products").
#[inline(always)]
pub fn mat_vec(p: &[[f32; 4]; 4], v: &[f32]) -> [f32; 4] {
    debug_assert!(v.len() >= N_STATES);
    let mut out = [0.0f32; 4];
    for s in 0..N_STATES {
        let row = &p[s];
        let mut acc = 0.0f32;
        for j in 0..N_STATES {
            acc += row[j] * v[j];
        }
        out[s] = acc;
    }
    out
}

fn n_patterns_of(len: usize, n_rates: usize) -> usize {
    let stride = n_rates * N_STATES;
    debug_assert_eq!(len % stride, 0, "slice not a whole number of patterns");
    len / stride
}

/// CondLikeDown over a pattern range (Figure 5's loop nest).
pub fn cond_like_down_range(
    left: &[f32],
    p_left: &TransitionMatrices,
    right: &[f32],
    p_right: &TransitionMatrices,
    out: &mut [f32],
    n_rates: usize,
) {
    assert_eq!(left.len(), out.len());
    assert_eq!(right.len(), out.len());
    let m = n_patterns_of(out.len(), n_rates);
    let stride = n_rates * N_STATES;
    for i in 0..m {
        for k in 0..n_rates {
            let base = i * stride + k * N_STATES;
            let l = mat_vec(p_left.rate(k), &left[base..base + N_STATES]);
            let r = mat_vec(p_right.rate(k), &right[base..base + N_STATES]);
            for s in 0..N_STATES {
                out[base + s] = l[s] * r[s];
            }
        }
    }
}

/// CondLikeRoot over a pattern range: two or three incident subtrees.
pub fn cond_like_root_range(
    a: &[f32],
    p_a: &TransitionMatrices,
    b: &[f32],
    p_b: &TransitionMatrices,
    c: Option<(&[f32], &TransitionMatrices)>,
    out: &mut [f32],
    n_rates: usize,
) {
    assert_eq!(a.len(), out.len());
    assert_eq!(b.len(), out.len());
    if let Some((c_clv, _)) = c {
        assert_eq!(c_clv.len(), out.len());
    }
    let m = n_patterns_of(out.len(), n_rates);
    let stride = n_rates * N_STATES;
    for i in 0..m {
        for k in 0..n_rates {
            let base = i * stride + k * N_STATES;
            let va = mat_vec(p_a.rate(k), &a[base..base + N_STATES]);
            let vb = mat_vec(p_b.rate(k), &b[base..base + N_STATES]);
            match c {
                Some((c_clv, p_c)) => {
                    let vc = mat_vec(p_c.rate(k), &c_clv[base..base + N_STATES]);
                    for s in 0..N_STATES {
                        out[base + s] = va[s] * vb[s] * vc[s];
                    }
                }
                None => {
                    for s in 0..N_STATES {
                        out[base + s] = va[s] * vb[s];
                    }
                }
            }
        }
    }
}

/// CondLikeScaler over a pattern range: per pattern, find the maximum of
/// the `n_rates × 4` block (a max-reduction, §3.1), divide the block by
/// it, and accumulate `ln(max)` into the pattern's scaler slot.
///
/// A pattern whose block is entirely zero (impossible for valid data, but
/// defensively handled like MrBayes does) is left untouched — `ln(0)`
/// would write `-inf` into the scaler slot and poison the likelihood.
///
/// Returns the number of patterns actually rescaled (underflow rescale
/// events, fed into [`crate::metrics::PlfCounters`] by the backends).
pub fn cond_like_scaler_range(clv: &mut [f32], ln_scalers: &mut [f32], n_rates: usize) -> u64 {
    let m = n_patterns_of(clv.len(), n_rates);
    assert_eq!(ln_scalers.len(), m);
    let stride = n_rates * N_STATES;
    let mut rescaled = 0u64;
    for i in 0..m {
        let block = &mut clv[i * stride..(i + 1) * stride];
        let mut max = 0.0f32;
        for &v in block.iter() {
            if v > max {
                max = v;
            }
        }
        if max > 0.0 {
            let inv = 1.0 / max;
            for v in block.iter_mut() {
                *v *= inv;
            }
            ln_scalers[i] += max.ln();
            rescaled += 1;
        }
    }
    rescaled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident() -> TransitionMatrices {
        let mut m = [[0.0f32; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        TransitionMatrices::from_mats(vec![m, m])
    }

    #[test]
    fn mat_vec_identity() {
        let m = ident();
        let v = [0.1f32, 0.2, 0.3, 0.4];
        assert_eq!(mat_vec(m.rate(0), &v), v);
    }

    #[test]
    fn mat_vec_general() {
        let p = [
            [1.0f32, 0.0, 0.0, 0.0],
            [0.0, 2.0, 0.0, 0.0],
            [1.0, 1.0, 1.0, 1.0],
            [0.5, 0.5, 0.0, 0.0],
        ];
        let v = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(mat_vec(&p, &v), [1.0, 4.0, 10.0, 1.5]);
    }

    #[test]
    fn down_with_identity_multiplies_children() {
        let p = ident();
        let left = [0.5f32; 16];
        let mut right = [0.0f32; 16];
        for (i, v) in right.iter_mut().enumerate() {
            *v = i as f32;
        }
        let mut out = [0.0f32; 16];
        cond_like_down_range(&left, &p, &right, &p, &mut out, 2);
        for i in 0..16 {
            assert_eq!(out[i], 0.5 * i as f32);
        }
    }

    #[test]
    fn root_three_children() {
        let p = ident();
        let a = [2.0f32; 8];
        let b = [3.0f32; 8];
        let c = [0.5f32; 8];
        let mut out = [0.0f32; 8];
        cond_like_root_range(&a, &p, &b, &p, Some((&c[..], &p)), &mut out, 2);
        assert!(out.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn root_two_children_matches_down() {
        let p = ident();
        let a: Vec<f32> = (0..16).map(|i| 0.1 * i as f32).collect();
        let b: Vec<f32> = (0..16).map(|i| 0.2 * i as f32).collect();
        let mut via_root = vec![0.0f32; 16];
        let mut via_down = vec![0.0f32; 16];
        cond_like_root_range(&a, &p, &b, &p, None, &mut via_root, 2);
        cond_like_down_range(&a, &p, &b, &p, &mut via_down, 2);
        assert_eq!(via_root, via_down);
    }

    #[test]
    fn scaler_normalizes_and_records() {
        let mut clv = vec![0.25f32, 0.5, 0.125, 0.0625, 0.03125, 0.5, 0.25, 0.125];
        // 1 rate category => stride 4, two patterns.
        let mut scalers = vec![0.0f32; 2];
        assert_eq!(cond_like_scaler_range(&mut clv, &mut scalers, 1), 2);
        assert_eq!(&clv[0..4], &[0.5, 1.0, 0.25, 0.125]);
        assert_eq!(&clv[4..8], &[0.0625, 1.0, 0.5, 0.25]);
        assert!((scalers[0] - 0.5f32.ln()).abs() < 1e-6);
        assert!((scalers[1] - 0.5f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn scaler_accumulates_across_calls() {
        let mut clv = vec![0.5f32; 4];
        let mut scalers = vec![0.0f32; 1];
        cond_like_scaler_range(&mut clv, &mut scalers, 1);
        clv.iter_mut().for_each(|v| *v *= 0.5);
        cond_like_scaler_range(&mut clv, &mut scalers, 1);
        assert!((scalers[0] - 0.25f32.ln()).abs() < 1e-6);
        assert!(clv.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn scaler_skips_zero_block() {
        let mut clv = vec![0.0f32; 4];
        let mut scalers = vec![0.0f32; 1];
        assert_eq!(cond_like_scaler_range(&mut clv, &mut scalers, 1), 0);
        assert_eq!(scalers[0], 0.0, "ln(0) must never reach the slot");
        assert!(scalers[0].is_finite());
        assert!(clv.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scaler_zero_block_among_live_blocks_stays_finite() {
        // Pattern 0 live, pattern 1 all-zero, pattern 2 live: the zero
        // block must not poison its slot or disturb its neighbours.
        let mut clv = vec![0.5f32, 0.25, 0.0, 0.0, /* zero */ 0.0, 0.0, 0.0, 0.0, 0.125, 0.0625, 0.0, 0.0];
        let mut scalers = vec![0.0f32; 3];
        assert_eq!(cond_like_scaler_range(&mut clv, &mut scalers, 1), 2);
        assert!(scalers.iter().all(|s| s.is_finite()));
        assert_eq!(scalers[1], 0.0);
        assert!((scalers[0] - 0.5f32.ln()).abs() < 1e-6);
        assert!((scalers[2] - 0.125f32.ln()).abs() < 1e-6);
        assert_eq!(&clv[4..8], &[0.0; 4]);
    }

    #[test]
    fn down_preserves_probability_semantics() {
        // With stochastic P and probability-vector children, outputs stay
        // within [0, 1].
        let p = TransitionMatrices::from_mats(vec![[
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.1, 0.1, 0.7, 0.1],
            [0.1, 0.1, 0.1, 0.7f32],
        ]]);
        let left = [1.0f32, 0.0, 0.0, 0.0];
        let right = [0.0f32, 1.0, 0.0, 0.0];
        let mut out = [0.0f32; 4];
        cond_like_down_range(&left, &p, &right, &p, &mut out, 1);
        for &v in &out {
            assert!((0.0..=1.0).contains(&v));
        }
        // out[s] = P[s][0] * P[s][1]
        assert!((out[0] - 0.07).abs() < 1e-6);
        assert!((out[1] - 0.07).abs() < 1e-6);
        assert!((out[2] - 0.01).abs() < 1e-6);
    }
}

//! PLF evaluation plans.
//!
//! A plan is the ordered list of kernel invocations needed to score one
//! tree: a postorder sweep of `CondLikeDown` over internal nodes,
//! interleaved `CondLikeScaler` calls, and a final `CondLikeRoot`. The
//! paper's "number of calls to the parallel section" — the quantity that
//! grows with the number of leaves and stresses each architecture's
//! synchronization (§4.1) — is exactly the length of this list.

use crate::tree::{NodeId, Tree, TreeError};

/// One kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlfOp {
    /// CondLikeDown at `node`, combining `left` and `right`.
    Down {
        /// Destination node.
        node: NodeId,
        /// Left child.
        left: NodeId,
        /// Right child.
        right: NodeId,
    },
    /// CondLikeRoot at the virtual root, combining 2 or 3 children.
    Root {
        /// The root node.
        node: NodeId,
        /// Its children (2 for a rooted anchor, 3 for an unrooted tree).
        children: Vec<NodeId>,
    },
    /// CondLikeScaler over `node`'s freshly computed CLV.
    Scale {
        /// Node whose CLV is rescaled.
        node: NodeId,
    },
}

/// An ordered PLF schedule for one tree topology.
#[derive(Debug, Clone)]
pub struct PlfPlan {
    ops: Vec<PlfOp>,
    root: NodeId,
}

impl PlfPlan {
    /// Build the plan for `tree`. `scale_every = 0` disables scaling;
    /// `scale_every = n` rescales after every `n`-th internal node (and
    /// always after the root), mirroring MrBayes's periodic
    /// `CondLikeScaler` calls.
    pub fn for_tree(tree: &Tree, scale_every: usize) -> Result<PlfPlan, TreeError> {
        tree.validate()?;
        let mut ops = Vec::new();
        let mut internal_count = 0usize;
        for id in tree.postorder() {
            let node = tree.node(id);
            if node.is_leaf() {
                continue;
            }
            if id == tree.root() {
                ops.push(PlfOp::Root {
                    node: id,
                    children: node.children.clone(),
                });
                if scale_every > 0 {
                    ops.push(PlfOp::Scale { node: id });
                }
            } else {
                debug_assert_eq!(node.children.len(), 2);
                ops.push(PlfOp::Down {
                    node: id,
                    left: node.children[0],
                    right: node.children[1],
                });
                internal_count += 1;
                if scale_every > 0 && internal_count.is_multiple_of(scale_every) {
                    ops.push(PlfOp::Scale { node: id });
                }
            }
        }
        Ok(PlfPlan { ops, root: tree.root() })
    }

    /// Build a *partial* plan recomputing only the CLVs invalidated by
    /// changes at `dirty` nodes — MrBayes's "touched" mechanism: when a
    /// branch length or local topology changes, only the conditional
    /// likelihoods on the path from the change to the root need
    /// recomputation, shrinking the per-proposal PLF work from
    /// `O(taxa)` kernel calls to `O(depth)`.
    ///
    /// A dirty node invalidates its own CLV (if internal) and every
    /// ancestor's. Scaling follows the full plan's policy: every
    /// recomputed internal node is rescaled when `scale` is true (the
    /// caller maintains per-node scaler vectors, so untouched nodes keep
    /// their contributions).
    pub fn for_update(
        tree: &Tree,
        dirty: &[NodeId],
        scale: bool,
    ) -> Result<PlfPlan, TreeError> {
        tree.validate()?;
        let mut needs = vec![false; tree.n_nodes()];
        for &d in dirty {
            if d.0 >= tree.n_nodes() {
                return Err(TreeError::Invalid(format!("dirty node {d} out of range")));
            }
            let mut cur = if tree.node(d).is_leaf() {
                tree.node(d).parent
            } else {
                Some(d)
            };
            while let Some(n) = cur {
                if needs[n.0] {
                    break; // ancestors already marked
                }
                needs[n.0] = true;
                cur = tree.node(n).parent;
            }
        }
        let mut ops = Vec::new();
        for id in tree.postorder() {
            let node = tree.node(id);
            if node.is_leaf() || !needs[id.0] {
                continue;
            }
            if id == tree.root() {
                ops.push(PlfOp::Root {
                    node: id,
                    children: node.children.clone(),
                });
            } else {
                ops.push(PlfOp::Down {
                    node: id,
                    left: node.children[0],
                    right: node.children[1],
                });
            }
            if scale {
                ops.push(PlfOp::Scale { node: id });
            }
        }
        Ok(PlfPlan { ops, root: tree.root() })
    }

    /// The scheduled operations in execution order.
    pub fn ops(&self) -> &[PlfOp] {
        &self.ops
    }

    /// The root node the final `Root` op targets.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of `CondLikeDown` calls.
    pub fn n_down(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, PlfOp::Down { .. })).count()
    }

    /// Number of `CondLikeScaler` calls.
    pub fn n_scale(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, PlfOp::Scale { .. })).count()
    }

    /// Total parallel-section invocations (every op is one "call to the
    /// parallel section" in the paper's sense).
    pub fn n_calls(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;

    #[test]
    fn quartet_plan() {
        let t = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let plan = PlfPlan::for_tree(&t, 1).unwrap();
        // One internal non-root node + root; scale after each.
        assert_eq!(plan.n_down(), 1);
        assert_eq!(plan.n_scale(), 2);
        assert_eq!(plan.n_calls(), 4);
        assert!(matches!(plan.ops().last(), Some(PlfOp::Scale { .. })));
    }

    #[test]
    fn down_before_dependent_ops() {
        let t = Tree::from_newick(
            "(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);",
        )
        .unwrap();
        let plan = PlfPlan::for_tree(&t, 0).unwrap();
        // Every Down's operands must be leaves or already-computed nodes.
        let mut done: std::collections::HashSet<NodeId> =
            t.leaves().into_iter().collect();
        for op in plan.ops() {
            match op {
                PlfOp::Down { node, left, right } => {
                    assert!(done.contains(left) && done.contains(right));
                    done.insert(*node);
                }
                PlfOp::Root { node, children } => {
                    for c in children {
                        assert!(done.contains(c));
                    }
                    done.insert(*node);
                }
                PlfOp::Scale { node } => assert!(done.contains(node)),
            }
        }
    }

    #[test]
    fn scale_every_two() {
        let t = Tree::from_newick(
            "((((a:1,b:1):1,(c:1,d:1):1):1,(e:1,f:1):1):1,(g:1,h:1):1,i:1);",
        )
        .unwrap();
        let plan = PlfPlan::for_tree(&t, 2).unwrap();
        // 6 internal non-root nodes => 3 interior scales + root scale.
        assert_eq!(plan.n_down(), 6);
        assert_eq!(plan.n_scale(), 4);
    }

    #[test]
    fn no_scaling() {
        let t = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let plan = PlfPlan::for_tree(&t, 0).unwrap();
        assert_eq!(plan.n_scale(), 0);
    }

    #[test]
    fn call_count_scales_with_leaves() {
        // The paper: number of leaves drives number of PLF calls.
        let t10 = crate::tree::Tree::from_newick(&chain_newick(10)).unwrap();
        let t50 = crate::tree::Tree::from_newick(&chain_newick(50)).unwrap();
        let p10 = PlfPlan::for_tree(&t10, 1).unwrap();
        let p50 = PlfPlan::for_tree(&t50, 1).unwrap();
        assert!(p50.n_calls() > 4 * p10.n_calls() / 2);
        assert_eq!(p10.n_down(), 10 - 3); // caterpillar: n-3 internal non-root nodes
    }

    #[test]
    fn update_plan_touches_only_ancestors() {
        let t = Tree::from_newick(
            "(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);",
        )
        .unwrap();
        // Dirty = leaf "a": its parent, grandparent, and the root must
        // recompute; the (c,d) and (e,f) subtrees must not.
        let a = t
            .leaves()
            .into_iter()
            .find(|&l| t.node(l).name.as_deref() == Some("a"))
            .unwrap();
        let plan = PlfPlan::for_update(&t, &[a], true).unwrap();
        // Path a -> parent(ab) -> parent(abcd) -> root = 3 internal nodes.
        assert_eq!(plan.n_down(), 2);
        assert_eq!(plan.n_scale(), 3);
        assert_eq!(plan.n_calls(), 6);
        let full = PlfPlan::for_tree(&t, 1).unwrap();
        assert!(plan.n_calls() < full.n_calls());
    }

    #[test]
    fn update_plan_with_all_leaves_equals_full_structure() {
        let t = Tree::from_newick(
            "(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);",
        )
        .unwrap();
        let all = t.leaves();
        let plan = PlfPlan::for_update(&t, &all, true).unwrap();
        let full = PlfPlan::for_tree(&t, 1).unwrap();
        assert_eq!(plan.n_down(), full.n_down());
        assert_eq!(plan.n_scale(), full.n_scale());
    }

    #[test]
    fn update_plan_internal_dirty_includes_self() {
        let t = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let internal = t
            .internal_nodes()
            .into_iter()
            .find(|&n| n != t.root())
            .unwrap();
        let plan = PlfPlan::for_update(&t, &[internal], false).unwrap();
        assert_eq!(plan.n_down(), 1); // the node itself
        assert_eq!(plan.n_calls(), 2); // + root
    }

    #[test]
    fn update_plan_empty_dirty_is_empty() {
        let t = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let plan = PlfPlan::for_update(&t, &[], true).unwrap();
        assert_eq!(plan.n_calls(), 0);
    }

    #[test]
    fn update_plan_rejects_bad_node() {
        let t = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        assert!(PlfPlan::for_update(&t, &[NodeId(999)], true).is_err());
    }

    fn chain_newick(n: usize) -> String {
        // Caterpillar tree ((...((t0,t1),t2)...),t_{n-2},t_{n-1});
        let mut s = "(t0:0.1,t1:0.1)".to_string();
        for i in 2..n - 2 {
            s = format!("({s}:0.1,t{i}:0.1)");
        }
        format!("({s}:0.1,t{}:0.1,t{}:0.1);", n - 2, n - 1)
    }
}

//! The Phylogenetic Likelihood Function kernels.
//!
//! Three operations dominate MrBayes runtime (>85%, §3.1):
//!
//! * **CondLikeDown** — combine two children's conditional likelihoods
//!   through their branch transition matrices (Figure 5),
//! * **CondLikeRoot** — the same at the (virtual) root, combining three
//!   subtrees,
//! * **CondLikeScaler** — per-pattern rescaling against numerical
//!   underflow (a max-reduction followed by a division).
//!
//! [`scalar`] is the reference implementation; [`simd4`] provides the two
//! 4-wide SIMD schedules the paper contrasts on the Cell (§3.3). All
//! kernels accumulate inner products in ascending-`j` order so that every
//! backend — host, simulated Cell SPE, simulated GPU thread — produces
//! bitwise-identical `f32` results, which the cross-backend tests rely on.

pub mod plan;
pub mod scalar;
pub mod simd4;

use crate::clv::{Clv, TransitionMatrices};
use crate::resilience::PlfError;

/// Which SIMD schedule a vectorized kernel uses; mirrors the paper's two
/// Cell/BE implementations (§3.3) and the analogous GPU choice (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdSchedule {
    /// Approach (i): parallelize inside each inner product — element-wise
    /// multiply then a horizontal (tree) reduction. Row-wise matrix access.
    RowWise,
    /// Approach (ii): run the four inner products of one matrix-vector
    /// product in lockstep — four serial reductions, column-wise matrix
    /// access via the pre-transposed matrix. The paper's winner (2× PLF).
    ColWise,
}

/// A PLF execution engine.
///
/// Implementations range from the in-process scalar reference to the
/// rayon multicore backend and the Cell/BE and GPU simulators; the MCMC
/// driver and the experiment harness are generic over this trait.
pub trait PlfBackend: Send {
    /// Human-readable backend name for reports.
    fn name(&self) -> String;

    /// CondLikeDown: `out[i] = (P_l · left[i]) ⊙ (P_r · right[i])` for
    /// every pattern `i` and rate category.
    ///
    /// Errors surface simulated device failures (transfer, launch,
    /// worker panic) and corrupted output; the in-process host backends
    /// are infallible and always return `Ok(())`.
    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError>;

    /// CondLikeRoot: like `cond_like_down` but combining the three
    /// subtrees meeting at the virtual root. `c` is `None` for a rooted
    /// (degree-2) anchor node.
    #[allow(clippy::too_many_arguments)]
    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError>;

    /// CondLikeScaler: divide each pattern's `n_rates × 4` block by its
    /// maximum entry and accumulate `ln(max)` into `ln_scalers[i]`.
    ///
    /// Not idempotent: callers that retry a failed scale must restore
    /// `clv` and `ln_scalers` first (see
    /// [`crate::resilience::ResilientBackend`]).
    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32])
        -> Result<(), PlfError>;

    /// Called once per tree evaluation before the first kernel; lets
    /// simulated backends reset per-invocation bookkeeping. Default no-op.
    fn begin_evaluation(&mut self) {}

    /// Preferred number of alignment patterns per fused work unit when a
    /// batching scheduler (the `plfd` service) sizes device-shaped work
    /// for this backend.
    ///
    /// Host backends default to a cache-friendly fixed chunk; device
    /// backends override with their real geometry — Local-Store-sized
    /// chunks on the Cell (a function of `n_rates`, since larger rate
    /// counts shrink how many patterns fit in 256 KB), grid-sized slabs
    /// on the GPU (threads × blocks), and per-thread chunks scaled by
    /// worker count on the multicore pools.
    fn preferred_batch_patterns(&self, n_rates: usize) -> usize {
        let _ = n_rates;
        DEFAULT_BATCH_PATTERNS
    }

    /// Fused CondLikeDown: evaluate every op in `ops` — typically the
    /// same tree level of several batched jobs — in **one** backend
    /// invocation, amortizing per-launch overhead (thread-pool
    /// fork/join, simulated DMA setup, PCIe transfer, kernel launch)
    /// over the concatenated pattern space.
    ///
    /// Contract: results must be **bitwise identical** to issuing the
    /// ops one at a time through [`PlfBackend::cond_like_down`] —
    /// patterns are independent and per-pattern accumulation order is
    /// fixed, so any per-op or cross-op chunking satisfies this. A
    /// fused call fails as a whole: on `Err` callers must treat every
    /// op's output as undefined and re-issue per op for containment.
    fn cond_like_down_fused(&mut self, ops: &mut [FusedDown<'_>]) -> Result<(), PlfError> {
        for op in ops.iter_mut() {
            self.cond_like_down(op.left, op.p_left, op.right, op.p_right, op.out)?;
        }
        Ok(())
    }

    /// Fused CondLikeRoot; same contract as
    /// [`PlfBackend::cond_like_down_fused`].
    fn cond_like_root_fused(&mut self, ops: &mut [FusedRoot<'_>]) -> Result<(), PlfError> {
        for op in ops.iter_mut() {
            self.cond_like_root(op.a, op.p_a, op.b, op.p_b, op.c, op.out)?;
        }
        Ok(())
    }

    /// Fused CondLikeScaler; same contract as
    /// [`PlfBackend::cond_like_down_fused`]. Like the single-op scaler
    /// this is **not idempotent** — a failed fused scale leaves every
    /// op's `clv`/`ln_scalers` undefined and callers must restore
    /// before retrying.
    fn cond_like_scaler_fused(&mut self, ops: &mut [FusedScale<'_>]) -> Result<(), PlfError> {
        for op in ops.iter_mut() {
            self.cond_like_scaler(op.clv, op.ln_scalers)?;
        }
        Ok(())
    }
}

/// One CondLikeDown inside a fused cross-job invocation: the operands of
/// a single (job, node) pair. All ops of one fused call are mutually
/// independent — they belong to different jobs — so backends may compute
/// them in any order or interleaving.
pub struct FusedDown<'a> {
    /// Left child CLV.
    pub left: &'a Clv,
    /// Left branch transition matrices.
    pub p_left: &'a TransitionMatrices,
    /// Right child CLV.
    pub right: &'a Clv,
    /// Right branch transition matrices.
    pub p_right: &'a TransitionMatrices,
    /// Destination CLV.
    pub out: &'a mut Clv,
}

/// One CondLikeRoot inside a fused cross-job invocation.
pub struct FusedRoot<'a> {
    /// First subtree CLV.
    pub a: &'a Clv,
    /// First branch transition matrices.
    pub p_a: &'a TransitionMatrices,
    /// Second subtree CLV.
    pub b: &'a Clv,
    /// Second branch transition matrices.
    pub p_b: &'a TransitionMatrices,
    /// Optional third subtree (unrooted trees).
    pub c: Option<(&'a Clv, &'a TransitionMatrices)>,
    /// Destination CLV.
    pub out: &'a mut Clv,
}

/// One CondLikeScaler inside a fused cross-job invocation.
pub struct FusedScale<'a> {
    /// CLV rescaled in place.
    pub clv: &'a mut Clv,
    /// Per-pattern log-scaler accumulator (`+= ln(max)`).
    pub ln_scalers: &'a mut [f32],
}

/// Default fused-work-unit size, in patterns, for backends without a
/// device geometry to respect (see
/// [`PlfBackend::preferred_batch_patterns`]). Sized so one unit's CLVs
/// stay comfortably inside a host L2 cache at 4 rate categories.
pub const DEFAULT_BATCH_PATTERNS: usize = 512;

/// The scalar reference backend (the "Baseline" single-core execution of
/// Table 1, modulo 2009 silicon).
#[derive(Debug, Default, Clone)]
pub struct ScalarBackend;

impl PlfBackend for ScalarBackend {
    fn name(&self) -> String {
        "scalar".into()
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let n_rates = out.n_rates();
        scalar::cond_like_down_range(
            left.as_slice(),
            p_left,
            right.as_slice(),
            p_right,
            out.as_mut_slice(),
            n_rates,
        );
        Ok(())
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let n_rates = out.n_rates();
        scalar::cond_like_root_range(
            a.as_slice(),
            p_a,
            b.as_slice(),
            p_b,
            c.map(|(clv, p)| (clv.as_slice(), p)),
            out.as_mut_slice(),
            n_rates,
        );
        Ok(())
    }

    fn cond_like_scaler(
        &mut self,
        clv: &mut Clv,
        ln_scalers: &mut [f32],
    ) -> Result<(), PlfError> {
        let n_rates = clv.n_rates();
        scalar::cond_like_scaler_range(clv.as_mut_slice(), ln_scalers, n_rates);
        Ok(())
    }
}

/// Host backend using the 4-wide SIMD kernels with a selectable schedule.
#[derive(Debug, Clone)]
pub struct Simd4Backend {
    /// Chosen schedule.
    pub schedule: SimdSchedule,
}

impl Simd4Backend {
    /// Column-wise (the fast schedule the paper adopts).
    pub fn col_wise() -> Simd4Backend {
        Simd4Backend {
            schedule: SimdSchedule::ColWise,
        }
    }

    /// Row-wise (the paper's slower first attempt; kept for the ablation).
    pub fn row_wise() -> Simd4Backend {
        Simd4Backend {
            schedule: SimdSchedule::RowWise,
        }
    }
}

impl PlfBackend for Simd4Backend {
    fn name(&self) -> String {
        match self.schedule {
            SimdSchedule::RowWise => "simd4-rowwise".into(),
            SimdSchedule::ColWise => "simd4-colwise".into(),
        }
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let n_rates = out.n_rates();
        simd4::cond_like_down_range(
            self.schedule,
            left.as_slice(),
            p_left,
            right.as_slice(),
            p_right,
            out.as_mut_slice(),
            n_rates,
        );
        Ok(())
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let n_rates = out.n_rates();
        simd4::cond_like_root_range(
            self.schedule,
            a.as_slice(),
            p_a,
            b.as_slice(),
            p_b,
            c.map(|(clv, p)| (clv.as_slice(), p)),
            out.as_mut_slice(),
            n_rates,
        );
        Ok(())
    }

    fn cond_like_scaler(
        &mut self,
        clv: &mut Clv,
        ln_scalers: &mut [f32],
    ) -> Result<(), PlfError> {
        let n_rates = clv.n_rates();
        simd4::cond_like_scaler_range(clv.as_mut_slice(), ln_scalers, n_rates);
        Ok(())
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_mats(n_rates: usize) -> impl Strategy<Value = TransitionMatrices> {
        prop::collection::vec(
            prop::array::uniform4(prop::array::uniform4(0.0f32..1.0)),
            n_rates,
        )
        .prop_map(TransitionMatrices::from_mats)
    }

    fn arb_clv(len: usize) -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec(0.0f32..1.0, len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_colwise_bitwise_equals_scalar(
            m in 1usize..40,
            n_rates in 1usize..5,
            seed_left in arb_mats(4),
            seed_right in arb_mats(4),
        ) {
            // Reuse the first n_rates matrices of the generated sets.
            let pl = TransitionMatrices::from_mats(seed_left.mats()[..n_rates.min(4)].to_vec());
            let pr = TransitionMatrices::from_mats(seed_right.mats()[..n_rates.min(4)].to_vec());
            let n_rates = pl.n_rates();
            let len = m * n_rates * 4;
            let left: Vec<f32> = (0..len).map(|i| (i % 17) as f32 / 17.0).collect();
            let right: Vec<f32> = (0..len).map(|i| (i % 13) as f32 / 13.0).collect();
            let mut out_simd = vec![0.0f32; len];
            let mut out_ref = vec![0.0f32; len];
            simd4::cond_like_down_range(SimdSchedule::ColWise, &left, &pl, &right, &pr, &mut out_simd, n_rates);
            scalar::cond_like_down_range(&left, &pl, &right, &pr, &mut out_ref, n_rates);
            prop_assert_eq!(out_simd, out_ref);
        }

        #[test]
        fn prop_scaler_idempotent_and_bounded(
            m in 1usize..30,
            data in arb_clv(30 * 16),
        ) {
            let n_rates = 4;
            let len = m * n_rates * 4;
            let mut clv = data[..len].to_vec();
            let mut scalers = vec![0.0f32; m];
            simd4::cond_like_scaler_range(&mut clv, &mut scalers, n_rates);
            // After scaling every non-zero block's max is 1 up to the
            // rounding of the reciprocal multiply (x · (1/max)).
            for (i, block) in clv.chunks_exact(n_rates * 4).enumerate() {
                let max = block.iter().fold(0.0f32, |a, &b| a.max(b));
                prop_assert!(
                    max == 0.0 || (max - 1.0).abs() <= 2e-7,
                    "block {i} max {max}"
                );
            }
            // Scaling again is a no-op up to the same rounding.
            let before = clv.clone();
            let mut scalers2 = vec![0.0f32; m];
            simd4::cond_like_scaler_range(&mut clv, &mut scalers2, n_rates);
            for (a, b) in before.iter().zip(&clv) {
                prop_assert!((a - b).abs() <= 2e-7, "{a} vs {b}");
            }
            for (i, &s) in scalers2.iter().enumerate() {
                prop_assert!(s.abs() <= 3e-7, "scaler {i} = {s}");
            }
        }

        #[test]
        fn prop_rowwise_within_tolerance(
            m in 1usize..20,
            mats in arb_mats(4),
        ) {
            let n_rates = 4;
            let len = m * n_rates * 4;
            let v: Vec<f32> = (0..len).map(|i| ((i * 7) % 23) as f32 / 23.0).collect();
            let mut row = vec![0.0f32; len];
            let mut col = vec![0.0f32; len];
            simd4::cond_like_down_range(SimdSchedule::RowWise, &v, &mats, &v, &mats, &mut row, n_rates);
            simd4::cond_like_down_range(SimdSchedule::ColWise, &v, &mats, &v, &mats, &mut col, n_rates);
            for (a, b) in row.iter().zip(&col) {
                prop_assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-3));
            }
        }
    }
}

//! 4-wide SIMD PLF kernels.
//!
//! The Cell/BE SPEs (and host SSE units) operate on 128-bit vectors of
//! four `f32` — exactly the width of one discrete-rate state array. The
//! paper implements the matrix–vector products of the PLF in two ways
//! (§3.3) and finds the column-wise variant 2× faster on the PLF:
//!
//! * **Row-wise** (approach i): each inner product `Σ_j P[s][j]·v[j]` is
//!   vectorized as an element-wise multiply followed by a *horizontal*
//!   tree reduction — the reduction serializes the vector lanes.
//! * **Column-wise** (approach ii): the four inner products of one
//!   matrix–vector product run in lockstep: `acc += v[j] · Pᵀ[j]` for
//!   `j = 0..4`, using the pre-transposed matrix for unit-stride access.
//!   No horizontal operation is needed.
//!
//! The kernels are written over `[f32; 4]` values with simple lane-wise
//! helpers; rustc/LLVM lowers them to genuine vector instructions on any
//! SIMD-capable host.

use super::SimdSchedule;
use crate::clv::TransitionMatrices;
use crate::constants::SIMD_WIDTH;
use crate::dna::N_STATES;

/// One SIMD vector register's worth of lanes. The whole kernel design
/// hinges on the register width equaling the DNA state count (one
/// 4-state array per register, Figure 3); the assert keeps the two
/// constants from drifting apart.
pub type Lanes = [f32; SIMD_WIDTH];
const _: () = assert!(SIMD_WIDTH == N_STATES);

/// Lane-wise multiply.
#[inline(always)]
fn mul4(a: Lanes, b: Lanes) -> Lanes {
    [a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]]
}

/// Lane-wise add.
#[inline(always)]
fn add4(a: Lanes, b: Lanes) -> Lanes {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
}

/// Broadcast a scalar to all four lanes.
#[inline(always)]
fn splat4(x: f32) -> Lanes {
    [x, x, x, x]
}

/// Lane-wise max.
#[inline(always)]
fn max4(a: Lanes, b: Lanes) -> Lanes {
    [
        a[0].max(b[0]),
        a[1].max(b[1]),
        a[2].max(b[2]),
        a[3].max(b[3]),
    ]
}

/// Horizontal (pairwise-tree) sum of one vector — the reduction step of
/// the row-wise schedule (Figure 4's dependency graph).
#[inline(always)]
fn hsum4(v: Lanes) -> f32 {
    (v[0] + v[1]) + (v[2] + v[3])
}

#[inline(always)]
fn load4(s: &[f32]) -> [f32; 4] {
    [s[0], s[1], s[2], s[3]]
}

/// Row-wise matrix–vector product: four vector multiplies, each followed
/// by a horizontal reduction.
#[inline(always)]
pub fn mat_vec_rowwise(p: &[[f32; 4]; 4], v: [f32; 4]) -> [f32; 4] {
    [
        hsum4(mul4(p[0], v)),
        hsum4(mul4(p[1], v)),
        hsum4(mul4(p[2], v)),
        hsum4(mul4(p[3], v)),
    ]
}

/// Column-wise matrix–vector product over the transposed matrix:
/// `acc = Σ_j splat(v[j]) · Pᵀ[j]`. Accumulates in ascending `j`, matching
/// the scalar reference bit-for-bit.
#[inline(always)]
pub fn mat_vec_colwise(pt: &[[f32; 4]; 4], v: [f32; 4]) -> [f32; 4] {
    let mut acc = mul4(splat4(v[0]), pt[0]);
    acc = add4(acc, mul4(splat4(v[1]), pt[1]));
    acc = add4(acc, mul4(splat4(v[2]), pt[2]));
    add4(acc, mul4(splat4(v[3]), pt[3]))
}

#[inline(always)]
fn mat_vec(schedule: SimdSchedule, p: &TransitionMatrices, k: usize, v: [f32; 4]) -> [f32; 4] {
    match schedule {
        SimdSchedule::RowWise => mat_vec_rowwise(p.rate(k), v),
        SimdSchedule::ColWise => mat_vec_colwise(p.rate_transposed(k), v),
    }
}

/// SIMD CondLikeDown over a pattern-range slice.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
pub fn cond_like_down_range(
    schedule: SimdSchedule,
    left: &[f32],
    p_left: &TransitionMatrices,
    right: &[f32],
    p_right: &TransitionMatrices,
    out: &mut [f32],
    n_rates: usize,
) {
    assert_eq!(left.len(), out.len());
    assert_eq!(right.len(), out.len());
    let stride = n_rates * N_STATES;
    debug_assert_eq!(out.len() % stride, 0);
    for (i, out_pat) in out.chunks_exact_mut(stride).enumerate() {
        let lbase = i * stride;
        for k in 0..n_rates {
            let off = k * N_STATES;
            let l = mat_vec(schedule, p_left, k, load4(&left[lbase + off..]));
            let r = mat_vec(schedule, p_right, k, load4(&right[lbase + off..]));
            let prod = mul4(l, r);
            out_pat[off..off + N_STATES].copy_from_slice(&prod);
        }
    }
}

/// SIMD CondLikeRoot over a pattern-range slice.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
pub fn cond_like_root_range(
    schedule: SimdSchedule,
    a: &[f32],
    p_a: &TransitionMatrices,
    b: &[f32],
    p_b: &TransitionMatrices,
    c: Option<(&[f32], &TransitionMatrices)>,
    out: &mut [f32],
    n_rates: usize,
) {
    assert_eq!(a.len(), out.len());
    assert_eq!(b.len(), out.len());
    if let Some((c_clv, _)) = c {
        assert_eq!(c_clv.len(), out.len());
    }
    let stride = n_rates * N_STATES;
    debug_assert_eq!(out.len() % stride, 0);
    for (i, out_pat) in out.chunks_exact_mut(stride).enumerate() {
        let base = i * stride;
        for k in 0..n_rates {
            let off = k * N_STATES;
            let va = mat_vec(schedule, p_a, k, load4(&a[base + off..]));
            let vb = mat_vec(schedule, p_b, k, load4(&b[base + off..]));
            let mut prod = mul4(va, vb);
            if let Some((c_clv, p_c)) = c {
                let vc = mat_vec(schedule, p_c, k, load4(&c_clv[base + off..]));
                prod = mul4(prod, vc);
            }
            out_pat[off..off + N_STATES].copy_from_slice(&prod);
        }
    }
}

/// SIMD CondLikeScaler: vector max across the pattern block, horizontal
/// max, then a broadcast multiply by the reciprocal. `max` is associative
/// and commutative, so the result matches the scalar kernel exactly —
/// including the all-zero-block guard (skipping avoids an `ln(0) = -inf`
/// poisoned scaler slot).
///
/// Returns the number of patterns actually rescaled, as the scalar
/// kernel does.
pub fn cond_like_scaler_range(clv: &mut [f32], ln_scalers: &mut [f32], n_rates: usize) -> u64 {
    let stride = n_rates * N_STATES;
    debug_assert_eq!(clv.len() % stride, 0);
    let m = clv.len() / stride;
    assert_eq!(ln_scalers.len(), m);
    let mut rescaled = 0u64;
    for (i, block) in clv.chunks_exact_mut(stride).enumerate() {
        let mut vmax = [0.0f32; 4];
        for chunk in block.chunks_exact(N_STATES) {
            vmax = max4(vmax, load4(chunk));
        }
        let max = vmax[0].max(vmax[1]).max(vmax[2]).max(vmax[3]);
        if max > 0.0 {
            let inv = splat4(1.0 / max);
            for chunk in block.chunks_exact_mut(N_STATES) {
                let scaled = mul4(load4(chunk), inv);
                chunk.copy_from_slice(&scaled);
            }
            ln_scalers[i] += max.ln();
            rescaled += 1;
        }
    }
    rescaled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::scalar;

    fn random_mats(seed: u64, n_rates: usize) -> TransitionMatrices {
        // Small deterministic LCG so the test needs no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32).fract().abs()
        };
        let mats = (0..n_rates)
            .map(|_| {
                let mut m = [[0.0f32; 4]; 4];
                for row in &mut m {
                    for v in row.iter_mut() {
                        *v = next() * 0.9 + 0.05;
                    }
                }
                m
            })
            .collect();
        TransitionMatrices::from_mats(mats)
    }

    fn random_clv(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                ((state >> 33) as f32 / (1u64 << 31) as f32).fract().abs()
            })
            .collect()
    }

    #[test]
    fn colwise_matches_scalar_bitwise() {
        let p = random_mats(7, 4);
        let v = [0.3f32, 0.9, 0.01, 0.47];
        let simd = mat_vec_colwise(p.rate_transposed(0), v);
        let sc = scalar::mat_vec(p.rate(0), &v);
        assert_eq!(simd, sc);
    }

    #[test]
    fn rowwise_matches_scalar_closely() {
        let p = random_mats(11, 4);
        let v = [0.3f32, 0.9, 0.01, 0.47];
        let simd = mat_vec_rowwise(p.rate(0), v);
        let sc = scalar::mat_vec(p.rate(0), &v);
        for s in 0..4 {
            assert!((simd[s] - sc[s]).abs() <= 1e-6 * sc[s].abs().max(1.0));
        }
    }

    #[test]
    fn down_colwise_bitwise_equals_scalar() {
        let n_rates = 4;
        let m = 33;
        let len = m * n_rates * 4;
        let (pl, pr) = (random_mats(1, n_rates), random_mats(2, n_rates));
        let left = random_clv(3, len);
        let right = random_clv(4, len);
        let mut out_simd = vec![0.0f32; len];
        let mut out_scalar = vec![0.0f32; len];
        cond_like_down_range(
            SimdSchedule::ColWise,
            &left,
            &pl,
            &right,
            &pr,
            &mut out_simd,
            n_rates,
        );
        scalar::cond_like_down_range(&left, &pl, &right, &pr, &mut out_scalar, n_rates);
        assert_eq!(out_simd, out_scalar);
    }

    #[test]
    fn down_rowwise_close_to_scalar() {
        let n_rates = 4;
        let m = 17;
        let len = m * n_rates * 4;
        let (pl, pr) = (random_mats(5, n_rates), random_mats(6, n_rates));
        let left = random_clv(7, len);
        let right = random_clv(8, len);
        let mut out_simd = vec![0.0f32; len];
        let mut out_scalar = vec![0.0f32; len];
        cond_like_down_range(
            SimdSchedule::RowWise,
            &left,
            &pl,
            &right,
            &pr,
            &mut out_simd,
            n_rates,
        );
        scalar::cond_like_down_range(&left, &pl, &right, &pr, &mut out_scalar, n_rates);
        for (a, b) in out_simd.iter().zip(&out_scalar) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-3));
        }
    }

    #[test]
    fn root_three_children_colwise_bitwise_equals_scalar() {
        let n_rates = 4;
        let m = 9;
        let len = m * n_rates * 4;
        let (pa, pb, pc) = (random_mats(9, n_rates), random_mats(10, n_rates), random_mats(11, n_rates));
        let a = random_clv(12, len);
        let b = random_clv(13, len);
        let c = random_clv(14, len);
        let mut out_simd = vec![0.0f32; len];
        let mut out_scalar = vec![0.0f32; len];
        cond_like_root_range(
            SimdSchedule::ColWise,
            &a,
            &pa,
            &b,
            &pb,
            Some((&c[..], &pc)),
            &mut out_simd,
            n_rates,
        );
        scalar::cond_like_root_range(&a, &pa, &b, &pb, Some((&c[..], &pc)), &mut out_scalar, n_rates);
        assert_eq!(out_simd, out_scalar);
    }

    #[test]
    fn scaler_bitwise_equals_scalar() {
        let n_rates = 4;
        let m = 21;
        let len = m * n_rates * 4;
        let mut a = random_clv(20, len);
        let mut b = a.clone();
        let mut sa = vec![0.0f32; m];
        let mut sb = vec![0.0f32; m];
        let ca = cond_like_scaler_range(&mut a, &mut sa, n_rates);
        let cb = scalar::cond_like_scaler_range(&mut b, &mut sb, n_rates);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(ca, cb, "rescale counts must agree with the scalar kernel");
    }

    #[test]
    fn scaler_skips_zero_block() {
        // Mirror of the scalar regression test: an all-zero pattern
        // block must be skipped (ln(0) = -inf would poison the slot),
        // not counted, and leave neighbouring patterns untouched.
        let n_rates = 1;
        let mut clv = vec![0.5f32, 0.25, 0.0, 0.0, /* zero */ 0.0, 0.0, 0.0, 0.0, 0.125, 0.0625, 0.0, 0.0];
        let mut scalers = vec![0.0f32; 3];
        assert_eq!(cond_like_scaler_range(&mut clv, &mut scalers, n_rates), 2);
        assert!(scalers.iter().all(|s| s.is_finite()));
        assert_eq!(scalers[1], 0.0);
        assert_eq!(&clv[4..8], &[0.0; 4]);
        assert!((scalers[0] - 0.5f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn hsum_is_pairwise() {
        assert_eq!(hsum4([1.0, 2.0, 3.0, 4.0]), 10.0);
    }
}
